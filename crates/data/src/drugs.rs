//! The 86-drug registry used by the chronic-disease decision support system.
//!
//! Section II-B of the paper describes 86 medications commonly used to treat
//! chronic conditions, identified by integer drug IDs (DIDs). The case
//! studies (Fig. 8 and Fig. 9) name specific drugs and their DIDs —
//! Doxazosin (1), Enalapril (3), Perindopril (5), Amlodipine (8),
//! Indapamide (10), Felodipine (32), Simvastatin (46), Atorvastatin (47),
//! Metformin (48), Isosorbide (58/59), Gabapentin (61), Theophylline (83) —
//! so this registry pins those drugs to exactly those IDs and fills the rest
//! of the formulary with real drugs for the diseases of Fig. 2 and Fig. 3.

/// Chronic diseases reported in the Hong Kong Chronic Disease Study
/// (Fig. 2 and Fig. 3 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Disease {
    /// High blood pressure (49% of the cohort).
    Hypertension,
    /// Stroke, heart failure and other cardiovascular events (22%).
    CardiovascularEvents,
    /// Type 2 diabetes mellitus (11%).
    Type2Diabetes,
    /// Gastric or duodenal ulcer (6%).
    GastricUlcer,
    /// Arthritis (3%).
    Arthritis,
    /// Benign prostatic hyperplasia (2%).
    ProstaticHyperplasia,
    /// Diabetic nephropathy (2%).
    DiabeticNephropathy,
    /// Myocardial infarction (1%).
    MyocardialInfarction,
    /// Asthma and chronic obstructive airway disease (1%).
    Asthma,
    /// Erosive esophagitis / reflux disease.
    ErosiveEsophagitis,
    /// Seizure disorders.
    Seizures,
    /// Eye diseases (glaucoma, cataract-related care).
    EyeDiseases,
    /// Anxiety and depressive disorders.
    AnxietyDisorder,
    /// Peripheral edema.
    Edema,
    /// Venous thromboembolism.
    Thromboembolism,
    /// Everything else (3%).
    OtherDiseases,
}

impl Disease {
    /// All diseases in a fixed, deterministic order.
    pub const ALL: [Disease; 16] = [
        Disease::Hypertension,
        Disease::CardiovascularEvents,
        Disease::Type2Diabetes,
        Disease::GastricUlcer,
        Disease::Arthritis,
        Disease::ProstaticHyperplasia,
        Disease::DiabeticNephropathy,
        Disease::MyocardialInfarction,
        Disease::Asthma,
        Disease::ErosiveEsophagitis,
        Disease::Seizures,
        Disease::EyeDiseases,
        Disease::AnxietyDisorder,
        Disease::Edema,
        Disease::Thromboembolism,
        Disease::OtherDiseases,
    ];

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Disease::Hypertension => "Hypertension",
            Disease::CardiovascularEvents => "Cardiovascular Events",
            Disease::Type2Diabetes => "Type 2 Diabetes Mellitus",
            Disease::GastricUlcer => "Gastric or Duodenal Ulcer",
            Disease::Arthritis => "Arthritis",
            Disease::ProstaticHyperplasia => "Prostatic Hyperplasia",
            Disease::DiabeticNephropathy => "Diabetic Nephropathy",
            Disease::MyocardialInfarction => "Myocardial Infarction",
            Disease::Asthma => "Asthma",
            Disease::ErosiveEsophagitis => "Erosive Esophagitis",
            Disease::Seizures => "Seizures",
            Disease::EyeDiseases => "Eye Diseases",
            Disease::AnxietyDisorder => "Anxiety Disorder",
            Disease::Edema => "Edema",
            Disease::Thromboembolism => "Thromboembolism",
            Disease::OtherDiseases => "Other Diseases",
        }
    }

    /// Prevalence of the disease in the cohort, matching the proportions of
    /// Fig. 2 (values for diseases only listed in Fig. 3 are small).
    pub fn prevalence(self) -> f64 {
        match self {
            Disease::Hypertension => 0.49,
            Disease::CardiovascularEvents => 0.22,
            Disease::Type2Diabetes => 0.11,
            Disease::GastricUlcer => 0.06,
            Disease::Arthritis => 0.03,
            Disease::ProstaticHyperplasia => 0.02,
            Disease::DiabeticNephropathy => 0.02,
            Disease::MyocardialInfarction => 0.01,
            Disease::Asthma => 0.01,
            Disease::ErosiveEsophagitis => 0.015,
            Disease::Seizures => 0.008,
            Disease::EyeDiseases => 0.012,
            Disease::AnxietyDisorder => 0.015,
            Disease::Edema => 0.01,
            Disease::Thromboembolism => 0.006,
            Disease::OtherDiseases => 0.03,
        }
    }

    /// Index of the disease inside [`Disease::ALL`].
    ///
    /// `ALL` lists the variants in declaration order, so the discriminant
    /// *is* the index — `all_lists_declaration_order` in the tests below
    /// keeps the two in sync.
    pub fn index(self) -> usize {
        self as usize
    }
}

/// Pharmacological class of a drug; used by the synthetic DDI generator to
/// sample class-consistent interactions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DrugClass {
    /// Alpha-1 adrenergic receptor antagonists.
    AlphaBlocker,
    /// Angiotensin-converting enzyme inhibitors.
    AceInhibitor,
    /// Angiotensin-II receptor blockers.
    Arb,
    /// Dihydropyridine / non-dihydropyridine calcium channel blockers.
    CalciumChannelBlocker,
    /// Thiazide, loop and potassium-sparing diuretics.
    Diuretic,
    /// Beta-adrenergic blockers.
    BetaBlocker,
    /// HMG-CoA reductase inhibitors.
    Statin,
    /// Organic nitrates.
    Nitrate,
    /// Antiplatelet agents and anticoagulants.
    Antithrombotic,
    /// Oral antidiabetics and insulin.
    Antidiabetic,
    /// Proton-pump inhibitors, H2 antagonists and mucosal protectants.
    Gastrointestinal,
    /// NSAIDs, analgesics and anti-gout agents.
    AntiInflammatory,
    /// Anticonvulsants.
    Anticonvulsant,
    /// Bronchodilators and inhaled corticosteroids.
    Respiratory,
    /// Antidepressants, anxiolytics and hypnotics.
    Psychotropic,
    /// 5-alpha-reductase inhibitors for prostatic hyperplasia.
    Urological,
    /// Ophthalmic agents.
    Ophthalmic,
    /// Cardiac glycosides, antiarrhythmics and other cardiovascular agents.
    OtherCardiac,
    /// No pharmacological class on record — the class of anonymised drugs in
    /// registries built from bare name lists (e.g. the MIMIC label space).
    Unclassified,
}

/// A drug in the formulary.
#[derive(Debug, Clone)]
pub struct Drug {
    /// Drug ID (DID) — the index of the drug in the registry.
    pub id: usize,
    /// Generic name.
    pub name: String,
    /// Pharmacological class.
    pub class: DrugClass,
    /// Diseases the drug is prescribed for.
    pub treats: Vec<Disease>,
}

/// The fixed 86-drug formulary.
#[derive(Debug, Clone)]
pub struct DrugRegistry {
    drugs: Vec<Drug>,
}

/// Number of drugs in the chronic-disease formulary (Section II-B).
pub const NUM_DRUGS: usize = 86;

impl DrugRegistry {
    /// Builds the canonical 86-drug registry with the paper's named DIDs in
    /// their documented positions.
    pub fn standard() -> Self {
        use Disease::*;
        use DrugClass::*;
        // (name, class, diseases) in DID order 0..85. The entries named in
        // the paper's case studies are pinned to their published DIDs.
        let spec: Vec<(&'static str, DrugClass, Vec<Disease>)> = vec![
            /* 0 */
            (
                "Terazosin",
                AlphaBlocker,
                vec![Hypertension, ProstaticHyperplasia],
            ),
            /* 1 */
            (
                "Doxazosin",
                AlphaBlocker,
                vec![Hypertension, ProstaticHyperplasia],
            ),
            /* 2 */
            (
                "Lisinopril",
                AceInhibitor,
                vec![Hypertension, CardiovascularEvents],
            ),
            /* 3 */
            (
                "Enalapril",
                AceInhibitor,
                vec![Hypertension, CardiovascularEvents],
            ),
            /* 4 */
            (
                "Ramipril",
                AceInhibitor,
                vec![Hypertension, DiabeticNephropathy],
            ),
            /* 5 */
            (
                "Perindopril",
                AceInhibitor,
                vec![Hypertension, CardiovascularEvents],
            ),
            /* 6 */
            (
                "Captopril",
                AceInhibitor,
                vec![Hypertension, DiabeticNephropathy],
            ),
            /* 7 */ ("Losartan", Arb, vec![Hypertension, DiabeticNephropathy]),
            /* 8 */
            (
                "Amlodipine",
                CalciumChannelBlocker,
                vec![Hypertension, CardiovascularEvents],
            ),
            /* 9 */
            (
                "Prazosin",
                AlphaBlocker,
                vec![Hypertension, ProstaticHyperplasia],
            ),
            /* 10 */ ("Indapamide", Diuretic, vec![Hypertension, Edema]),
            /* 11 */ ("Valsartan", Arb, vec![Hypertension, CardiovascularEvents]),
            /* 12 */ ("Irbesartan", Arb, vec![Hypertension, DiabeticNephropathy]),
            /* 13 */ ("Nifedipine", CalciumChannelBlocker, vec![Hypertension]),
            /* 14 */
            (
                "Diltiazem",
                CalciumChannelBlocker,
                vec![Hypertension, CardiovascularEvents],
            ),
            /* 15 */
            (
                "Verapamil",
                CalciumChannelBlocker,
                vec![Hypertension, CardiovascularEvents],
            ),
            /* 16 */ ("Hydrochlorothiazide", Diuretic, vec![Hypertension, Edema]),
            /* 17 */
            (
                "Furosemide",
                Diuretic,
                vec![Edema, CardiovascularEvents, Hypertension],
            ),
            /* 18 */
            (
                "Spironolactone",
                Diuretic,
                vec![CardiovascularEvents, Edema, Hypertension],
            ),
            /* 19 */ ("Amiloride", Diuretic, vec![Hypertension, Edema]),
            /* 20 */
            (
                "Atenolol",
                BetaBlocker,
                vec![Hypertension, MyocardialInfarction],
            ),
            /* 21 */
            (
                "Metoprolol",
                BetaBlocker,
                vec![Hypertension, MyocardialInfarction],
            ),
            /* 22 */
            (
                "Propranolol",
                BetaBlocker,
                vec![Hypertension, AnxietyDisorder],
            ),
            /* 23 */
            (
                "Bisoprolol",
                BetaBlocker,
                vec![Hypertension, CardiovascularEvents],
            ),
            /* 24 */
            (
                "Carvedilol",
                BetaBlocker,
                vec![CardiovascularEvents, Hypertension],
            ),
            /* 25 */
            (
                "Aspirin",
                Antithrombotic,
                vec![CardiovascularEvents, MyocardialInfarction],
            ),
            /* 26 */
            (
                "Clopidogrel",
                Antithrombotic,
                vec![CardiovascularEvents, MyocardialInfarction],
            ),
            /* 27 */
            (
                "Warfarin",
                Antithrombotic,
                vec![Thromboembolism, CardiovascularEvents],
            ),
            /* 28 */
            (
                "Dipyridamole",
                Antithrombotic,
                vec![CardiovascularEvents, Thromboembolism],
            ),
            /* 29 */ ("Digoxin", OtherCardiac, vec![CardiovascularEvents]),
            /* 30 */ ("Amiodarone", OtherCardiac, vec![CardiovascularEvents]),
            /* 31 */
            (
                "Nitroglycerin",
                Nitrate,
                vec![CardiovascularEvents, MyocardialInfarction],
            ),
            /* 32 */ ("Felodipine", CalciumChannelBlocker, vec![Hypertension]),
            /* 33 */ ("Gliclazide", Antidiabetic, vec![Type2Diabetes]),
            /* 34 */ ("Glibenclamide", Antidiabetic, vec![Type2Diabetes]),
            /* 35 */ ("Glipizide", Antidiabetic, vec![Type2Diabetes]),
            /* 36 */ ("Sitagliptin", Antidiabetic, vec![Type2Diabetes]),
            /* 37 */ ("Pioglitazone", Antidiabetic, vec![Type2Diabetes]),
            /* 38 */ ("Acarbose", Antidiabetic, vec![Type2Diabetes]),
            /* 39 */
            (
                "Insulin Glargine",
                Antidiabetic,
                vec![Type2Diabetes, DiabeticNephropathy],
            ),
            /* 40 */
            (
                "Omeprazole",
                Gastrointestinal,
                vec![GastricUlcer, ErosiveEsophagitis],
            ),
            /* 41 */
            (
                "Lansoprazole",
                Gastrointestinal,
                vec![GastricUlcer, ErosiveEsophagitis],
            ),
            /* 42 */
            (
                "Pantoprazole",
                Gastrointestinal,
                vec![GastricUlcer, ErosiveEsophagitis],
            ),
            /* 43 */
            (
                "Ranitidine",
                Gastrointestinal,
                vec![GastricUlcer, ErosiveEsophagitis],
            ),
            /* 44 */ ("Famotidine", Gastrointestinal, vec![GastricUlcer]),
            /* 45 */ ("Sucralfate", Gastrointestinal, vec![GastricUlcer]),
            /* 46 */
            (
                "Simvastatin",
                Statin,
                vec![CardiovascularEvents, MyocardialInfarction],
            ),
            /* 47 */
            (
                "Atorvastatin",
                Statin,
                vec![CardiovascularEvents, MyocardialInfarction],
            ),
            /* 48 */
            (
                "Metformin",
                Antidiabetic,
                vec![Type2Diabetes, DiabeticNephropathy],
            ),
            /* 49 */ ("Rosuvastatin", Statin, vec![CardiovascularEvents]),
            /* 50 */ ("Pravastatin", Statin, vec![CardiovascularEvents]),
            /* 51 */ ("Lovastatin", Statin, vec![CardiovascularEvents]),
            /* 52 */ ("Ibuprofen", AntiInflammatory, vec![Arthritis]),
            /* 53 */ ("Naproxen", AntiInflammatory, vec![Arthritis]),
            /* 54 */ ("Diclofenac", AntiInflammatory, vec![Arthritis]),
            /* 55 */ ("Celecoxib", AntiInflammatory, vec![Arthritis]),
            /* 56 */
            (
                "Paracetamol",
                AntiInflammatory,
                vec![Arthritis, OtherDiseases],
            ),
            /* 57 */ ("Allopurinol", AntiInflammatory, vec![Arthritis]),
            /* 58 */
            (
                "Isosorbide Dinitrate",
                Nitrate,
                vec![CardiovascularEvents, MyocardialInfarction],
            ),
            /* 59 */
            (
                "Isosorbide Mononitrate",
                Nitrate,
                vec![CardiovascularEvents, MyocardialInfarction],
            ),
            /* 60 */ ("Phenytoin", Anticonvulsant, vec![Seizures]),
            /* 61 */ ("Gabapentin", Anticonvulsant, vec![Seizures, Arthritis]),
            /* 62 */ ("Carbamazepine", Anticonvulsant, vec![Seizures]),
            /* 63 */ ("Sodium Valproate", Anticonvulsant, vec![Seizures]),
            /* 64 */ ("Lamotrigine", Anticonvulsant, vec![Seizures]),
            /* 65 */ ("Colchicine", AntiInflammatory, vec![Arthritis]),
            /* 66 */ ("Methotrexate", AntiInflammatory, vec![Arthritis]),
            /* 67 */ ("Salbutamol", Respiratory, vec![Asthma]),
            /* 68 */ ("Budesonide", Respiratory, vec![Asthma]),
            /* 69 */ ("Montelukast", Respiratory, vec![Asthma]),
            /* 70 */ ("Ipratropium", Respiratory, vec![Asthma]),
            /* 71 */ ("Prednisolone", Respiratory, vec![Asthma, Arthritis]),
            /* 72 */ ("Sertraline", Psychotropic, vec![AnxietyDisorder]),
            /* 73 */ ("Fluoxetine", Psychotropic, vec![AnxietyDisorder]),
            /* 74 */ ("Amitriptyline", Psychotropic, vec![AnxietyDisorder]),
            /* 75 */ ("Lorazepam", Psychotropic, vec![AnxietyDisorder]),
            /* 76 */ ("Zolpidem", Psychotropic, vec![AnxietyDisorder]),
            /* 77 */ ("Finasteride", Urological, vec![ProstaticHyperplasia]),
            /* 78 */ ("Dutasteride", Urological, vec![ProstaticHyperplasia]),
            /* 79 */ ("Tamsulosin", AlphaBlocker, vec![ProstaticHyperplasia]),
            /* 80 */ ("Timolol", Ophthalmic, vec![EyeDiseases]),
            /* 81 */ ("Latanoprost", Ophthalmic, vec![EyeDiseases]),
            /* 82 */ ("Levothyroxine", OtherCardiac, vec![OtherDiseases]),
            /* 83 */ ("Theophylline", Respiratory, vec![Asthma]),
            /* 84 */ ("Alfuzosin", AlphaBlocker, vec![ProstaticHyperplasia]),
            /* 85 */ ("Misoprostol", Gastrointestinal, vec![GastricUlcer]),
        ];
        debug_assert_eq!(spec.len(), NUM_DRUGS);
        let drugs = spec
            .into_iter()
            .enumerate()
            .map(|(id, (name, class, treats))| Drug {
                id,
                name: name.to_string(),
                class,
                treats,
            })
            .collect();
        Self { drugs }
    }

    /// Builds a registry from a bare, DID-ordered name list — the shape of a
    /// formulary that arrives without class or indication metadata, such as
    /// the anonymised MIMIC drug space or the name list embedded in a
    /// persisted `DSSD` service.
    ///
    /// Names must be non-empty and unique case-insensitively (lookup by name
    /// ignores case, so two names differing only in case would shadow each
    /// other). All drugs get [`DrugClass::Unclassified`] and an empty
    /// indication list.
    pub fn from_names(
        names: impl IntoIterator<Item = impl Into<String>>,
    ) -> Result<Self, crate::DataError> {
        let mut drugs: Vec<Drug> = Vec::new();
        for (id, name) in names.into_iter().enumerate() {
            let name = name.into();
            if name.trim().is_empty() {
                return Err(crate::DataError::InvalidConfig {
                    what: "registry names must be non-empty",
                });
            }
            if drugs.iter().any(|d| d.name.eq_ignore_ascii_case(&name)) {
                return Err(crate::DataError::InvalidConfig {
                    what: "registry names must be unique (case-insensitively)",
                });
            }
            drugs.push(Drug {
                id,
                name,
                class: DrugClass::Unclassified,
                treats: Vec::new(),
            });
        }
        if drugs.is_empty() {
            return Err(crate::DataError::InvalidConfig {
                what: "a registry needs at least one drug",
            });
        }
        Ok(Self { drugs })
    }

    /// Number of drugs in the registry.
    pub fn len(&self) -> usize {
        self.drugs.len()
    }

    /// True when the registry is empty (never the case for [`standard`](Self::standard)).
    pub fn is_empty(&self) -> bool {
        self.drugs.is_empty()
    }

    /// Drug with the given DID.
    pub fn drug(&self, id: usize) -> Option<&Drug> {
        self.drugs.get(id)
    }

    /// Looks a drug up by (case-insensitive) name.
    pub fn by_name(&self, name: &str) -> Option<&Drug> {
        self.drugs
            .iter()
            .find(|d| d.name.eq_ignore_ascii_case(name))
    }

    /// Generic name of the drug with the given DID.
    pub fn name_of(&self, id: usize) -> Option<&str> {
        self.drugs.get(id).map(|d| d.name.as_str())
    }

    /// Resolves a free-form drug reference to a DID: a (case-insensitive)
    /// generic name, a bare numeric DID (`"48"`), or a `"DID 48"` form.
    pub fn resolve(&self, query: &str) -> Option<usize> {
        let query = query.trim();
        if let Some(drug) = self.by_name(query) {
            return Some(drug.id);
        }
        let numeric = query
            .strip_prefix("DID")
            .or_else(|| query.strip_prefix("did"))
            .map(str::trim)
            .unwrap_or(query);
        numeric
            .parse::<usize>()
            .ok()
            .filter(|&id| id < self.drugs.len())
    }

    /// Iterator over all drugs in DID order.
    pub fn iter(&self) -> impl Iterator<Item = &Drug> {
        self.drugs.iter()
    }

    /// Generic names of all drugs in DID order — the identity a persisted
    /// service records so typed [`Drug`] ids survive a save/load round trip.
    pub fn names(&self) -> Vec<&str> {
        self.drugs.iter().map(|d| d.name.as_str()).collect()
    }

    /// A content digest (FNV-1a over the DID-ordered names) identifying the
    /// formulary. A service persisted against one registry refuses to load
    /// against a registry with a different digest: the DIDs baked into its
    /// trained parameters would silently point at different drugs.
    pub fn digest(&self) -> u64 {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for drug in &self.drugs {
            for b in drug.name.bytes() {
                hash ^= b as u64;
                hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
            }
            // Separator so ["ab","c"] and ["a","bc"] hash differently.
            hash ^= 0xFF;
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        hash
    }

    /// DIDs of all drugs prescribed for a disease.
    pub fn drugs_for(&self, disease: Disease) -> Vec<usize> {
        self.drugs
            .iter()
            .filter(|d| d.treats.contains(&disease))
            .map(|d| d.id)
            .collect()
    }

    /// DIDs of all drugs of a pharmacological class.
    pub fn drugs_of_class(&self, class: DrugClass) -> Vec<usize> {
        self.drugs
            .iter()
            .filter(|d| d.class == class)
            .map(|d| d.id)
            .collect()
    }

    /// Number of distinct medications available per disease, i.e. the series
    /// plotted in Fig. 3 of the paper.
    pub fn medications_per_disease(&self) -> Vec<(Disease, usize)> {
        Disease::ALL
            .iter()
            .map(|&d| (d, self.drugs_for(d).len()))
            .collect()
    }
}

impl Default for DrugRegistry {
    fn default() -> Self {
        Self::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_lists_declaration_order() {
        // `Disease::index` relies on `ALL` matching declaration order.
        for (i, &d) in Disease::ALL.iter().enumerate() {
            assert_eq!(d.index(), i, "{d:?} out of declaration order in ALL");
        }
    }

    #[test]
    fn registry_has_exactly_86_drugs() {
        let reg = DrugRegistry::standard();
        assert_eq!(reg.len(), NUM_DRUGS);
        assert!(!reg.is_empty());
    }

    #[test]
    fn paper_case_study_dids_are_pinned() {
        let reg = DrugRegistry::standard();
        let expect = [
            (1usize, "Doxazosin"),
            (3, "Enalapril"),
            (5, "Perindopril"),
            (8, "Amlodipine"),
            (10, "Indapamide"),
            (32, "Felodipine"),
            (46, "Simvastatin"),
            (47, "Atorvastatin"),
            (48, "Metformin"),
            (59, "Isosorbide Mononitrate"),
            (61, "Gabapentin"),
            (83, "Theophylline"),
        ];
        for (did, name) in expect {
            assert_eq!(reg.drug(did).unwrap().name, name, "DID {did}");
        }
    }

    #[test]
    fn lookup_by_name_is_case_insensitive() {
        let reg = DrugRegistry::standard();
        assert_eq!(reg.by_name("metformin").unwrap().id, 48);
        assert!(reg.by_name("not-a-drug").is_none());
    }

    #[test]
    fn resolve_accepts_names_and_numeric_dids() {
        let reg = DrugRegistry::standard();
        assert_eq!(reg.resolve("Metformin"), Some(48));
        assert_eq!(reg.resolve("  metformin "), Some(48));
        assert_eq!(reg.resolve("48"), Some(48));
        assert_eq!(reg.resolve("DID 48"), Some(48));
        assert_eq!(reg.resolve("did 7"), Some(7));
        assert_eq!(reg.resolve("999"), None);
        assert_eq!(reg.resolve("not-a-drug"), None);
        assert_eq!(reg.name_of(48), Some("Metformin"));
        assert_eq!(reg.name_of(NUM_DRUGS), None);
    }

    #[test]
    fn every_disease_has_at_least_one_drug() {
        let reg = DrugRegistry::standard();
        for disease in Disease::ALL {
            assert!(
                !reg.drugs_for(disease).is_empty(),
                "no drugs registered for {}",
                disease.name()
            );
        }
    }

    #[test]
    fn hypertension_has_the_most_medications() {
        // Fig. 3: hypertension is treated by the largest number of drugs.
        let reg = DrugRegistry::standard();
        let counts = reg.medications_per_disease();
        let hypertension = counts
            .iter()
            .find(|(d, _)| *d == Disease::Hypertension)
            .map(|&(_, c)| c)
            .unwrap();
        for (d, c) in counts {
            if d != Disease::Hypertension {
                assert!(
                    hypertension >= c,
                    "{} has more drugs than hypertension",
                    d.name()
                );
            }
        }
    }

    #[test]
    fn prevalences_are_dominated_by_fig2_head() {
        assert!(Disease::Hypertension.prevalence() > Disease::CardiovascularEvents.prevalence());
        assert!(Disease::CardiovascularEvents.prevalence() > Disease::Type2Diabetes.prevalence());
        let total: f64 = Disease::ALL.iter().map(|d| d.prevalence()).sum();
        assert!(
            total > 0.9 && total < 1.2,
            "prevalence mass {total} drifted"
        );
    }

    #[test]
    fn names_and_digest_identify_the_formulary() {
        let reg = DrugRegistry::standard();
        let names = reg.names();
        assert_eq!(names.len(), NUM_DRUGS);
        assert_eq!(names[48], "Metformin");
        // The digest is deterministic and sensitive to the name sequence.
        assert_eq!(reg.digest(), DrugRegistry::standard().digest());
        let truncated = DrugRegistry {
            drugs: reg.drugs[..NUM_DRUGS - 1].to_vec(),
        };
        assert_ne!(reg.digest(), truncated.digest());
    }

    #[test]
    fn drug_ids_are_dense_and_ordered() {
        let reg = DrugRegistry::standard();
        for (i, drug) in reg.iter().enumerate() {
            assert_eq!(i, drug.id);
            assert!(!drug.treats.is_empty());
        }
    }

    #[test]
    fn from_names_builds_an_unclassified_registry() {
        let reg = DrugRegistry::from_names(["Alpha", "Beta", "Gamma"]).unwrap();
        assert_eq!(reg.len(), 3);
        assert_eq!(reg.resolve("beta"), Some(1));
        assert_eq!(reg.resolve("DID 2"), Some(2));
        assert_eq!(reg.name_of(2), Some("Gamma"));
        assert!(reg.iter().all(|d| d.class == DrugClass::Unclassified));
        // The digest is the same FNV over names, so a from_names registry
        // with the standard names is digest-identical to the standard one.
        let standard = DrugRegistry::standard();
        let rebuilt = DrugRegistry::from_names(standard.names()).unwrap();
        assert_eq!(rebuilt.digest(), standard.digest());
    }

    #[test]
    fn from_names_rejects_degenerate_name_lists() {
        assert!(DrugRegistry::from_names(Vec::<String>::new()).is_err());
        assert!(DrugRegistry::from_names(["ok", ""]).is_err());
        assert!(DrugRegistry::from_names(["ok", "  "]).is_err());
        assert!(DrugRegistry::from_names(["Aspirin", "aspirin"]).is_err());
    }

    #[test]
    fn class_queries_group_related_drugs() {
        let reg = DrugRegistry::standard();
        let statins = reg.drugs_of_class(DrugClass::Statin);
        assert!(statins.contains(&46) && statins.contains(&47));
        assert_eq!(statins.len(), 5);
        assert!(Disease::Hypertension.index() == 0);
    }
}
