//! Train / validation / test splitting of patients.
//!
//! The paper splits patients 5:3:2 (Section V-A2); the *observed* patients
//! used to build the bipartite training graph are the training split, and
//! suggestion quality is evaluated on the unobserved validation/test
//! patients.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::DataError;

/// Indices of patients assigned to each split.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Split {
    /// Observed patients used for training.
    pub train: Vec<usize>,
    /// Patients used for hyperparameter selection.
    pub val: Vec<usize>,
    /// Held-out patients used for the reported metrics.
    pub test: Vec<usize>,
}

impl Split {
    /// Total number of patients covered by the split.
    pub fn len(&self) -> usize {
        self.train.len() + self.val.len() + self.test.len()
    }

    /// True when the split covers no patients.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Splits `n` patients into train/val/test partitions with the given ratio
/// (the paper uses `(5, 3, 2)`), shuffling with the provided RNG.
pub fn split_patients(
    n: usize,
    ratio: (usize, usize, usize),
    rng: &mut impl Rng,
) -> Result<Split, DataError> {
    let (a, b, c) = ratio;
    if a + b + c == 0 {
        return Err(DataError::InvalidConfig {
            what: "split ratio must not be all zeros",
        });
    }
    if n == 0 {
        return Err(DataError::InvalidConfig {
            what: "cannot split zero patients",
        });
    }
    let mut idx: Vec<usize> = (0..n).collect();
    idx.shuffle(rng);
    let total = (a + b + c) as f64;
    let n_train = ((a as f64 / total) * n as f64).round() as usize;
    let n_val = ((b as f64 / total) * n as f64).round() as usize;
    let n_train = n_train.min(n);
    let n_val = n_val.min(n - n_train);
    let train = idx[..n_train].to_vec();
    let val = idx[n_train..n_train + n_val].to_vec();
    let test = idx[n_train + n_val..].to_vec();
    Ok(Split { train, val, test })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::BTreeSet;

    #[test]
    fn split_is_a_partition() {
        let mut rng = StdRng::seed_from_u64(0);
        let s = split_patients(100, (5, 3, 2), &mut rng).unwrap();
        assert_eq!(s.len(), 100);
        let mut all: Vec<usize> = s
            .train
            .iter()
            .chain(&s.val)
            .chain(&s.test)
            .copied()
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn ratios_are_approximately_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        let s = split_patients(1000, (5, 3, 2), &mut rng).unwrap();
        assert!((s.train.len() as i64 - 500).abs() <= 5);
        assert!((s.val.len() as i64 - 300).abs() <= 5);
        assert!((s.test.len() as i64 - 200).abs() <= 5);
    }

    #[test]
    fn deterministic_for_fixed_seed_and_differs_across_seeds() {
        let a = split_patients(50, (5, 3, 2), &mut StdRng::seed_from_u64(7)).unwrap();
        let b = split_patients(50, (5, 3, 2), &mut StdRng::seed_from_u64(7)).unwrap();
        let c = split_patients(50, (5, 3, 2), &mut StdRng::seed_from_u64(8)).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn no_duplicates_within_splits() {
        let mut rng = StdRng::seed_from_u64(2);
        let s = split_patients(37, (5, 3, 2), &mut rng).unwrap();
        let train: BTreeSet<usize> = s.train.iter().copied().collect();
        let val: BTreeSet<usize> = s.val.iter().copied().collect();
        let test: BTreeSet<usize> = s.test.iter().copied().collect();
        assert!(train.is_disjoint(&val));
        assert!(train.is_disjoint(&test));
        assert!(val.is_disjoint(&test));
    }

    #[test]
    fn degenerate_inputs_error() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(split_patients(0, (5, 3, 2), &mut rng).is_err());
        assert!(split_patients(10, (0, 0, 0), &mut rng).is_err());
    }

    #[test]
    fn tiny_populations_are_handled() {
        let mut rng = StdRng::seed_from_u64(4);
        let s = split_patients(3, (5, 3, 2), &mut rng).unwrap();
        assert_eq!(s.len(), 3);
    }
}
