//! Version-convergence property for the anti-entropy planner.
//!
//! Three simulated replica agents, an arbitrary interleaving of hot
//! reloads (model and KB version bumps on any agent) and pairwise
//! anti-entropy pulls, followed by one full round of gossip over the
//! complete peer graph: every agent ends at the element-wise maximum
//! version per key, and a converged group plans zero further pulls.
//!
//! The simulation exercises exactly the pure functions the real
//! [`dssddi_replica::ReplicaAgent`] drives — `plan_pulls` to decide what
//! to fetch and the per-key version adoption that `Router::sync_*_bytes`
//! performs — with `merged` as the independent model of what a pull must
//! produce.

// Tests and examples may panic freely; the workspace-level panic-policy
// denies target library and binary code.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use dssddi_replica::{merged, plan_pulls, KeyVersions, SyncArtifact};
use dssddi_serving::ModelKey;
use proptest::prelude::*;

const KEYS: [&str; 3] = ["chronic", "cardio", "renal"];
const AGENTS: usize = 3;

fn fresh_vector() -> Vec<KeyVersions> {
    KEYS.iter()
        .map(|name| KeyVersions {
            key: ModelKey::new(*name).expect("key"),
            model_version: 1,
            kb_version: 1,
        })
        .collect()
}

/// What the real agent does after `plan_pulls`: fetch each planned
/// artifact and adopt its version (the router's sync paths are monotone,
/// so adoption is exactly "set to the advertised version").
fn apply_pulls(local: &mut [KeyVersions], peer: &[KeyVersions]) {
    for action in plan_pulls(local, peer) {
        let entry = local
            .iter_mut()
            .find(|entry| entry.key == action.key)
            .expect("planned pulls only name local keys");
        match action.artifact {
            SyncArtifact::Model => entry.model_version = action.version,
            SyncArtifact::Kb => entry.kb_version = action.version,
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum Op {
    /// A hot model reload lands on one agent: its gateway bumps the
    /// shard's monotone model version.
    ReloadModel { agent: usize, key: usize },
    /// An operator ships a newer KB container to one agent.
    ReloadKb { agent: usize, key: usize },
    /// One anti-entropy exchange: `puller` polls `source` and pulls
    /// everything `source` is ahead on.
    Sync { puller: usize, source: usize },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..AGENTS, 0..KEYS.len()).prop_map(|(agent, key)| Op::ReloadModel { agent, key }),
        (0..AGENTS, 0..KEYS.len()).prop_map(|(agent, key)| Op::ReloadKb { agent, key }),
        (0..AGENTS, 0..AGENTS - 1).prop_map(|(puller, other)| Op::Sync {
            puller,
            // Map onto the agents that are not the puller, so a sync
            // never targets itself.
            source: (puller + 1 + other) % AGENTS,
        }),
    ]
}

proptest! {
    /// Any interleaving of reloads and pairwise syncs, then one full
    /// gossip round, converges every agent to the element-wise maximum.
    #[test]
    fn any_interleaving_converges_to_the_elementwise_max(
        ops in proptest::collection::vec(op_strategy(), 0..64),
    ) {
        let mut agents = vec![fresh_vector(); AGENTS];
        for op in &ops {
            match *op {
                Op::ReloadModel { agent, key } => {
                    agents[agent][key].model_version += 1;
                }
                Op::ReloadKb { agent, key } => {
                    agents[agent][key].kb_version += 1;
                }
                Op::Sync { puller, source } => {
                    let theirs = agents[source].clone();
                    let before = agents[puller].clone();
                    apply_pulls(&mut agents[puller], &theirs);
                    // A pull produces exactly the element-wise merge of
                    // the two vectors — never less, never more.
                    prop_assert_eq!(&agents[puller], &merged(&before, &theirs));
                }
            }
        }

        // The target state: the element-wise maximum over all agents.
        let expected = agents
            .iter()
            .skip(1)
            .fold(agents[0].clone(), |acc, vector| merged(&acc, vector));

        // One full anti-entropy round over the complete peer graph (what
        // every spawned agent does once per sync interval).
        for puller in 0..AGENTS {
            for source in 0..AGENTS {
                if puller == source {
                    continue;
                }
                let theirs = agents[source].clone();
                apply_pulls(&mut agents[puller], &theirs);
            }
        }

        for agent in &agents {
            prop_assert_eq!(agent, &expected);
        }

        // Idempotence: the converged group plans nothing more, i.e. the
        // anti-entropy loop goes quiet instead of ping-ponging.
        for puller in 0..AGENTS {
            for source in 0..AGENTS {
                if puller == source {
                    continue;
                }
                prop_assert!(plan_pulls(&agents[puller], &agents[source]).is_empty());
            }
        }
    }
}
