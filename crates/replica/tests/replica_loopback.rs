//! Deployment-level loopback coverage for replica groups, over real TCP:
//!
//! * a `ReloadKb` (and a model reload) sent to **one** replica converges
//!   on all three — identical `(model_version, kb_version)` pairs via
//!   `Stats` and bit-identical clinical responses from every peer;
//! * killing one replica mid-traffic sustains ≥ 99 % client success
//!   through [`ReplicaClient`] fail-over, and the replica restarted on
//!   the same address pulls itself back to the group's versions in one
//!   anti-entropy round.

// Tests and examples may panic freely; the workspace-level panic-policy
// denies target library and binary code.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

use dssddi_core::{CheckPrescriptionRequest, DrugId, ServiceBuilder};
use dssddi_kb::{EvidenceLevel, KbFact, KnowledgeBase, Severity};
use dssddi_replica::{ReplicaAgent, ReplicaClient, ReplicaGroup, ReplicaState};
use dssddi_serving::demo::{demo_catalog, demo_requests, DemoWorld, DEMO_SEED};
use dssddi_serving::{Client, KeyVersions, ModelKey, Router, Server, ServingError};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One live gateway of the replica group under test.
struct Gateway {
    addr: SocketAddr,
    router: Arc<Router>,
    state: Arc<ReplicaState>,
    thread: std::thread::JoinHandle<Result<(), ServingError>>,
}

impl Gateway {
    /// Binds a fresh demo-catalog gateway on `addr` with replication
    /// counters attached (`"127.0.0.1:0"` for an ephemeral port).
    fn spawn(addr: &str) -> Result<Gateway, ServingError> {
        let (catalog, _world) = demo_catalog(DEMO_SEED).expect("demo catalog");
        let mut router = Router::new(catalog);
        let state = Arc::new(ReplicaState::default());
        router.attach_replica(Arc::clone(&state));
        let server = Server::bind(addr, router)?;
        let addr = server.local_addr()?;
        let router = server.router_arc();
        let thread = std::thread::spawn(move || server.run());
        Ok(Gateway {
            addr,
            router,
            state,
            thread,
        })
    }

    /// The anti-entropy agent this gateway would run, syncing from `peers`.
    fn agent(&self, peers: &[SocketAddr]) -> ReplicaAgent {
        let group = ReplicaGroup::new(peers.to_vec())
            .with_peer_timeout(Duration::from_secs(2))
            .with_sync_interval(Duration::from_millis(50));
        ReplicaAgent::new(group, Arc::clone(&self.router), Arc::clone(&self.state))
    }

    /// This gateway's `(model_version, kb_version)` vector as reported on
    /// the wire by `Stats`.
    fn reported_versions(&self) -> Vec<KeyVersions> {
        let mut client = Client::connect(self.addr).expect("connect for stats");
        let report = client.stats_report().expect("stats report");
        report.replica.expect("replicated gateway").versions
    }

    fn shutdown(self) {
        let client = Client::connect(self.addr).expect("connect for shutdown");
        client.shutdown().expect("shutdown ack");
        self.thread.join().expect("no panic").expect("clean exit");
    }
}

/// Trains a second fitted service over the same demo world (same
/// formulary, different training seed) — the "re-trained model" a reload
/// ships to one replica and anti-entropy carries to the rest.
fn retrained_service_bytes(world: &DemoWorld) -> Vec<u8> {
    let observed: Vec<usize> = (0..55).collect();
    let mut rng = StdRng::seed_from_u64(DEMO_SEED ^ 0xbeef);
    let retrained = ServiceBuilder::fast()
        .hidden_dim(16)
        .epochs(25, 30)
        .fit_chronic(
            &world.cohort,
            &observed,
            &world.drug_features,
            &world.ddi,
            &mut rng,
        )
        .expect("retrain");
    let dir = std::env::temp_dir().join("dssddi-replica-tests");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join(format!("retrained-{}.dssd", std::process::id()));
    retrained.save(&path).expect("save retrained");
    let bytes = std::fs::read(&path).expect("read retrained");
    std::fs::remove_file(&path).ok();
    bytes
}

/// The upgraded KB an operator ships: the demo's nitrate pair becomes a
/// managed contraindication, bumping the embedded KB version.
fn upgraded_kb(world: &DemoWorld) -> KnowledgeBase {
    let mut kb = KnowledgeBase::from_ddi_graph(&world.ddi, &world.registry).expect("kb from graph");
    kb.upsert(
        61,
        59,
        KbFact {
            severity: Severity::Contraindicated,
            evidence: EvidenceLevel::Established,
            mechanism: "nitrate potentiation".to_string(),
            management: "do not combine".to_string(),
        },
    )
    .expect("upsert");
    kb
}

#[test]
fn a_reload_sent_to_one_replica_converges_on_all_three() {
    let (_catalog, world) = demo_catalog(DEMO_SEED).expect("demo world");
    let key = ModelKey::new("chronic").expect("key");

    let a = Gateway::spawn("127.0.0.1:0").expect("gateway a");
    let b = Gateway::spawn("127.0.0.1:0").expect("gateway b");
    let c = Gateway::spawn("127.0.0.1:0").expect("gateway c");
    let agent_a = a.agent(&[b.addr, c.addr]);
    let agent_b = b.agent(&[a.addr, c.addr]);
    let agent_c = c.agent(&[a.addr, b.addr]);

    // Ship the upgraded KB to replica A only.
    let new_kb = upgraded_kb(&world);
    let mut ops = Client::connect(a.addr).expect("ops client");
    let kb_info = ops
        .reload_kb(&key, &new_kb.to_container_bytes())
        .expect("reload kb");
    assert_eq!(kb_info.version, new_kb.version());
    assert!(kb_info.version > 1, "upgrade must move the KB version");

    // Ship a retrained model to replica B only.
    let retrained = retrained_service_bytes(&world);
    let mut ops_b = Client::connect(b.addr).expect("ops client b");
    let info = ops_b.reload_model(&key, &retrained).expect("reload model");
    assert!(info.fitted);

    // One anti-entropy round per agent: A pulls B's model, B pulls A's
    // KB, C pulls both.
    let round_a = agent_a.sync_round();
    let round_b = agent_b.sync_round();
    let round_c = agent_c.sync_round();
    assert_eq!(round_a.peers_polled, 2);
    assert_eq!(
        round_a.pulls_failed + round_b.pulls_failed + round_c.pulls_failed,
        0
    );
    assert!(
        round_a.pulls_applied + round_b.pulls_applied + round_c.pulls_applied >= 3,
        "a: {round_a:?}, b: {round_b:?}, c: {round_c:?}"
    );

    // All three replicas now report the same version vector over Stats.
    let versions_a = a.reported_versions();
    let chronic = versions_a
        .iter()
        .find(|entry| entry.key == key)
        .expect("chronic entry")
        .clone();
    assert_eq!(chronic.kb_version, new_kb.version());
    assert_eq!(
        chronic.model_version, 2,
        "one reload on top of the seed model"
    );
    assert_eq!(versions_a, b.reported_versions());
    assert_eq!(versions_a, c.reported_versions());

    // Converged replicas answer bit-identically: the same critique and
    // the same suggestion scores, from every peer.
    let check = CheckPrescriptionRequest::new(vec![DrugId::new(61), DrugId::new(59)]);
    let requests = demo_requests(&world, 4, 3);
    let mut baseline = None;
    for gateway in [&a, &b, &c] {
        let mut client = Client::connect(gateway.addr).expect("connect");
        let critique = client.check_prescription(&key, &check).expect("critique");
        assert_eq!(critique.kb_version, Some(new_kb.version()));
        assert!(critique.has_contraindicated());
        let suggested = client.suggest_batch(&key, &requests).expect("batch");
        let bits: Vec<Vec<u32>> = suggested
            .iter()
            .map(|response| response.drugs.iter().map(|d| d.score.to_bits()).collect())
            .collect();
        match &baseline {
            None => baseline = Some((critique, bits)),
            Some((first_critique, first_bits)) => {
                assert_eq!(
                    &critique, first_critique,
                    "critiques differ across replicas"
                );
                assert_eq!(
                    &bits, first_bits,
                    "suggestion scores differ across replicas"
                );
            }
        }
    }

    // A converged group goes quiet: the next round plans nothing and the
    // reported lag is zero.
    let quiet = agent_a.sync_round();
    assert_eq!(quiet.pulls_planned, 0);
    assert_eq!(quiet.max_lag, 0);
    let report = Client::connect(a.addr)
        .expect("connect")
        .stats_report()
        .expect("stats");
    let replica = report.replica.expect("replica section");
    assert_eq!(replica.peers, 2);
    assert_eq!(replica.max_lag, 0);

    drop((agent_a, agent_b, agent_c));
    a.shutdown();
    b.shutdown();
    c.shutdown();
}

#[test]
fn killing_one_replica_mid_traffic_sustains_clients_and_restart_catches_up() {
    let (_catalog, world) = demo_catalog(DEMO_SEED).expect("demo world");
    let key = ModelKey::new("chronic").expect("key");

    let a = Gateway::spawn("127.0.0.1:0").expect("gateway a");
    let b = Gateway::spawn("127.0.0.1:0").expect("gateway b");
    let c = Gateway::spawn("127.0.0.1:0").expect("gateway c");
    let victim_addr = c.addr;
    let agent_b = b.agent(&[a.addr, victim_addr]);
    let mut victim_thread = Some(c.thread);

    // The clinical client starts on the victim, so the kill lands on a
    // live connection and fail-over has to actually happen.
    let mut client =
        ReplicaClient::connect(&[victim_addr, a.addr, b.addr], Duration::from_secs(2), 7)
            .expect("replica client");

    let check = CheckPrescriptionRequest::new(vec![DrugId::new(61), DrugId::new(59)]);
    let total = 300u32;
    let mut ok = 0u32;
    let mut failed = 0u32;
    for frame in 0..total {
        if frame == total / 3 {
            // Kill replica C mid-run — the traffic loop keeps going.
            let victim = Client::connect(victim_addr).expect("connect victim");
            victim.shutdown().expect("victim shutdown ack");
            if let Some(thread) = victim_thread.take() {
                thread.join().expect("no panic").expect("clean exit");
            }
        }
        match client.check_prescription(&key, &check) {
            Ok(report) => {
                assert_eq!(report.kb_version, Some(1));
                ok += 1;
            }
            Err(_) => failed += 1,
        }
    }
    assert!(victim_thread.is_none(), "kill point must have been reached");
    assert_eq!(ok + failed, total);
    assert!(
        u64::from(ok) * 100 >= u64::from(total) * 99,
        "client success dropped below 99%: {ok}/{total} ok, {failed} failed"
    );

    // With C dead, ship the upgraded KB to A; B converges by anti-entropy
    // (the unreachable peer costs one bounded timeout, nothing else).
    let new_kb = upgraded_kb(&world);
    let mut ops = Client::connect(a.addr).expect("ops client");
    ops.reload_kb(&key, &new_kb.to_container_bytes())
        .expect("reload kb");
    let round_b = agent_b.sync_round();
    assert_eq!(
        round_b.peers_unreachable, 1,
        "dead C costs one unreachable peer"
    );
    assert_eq!(round_b.pulls_applied, 1, "B pulls the new KB from A");

    // Restart the killed replica on the same address: a fresh process with
    // the seed catalog (KB v1), which must sync itself back to the group.
    let restarted = respawn(victim_addr);
    let agent_c = restarted.agent(&[a.addr, b.addr]);
    let round_c = agent_c.sync_round();
    assert_eq!(round_c.peers_polled, 2);
    assert!(
        round_c.pulls_applied >= 1,
        "restart must pull the missed KB: {round_c:?}"
    );
    assert_eq!(round_c.pulls_failed, 0);

    let chronic = restarted
        .reported_versions()
        .into_iter()
        .find(|entry| entry.key == key)
        .expect("chronic entry");
    assert_eq!(
        chronic.kb_version,
        new_kb.version(),
        "restarted replica caught up"
    );
    let chronic_a = a
        .reported_versions()
        .into_iter()
        .find(|entry| entry.key == key)
        .expect("chronic entry");
    assert_eq!(chronic.kb_version, chronic_a.kb_version);

    // And it serves the upgraded critique, bit-identically to A.
    let mut back = Client::connect(restarted.addr).expect("connect restarted");
    let critique = back.check_prescription(&key, &check).expect("critique");
    assert_eq!(critique.kb_version, Some(new_kb.version()));
    assert!(critique.has_contraindicated());

    drop((agent_b, agent_c, client));
    a.shutdown();
    b.shutdown();
    restarted.shutdown();
}

/// Rebinds a gateway on the exact address a killed replica vacated. The
/// kernel may briefly hold the port, so bind is retried for a bounded
/// window before giving up.
fn respawn(addr: SocketAddr) -> Gateway {
    let spec = addr.to_string();
    for _attempt in 0..50 {
        match Gateway::spawn(&spec) {
            Ok(gateway) => return gateway,
            Err(_) => std::thread::sleep(Duration::from_millis(100)),
        }
    }
    panic!("could not rebind {spec} within 5s");
}
