//! The DSSDDI serving gateway binary.
//!
//! Loads one or more trained `DSSD` model files into a [`ModelCatalog`] and
//! serves them over TCP with the versioned wire protocol — the *train →
//! save → serve → query* deployment story of the decision support system.
//! With `--peer` flags the process becomes one replica of a group: a
//! seeded anti-entropy agent keeps its catalog converged with its peers
//! (see [`dssddi_replica`]).
//!
//! ```text
//! dssddi-serve [--listen ADDR] [--metrics-listen ADDR] [--demo] [--seed S]
//!              [--kb KEY=PATH.dskb ...]
//!              [--peer ADDR ...] [--sync-interval-ms MS]
//!              [--max-in-flight N] [--queue-depth N] [--queue-wait-ms MS]
//!              [--rate-default RPS[:BURST]] [--rate KEY=RPS[:BURST] ...]
//!              [--quota KEY=N ...] [KEY=PATH.dssd ...]
//!
//!   --listen ADDR   address to bind (default 127.0.0.1:7878; port 0 picks
//!                   an ephemeral port, printed on startup)
//!   --metrics-listen ADDR   also serve Prometheus-text metrics over HTTP
//!                   at `GET /metrics` on ADDR (off by default; port 0
//!                   picks an ephemeral port, printed on startup as
//!                   `dssddi-serve metrics listening on <addr>`)
//!   --demo          train and serve the deterministic demo catalog
//!                   (shards "chronic" and "critique") instead of, or in
//!                   addition to, loading files
//!   --seed S        demo training seed (default 7)
//!   --kb KEY=PATH   load PATH (a KnowledgeBase::save DSKB file) as the
//!                   clinical knowledge base of shard KEY; repeatable.
//!                   Shards without one critique against a KB seeded from
//!                   their own DDI graph (severity defaults by sign).
//!   KEY=PATH        load PATH (a DecisionService::save file) under the
//!                   routing key KEY; repeatable
//!
//! Replication (each replica lists every OTHER replica as a peer; the
//! group converges by pulling whole containers from whoever is ahead):
//!
//!   --peer ADDR             a peer replica's address; repeatable. Arms
//!                           the anti-entropy agent and the ReplicaStats
//!                           section of Stats responses.
//!   --sync-interval-ms MS   pause between anti-entropy rounds (default
//!                           500; jittered per replica so loops drift
//!                           apart instead of polling in lock-step)
//!
//! Admission control (all opt-in; excess load is shed with typed
//! `Overloaded` error frames instead of stalling or collapsing):
//!
//!   --max-in-flight N       at most N routed calls execute concurrently
//!                           across the gateway
//!   --queue-depth N         callers allowed to wait for a free slot when
//!                           all are busy (default 0: shed immediately)
//!   --queue-wait-ms MS      longest a queued caller waits before it is
//!                           shed (default 100 ms)
//!   --rate-default RPS[:BURST]  token-bucket rate limit for every shard
//!                           without an explicit --rate (BURST defaults to
//!                           one second of RPS)
//!   --rate KEY=RPS[:BURST]  per-shard rate limit; repeatable
//!   --quota KEY=N           at most N routed calls in flight for one
//!                           shard; repeatable
//! ```
//!
//! On startup the gateway prints exactly one line
//! `dssddi-serve listening on <addr>` to stdout, so wrappers (CI, scripts)
//! can scrape the ephemeral port. It exits cleanly when a client sends the
//! `Shutdown` message.

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use dssddi_obs::scrape::MetricsServer;
use dssddi_replica::{ReplicaAgent, ReplicaGroup};
use dssddi_serving::demo::{demo_catalog, DEMO_SEED};
use dssddi_serving::{
    AdmissionConfig, ModelCatalog, ModelKey, RateLimit, ReplicaState, Router, Server,
};

struct Args {
    listen: String,
    metrics_listen: Option<String>,
    demo: bool,
    seed: u64,
    models: Vec<(String, String)>,
    kbs: Vec<(String, String)>,
    peers: Vec<String>,
    sync_interval: Duration,
    admission: AdmissionConfig,
}

fn usage() -> &'static str {
    "usage: dssddi-serve [--listen ADDR] [--metrics-listen ADDR] [--demo] \
     [--seed S] [--kb KEY=PATH.dskb ...] [--peer ADDR ...] [--sync-interval-ms MS] \
     [--max-in-flight N] [--queue-depth N] \
     [--queue-wait-ms MS] [--rate-default RPS[:BURST]] \
     [--rate KEY=RPS[:BURST] ...] [--quota KEY=N ...] [KEY=PATH.dssd ...]\n\
     serve trained DSSD model files (or the --demo catalog) over TCP, each \
     paired with a clinical knowledge base (--kb, or seeded from the \
     shard's DDI graph); --peer flags make the process one replica of a \
     group kept converged by anti-entropy; admission flags shed excess \
     load with typed Overloaded errors instead of stalling; \
     --metrics-listen serves Prometheus metrics at GET /metrics"
}

/// Parses `RPS` or `RPS:BURST` into a validated rate limit (burst defaults
/// to one second of the rate).
fn parse_rate(spec: &str) -> Result<RateLimit, String> {
    let (rate, burst) = match spec.split_once(':') {
        Some((rate, burst)) => (
            rate.parse::<f64>()
                .map_err(|e| format!("invalid rate {rate:?}: {e}"))?,
            burst
                .parse::<f64>()
                .map_err(|e| format!("invalid burst {burst:?}: {e}"))?,
        ),
        None => {
            let rate = spec
                .parse::<f64>()
                .map_err(|e| format!("invalid rate {spec:?}: {e}"))?;
            (rate, rate)
        }
    };
    RateLimit::new(rate, burst).map_err(|e| e.to_string())
}

fn parse_args(args: &[String]) -> Result<Args, String> {
    let mut parsed = Args {
        listen: "127.0.0.1:7878".to_string(),
        metrics_listen: None,
        demo: false,
        seed: DEMO_SEED,
        models: Vec::new(),
        kbs: Vec::new(),
        peers: Vec::new(),
        sync_interval: Duration::from_millis(500),
        admission: AdmissionConfig {
            queue_wait: Duration::from_millis(100),
            ..AdmissionConfig::default()
        },
    };
    let mut i = 0;
    while let Some(arg) = args.get(i) {
        match arg.as_str() {
            "--listen" => {
                i += 1;
                parsed.listen = args
                    .get(i)
                    .ok_or("--listen needs an address argument")?
                    .clone();
            }
            "--metrics-listen" => {
                i += 1;
                parsed.metrics_listen = Some(
                    args.get(i)
                        .ok_or("--metrics-listen needs an address argument")?
                        .clone(),
                );
            }
            "--kb" => {
                i += 1;
                let spec = args.get(i).ok_or("--kb needs a KEY=PATH.dskb argument")?;
                let (key, path) = spec
                    .split_once('=')
                    .ok_or_else(|| format!("invalid --kb {spec:?} (expected KEY=PATH.dskb)"))?;
                parsed.kbs.push((key.to_string(), path.to_string()));
            }
            "--demo" => parsed.demo = true,
            "--seed" => {
                i += 1;
                parsed.seed = args
                    .get(i)
                    .ok_or("--seed needs a number argument")?
                    .parse()
                    .map_err(|e| format!("invalid --seed: {e}"))?;
            }
            "--peer" => {
                i += 1;
                let addr = args.get(i).ok_or("--peer needs an address argument")?;
                parsed.peers.push(addr.clone());
            }
            "--sync-interval-ms" => {
                i += 1;
                let ms: u64 = args
                    .get(i)
                    .ok_or("--sync-interval-ms needs a number argument")?
                    .parse()
                    .map_err(|e| format!("invalid --sync-interval-ms: {e}"))?;
                if ms == 0 {
                    return Err("--sync-interval-ms must be at least 1".to_string());
                }
                parsed.sync_interval = Duration::from_millis(ms);
            }
            "--max-in-flight" => {
                i += 1;
                let n: usize = args
                    .get(i)
                    .ok_or("--max-in-flight needs a number argument")?
                    .parse()
                    .map_err(|e| format!("invalid --max-in-flight: {e}"))?;
                if n == 0 {
                    return Err("--max-in-flight must be at least 1".to_string());
                }
                parsed.admission.max_in_flight = Some(n);
            }
            "--queue-depth" => {
                i += 1;
                parsed.admission.max_queue_depth = args
                    .get(i)
                    .ok_or("--queue-depth needs a number argument")?
                    .parse()
                    .map_err(|e| format!("invalid --queue-depth: {e}"))?;
            }
            "--queue-wait-ms" => {
                i += 1;
                let ms: u64 = args
                    .get(i)
                    .ok_or("--queue-wait-ms needs a number argument")?
                    .parse()
                    .map_err(|e| format!("invalid --queue-wait-ms: {e}"))?;
                parsed.admission.queue_wait = Duration::from_millis(ms);
            }
            "--rate-default" => {
                i += 1;
                let spec = args
                    .get(i)
                    .ok_or("--rate-default needs an RPS[:BURST] argument")?;
                parsed.admission.default_rate = Some(parse_rate(spec)?);
            }
            "--rate" => {
                i += 1;
                let spec = args
                    .get(i)
                    .ok_or("--rate needs a KEY=RPS[:BURST] argument")?;
                let (key, rate) = spec
                    .split_once('=')
                    .ok_or_else(|| format!("invalid --rate {spec:?} (expected KEY=RPS[:BURST])"))?;
                let key = ModelKey::new(key).map_err(|e| e.to_string())?;
                parsed.admission.rates.push((key, parse_rate(rate)?));
            }
            "--quota" => {
                i += 1;
                let spec = args.get(i).ok_or("--quota needs a KEY=N argument")?;
                let (key, quota) = spec
                    .split_once('=')
                    .ok_or_else(|| format!("invalid --quota {spec:?} (expected KEY=N)"))?;
                let key = ModelKey::new(key).map_err(|e| e.to_string())?;
                let quota: u64 = quota
                    .parse()
                    .map_err(|e| format!("invalid --quota count: {e}"))?;
                if quota == 0 {
                    return Err("--quota must be at least 1".to_string());
                }
                parsed.admission.quotas.push((key, quota));
            }
            "--help" | "-h" => return Err(usage().to_string()),
            other => {
                let (key, path) = other.split_once('=').ok_or_else(|| {
                    format!("unrecognised argument {other:?} (model files are KEY=PATH)")
                })?;
                parsed.models.push((key.to_string(), path.to_string()));
            }
        }
        i += 1;
    }
    Ok(parsed)
}

fn build_catalog(args: &Args) -> Result<ModelCatalog, String> {
    let mut catalog = if args.demo {
        eprintln!(
            "dssddi-serve: training demo catalog (seed {}) ...",
            args.seed
        );
        let (catalog, _world) =
            demo_catalog(args.seed).map_err(|e| format!("training demo catalog: {e}"))?;
        catalog
    } else {
        ModelCatalog::new()
    };
    for (key, path) in &args.models {
        let key = ModelKey::new(key.as_str()).map_err(|e| e.to_string())?;
        catalog
            .load_file(key.clone(), path)
            .map_err(|e| format!("loading {path:?} as {key}: {e}"))?;
        eprintln!("dssddi-serve: loaded {path:?} as model {key:?}");
    }
    if catalog.is_empty() {
        return Err(format!("no models to serve\n{}", usage()));
    }
    for (key, path) in &args.kbs {
        let key = ModelKey::new(key.as_str()).map_err(|e| e.to_string())?;
        catalog
            .load_kb_file(&key, path)
            .map_err(|e| format!("loading {path:?} as knowledge base of {key}: {e}"))?;
        eprintln!("dssddi-serve: loaded {path:?} as knowledge base of {key:?}");
    }
    Ok(catalog)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&args) {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::from(2);
        }
    };
    let catalog = match build_catalog(&args) {
        Ok(catalog) => catalog,
        Err(message) => {
            eprintln!("dssddi-serve: {message}");
            return ExitCode::from(2);
        }
    };
    let keys: Vec<String> = catalog.keys().iter().map(|k| k.to_string()).collect();
    if !args.admission.is_unlimited() {
        eprintln!(
            "dssddi-serve: admission control armed (max in flight {:?}, queue depth {}, \
             queue wait {:?}, default rate {:?}, {} per-shard rates, {} quotas)",
            args.admission.max_in_flight,
            args.admission.max_queue_depth,
            args.admission.queue_wait,
            args.admission.default_rate,
            args.admission.rates.len(),
            args.admission.quotas.len(),
        );
    }
    // Register every serving-path metric family before the first request,
    // so an early scrape already lists them (at zero).
    dssddi_serving::register_metrics();
    let metrics_server = match args.metrics_listen.as_deref() {
        Some(addr) => match MetricsServer::bind(addr) {
            Ok(server) => {
                println!("dssddi-serve metrics listening on {}", server.local_addr());
                Some(server)
            }
            Err(error) => {
                eprintln!("dssddi-serve: cannot bind metrics endpoint {addr}: {error}");
                return ExitCode::from(1);
            }
        },
        None => None,
    };
    let mut router = Router::with_admission(catalog, args.admission.clone());
    let replica = if args.peers.is_empty() {
        None
    } else {
        let group = match ReplicaGroup::parse(&args.peers) {
            Ok(group) => group,
            Err(error) => {
                eprintln!("dssddi-serve: {error}");
                return ExitCode::from(2);
            }
        };
        // Seed the sync jitter from the listen address so co-deployed
        // replicas (which differ exactly there) drift apart.
        let seed = args
            .listen
            .bytes()
            .fold(0xcbf2_9ce4_8422_2325u64, |acc, b| {
                (acc ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3)
            });
        let group = group.with_sync_interval(args.sync_interval).with_seed(seed);
        let state = Arc::new(ReplicaState::default());
        router.attach_replica(Arc::clone(&state));
        Some((group, state))
    };
    let server = match Server::bind(args.listen.as_str(), router) {
        Ok(server) => server,
        Err(error) => {
            eprintln!("dssddi-serve: cannot bind {}: {error}", args.listen);
            return ExitCode::from(1);
        }
    };
    match server.local_addr() {
        Ok(addr) => {
            // The single scrape-able startup line; everything else goes to
            // stderr so wrappers can rely on stdout's shape.
            println!("dssddi-serve listening on {addr}");
            eprintln!("dssddi-serve: serving models: {}", keys.join(", "));
        }
        Err(error) => {
            eprintln!("dssddi-serve: cannot read bound address: {error}");
            return ExitCode::from(1);
        }
    }
    let agent = replica.map(|(group, state)| {
        eprintln!(
            "dssddi-serve: replica group armed ({} peers, sync interval {:?})",
            group.len(),
            group.sync_interval(),
        );
        ReplicaAgent::new(group, server.router_arc(), state).spawn()
    });
    let outcome = server.run();
    if let Some(agent) = agent {
        agent.stop();
    }
    drop(metrics_server); // joins the scrape thread before exit
    match outcome {
        Ok(()) => {
            eprintln!("dssddi-serve: shutdown complete");
            ExitCode::SUCCESS
        }
        Err(error) => {
            eprintln!("dssddi-serve: server failed: {error}");
            ExitCode::from(1)
        }
    }
}
