//! The per-gateway anti-entropy agent.
//!
//! One [`ReplicaAgent`] runs inside every replicated gateway process. Each
//! *sync round* it polls every peer of its [`ReplicaGroup`] with one
//! `PeerStatus` exchange, plans pulls with [`plan_pulls`] wherever the peer
//! is ahead, fetches the whole `DSSD`/`DSKB` containers with `PeerSync`,
//! and applies them through the router's monotone sync paths (which refuse
//! to move a shard backwards, so rounds are idempotent and races with
//! concurrent reloads or other agents are benign). Unreachable peers cost
//! one bounded timeout and are retried next round — anti-entropy is a
//! repair loop, not a transaction.
//!
//! [`ReplicaAgent::sync_round`] is synchronous so tests can drive
//! convergence deterministically; [`ReplicaAgent::spawn`] wraps it in a
//! background thread with a seeded, jittered interval for production use.

use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use dssddi_serving::{Client, ReplicaState, Router, SyncArtifact};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::group::ReplicaGroup;
use crate::plan::{plan_pulls, version_lag};

/// What one sync round did — returned by [`ReplicaAgent::sync_round`] so
/// tests and operators can assert on a round's outcome directly.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SyncRoundReport {
    /// Peers that answered the `PeerStatus` exchange.
    pub peers_polled: usize,
    /// Peers that could not be reached (or failed mid-exchange); each is
    /// retried on the next round.
    pub peers_unreachable: usize,
    /// Pulls planned because a peer advertised a newer artifact.
    pub pulls_planned: usize,
    /// Pulls fetched *and* applied (the local shard actually moved).
    pub pulls_applied: usize,
    /// Pulls that failed (transport fault, or the fetched container was
    /// rejected — e.g. foreign formulary).
    pub pulls_failed: usize,
    /// Container bytes fetched by the applied pulls.
    pub bytes_pulled: u64,
    /// The largest per-key version gap this replica sat behind any peer at
    /// the start of the round (0 = converged).
    pub max_lag: u64,
}

/// The anti-entropy agent of one replicated gateway.
#[derive(Debug)]
pub struct ReplicaAgent {
    router: Arc<Router>,
    state: Arc<ReplicaState>,
    group: ReplicaGroup,
}

impl ReplicaAgent {
    /// Builds the agent and stamps the group's peer count into the shared
    /// [`ReplicaState`] (the same instance attached to the router with
    /// `Router::attach_replica`, so `Stats` responses report it).
    pub fn new(group: ReplicaGroup, router: Arc<Router>, state: Arc<ReplicaState>) -> Self {
        state.set_peers(group.len());
        Self {
            router,
            state,
            group,
        }
    }

    /// The agent's group configuration.
    pub fn group(&self) -> &ReplicaGroup {
        &self.group
    }

    /// Runs one full anti-entropy round against every peer, synchronously.
    ///
    /// Peer failures are contained: an unreachable peer (bounded by the
    /// group's peer timeout) or a failed pull is counted in the report and
    /// retried next round, never propagated. The local version vector is
    /// re-read per peer, so a pull applied from one peer is not re-pulled
    /// from the next.
    pub fn sync_round(&self) -> SyncRoundReport {
        let mut report = SyncRoundReport::default();
        let mut max_lag = 0u64;
        for peer in self.group.peers() {
            let local = self.router.version_vector();
            let mut client = match Client::connect_any(&[*peer], self.group.peer_timeout()) {
                Ok(client) => client,
                Err(_) => {
                    report.peers_unreachable += 1;
                    continue;
                }
            };
            let theirs = match client.peer_status(&local) {
                Ok(versions) => versions,
                Err(_) => {
                    report.peers_unreachable += 1;
                    continue;
                }
            };
            report.peers_polled += 1;
            max_lag = max_lag.max(version_lag(&local, &theirs));
            for action in plan_pulls(&local, &theirs) {
                report.pulls_planned += 1;
                let pulled = client.peer_sync(&action.key, action.artifact).and_then(
                    |(version, container)| {
                        let applied = match action.artifact {
                            SyncArtifact::Model => {
                                self.router
                                    .sync_model_bytes(&action.key, version, &container)?
                            }
                            SyncArtifact::Kb => {
                                self.router.sync_kb_bytes(&action.key, &container)?
                            }
                        };
                        Ok((applied, container.len() as u64))
                    },
                );
                match pulled {
                    Ok((true, bytes)) => {
                        report.pulls_applied += 1;
                        report.bytes_pulled += bytes;
                        self.state.record_sync(bytes);
                    }
                    // A concurrent reload or another agent already moved
                    // the shard at least this far — converged, not failed.
                    Ok((false, _)) => {}
                    Err(_) => report.pulls_failed += 1,
                }
            }
        }
        report.max_lag = max_lag;
        self.state.set_lag(max_lag);
        report
    }

    /// Moves the agent onto a background thread that runs
    /// [`ReplicaAgent::sync_round`] forever, pausing the group's sync
    /// interval (scaled by a seeded jitter factor in `[0.75, 1.25)` so
    /// replicas drift apart instead of polling in lock-step) between
    /// rounds. The returned handle stops and joins the thread on
    /// [`ReplicaHandle::stop`] or drop.
    pub fn spawn(self) -> ReplicaHandle {
        let gate = Arc::new(Gate {
            stopped: Mutex::new(false),
            wake: Condvar::new(),
        });
        let thread_gate = Arc::clone(&gate);
        let mut rng = StdRng::seed_from_u64(self.group.seed());
        let thread = std::thread::spawn(move || loop {
            self.sync_round();
            let interval = self.group.sync_interval();
            let jitter = rng.gen_range(0.75f64..1.25);
            let pause = Duration::from_secs_f64(interval.as_secs_f64() * jitter);
            let stopped = thread_gate
                .stopped
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            let (stopped, _timed_out) = thread_gate
                .wake
                .wait_timeout_while(stopped, pause, |stopped| !*stopped)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            if *stopped {
                break;
            }
        });
        ReplicaHandle {
            gate,
            thread: Some(thread),
        }
    }
}

/// The stop flag and wake-up channel shared between a spawned agent and
/// its handle. The flag lives under the mutex the agent's timed wait uses,
/// so a stop can never race past a sleeping agent.
#[derive(Debug)]
struct Gate {
    stopped: Mutex<bool>,
    wake: Condvar,
}

/// Handle to a spawned [`ReplicaAgent`]; stops and joins it on
/// [`ReplicaHandle::stop`] or drop.
#[derive(Debug)]
pub struct ReplicaHandle {
    gate: Arc<Gate>,
    thread: Option<JoinHandle<()>>,
}

impl ReplicaHandle {
    /// Stops the agent after its current round and joins the thread.
    pub fn stop(mut self) {
        self.halt();
    }

    fn halt(&mut self) {
        {
            let mut stopped = self
                .gate
                .stopped
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            *stopped = true;
            self.gate.wake.notify_all();
        }
        if let Some(thread) = self.thread.take() {
            // A panicked agent thread surfaces here as Err; the agent is
            // stopping either way, so the join result carries no decision.
            let _ = thread.join();
        }
    }
}

impl Drop for ReplicaHandle {
    fn drop(&mut self) {
        self.halt();
    }
}
