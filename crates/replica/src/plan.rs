//! Pure version-vector merge logic of the anti-entropy loop.
//!
//! A replica's state, as far as replication is concerned, is its *version
//! vector*: one [`KeyVersions`] per shard, carrying the monotone model
//! version the gateway assigns on every swap and the knowledge base's own
//! version (which travels inside the `DSKB` container). This module decides
//! what one replica should pull after seeing a peer's vector — and nothing
//! else: no sockets, no clocks, no randomness, so the convergence property
//! ("any interleaving of reloads and sync rounds reaches the element-wise
//! maximum") is property-testable without a network.

use dssddi_serving::{KeyVersions, ModelKey, SyncArtifact};

/// One artifact a replica should pull from a peer that is ahead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PullAction {
    /// The shard whose artifact is stale locally.
    pub key: ModelKey,
    /// Which container to pull (`DSSD` model or `DSKB` knowledge base).
    pub artifact: SyncArtifact,
    /// The version the peer advertised. The pull re-reads the peer's
    /// current version with the bytes, so a peer that moved further ahead
    /// in the meantime is still applied correctly.
    pub version: u64,
}

/// The pulls that bring `local` up to `peer` wherever the peer is ahead.
///
/// Per shared key, the model and the knowledge base are compared (and
/// pulled) independently. Keys the local replica does not hold are skipped:
/// replicas of one group are launched with the same static shard set, and
/// `PeerSync` swaps an artifact into a *live* entry rather than creating
/// one, so an unknown key is a configuration mismatch, not work.
pub fn plan_pulls(local: &[KeyVersions], peer: &[KeyVersions]) -> Vec<PullAction> {
    let mut actions = Vec::new();
    for theirs in peer {
        let Some(ours) = local.iter().find(|entry| entry.key == theirs.key) else {
            continue;
        };
        if theirs.model_version > ours.model_version {
            actions.push(PullAction {
                key: theirs.key.clone(),
                artifact: SyncArtifact::Model,
                version: theirs.model_version,
            });
        }
        if theirs.kb_version > ours.kb_version {
            actions.push(PullAction {
                key: theirs.key.clone(),
                artifact: SyncArtifact::Kb,
                version: theirs.kb_version,
            });
        }
    }
    actions
}

/// The largest per-key version gap `local` sits *behind* `peer` — 0 when
/// converged (or ahead everywhere). This is what a replica reports as
/// `max_lag` in its `ReplicaStats`, taken over all peers at the start of a
/// sync round.
pub fn version_lag(local: &[KeyVersions], peer: &[KeyVersions]) -> u64 {
    let mut lag = 0u64;
    for theirs in peer {
        if let Some(ours) = local.iter().find(|entry| entry.key == theirs.key) {
            lag = lag
                .max(theirs.model_version.saturating_sub(ours.model_version))
                .max(theirs.kb_version.saturating_sub(ours.kb_version));
        }
    }
    lag
}

/// The vector `local` reaches after pulling every action of [`plan_pulls`]
/// from this peer: the element-wise maximum over `local`'s keys. This is
/// the *model* of a completed sync round — the convergence proptest drives
/// simulated replicas through it and asserts the group meets at the maximum.
pub fn merged(local: &[KeyVersions], peer: &[KeyVersions]) -> Vec<KeyVersions> {
    local
        .iter()
        .map(|ours| {
            let (model_version, kb_version) = peer
                .iter()
                .find(|entry| entry.key == ours.key)
                .map(|theirs| {
                    (
                        ours.model_version.max(theirs.model_version),
                        ours.kb_version.max(theirs.kb_version),
                    )
                })
                .unwrap_or((ours.model_version, ours.kb_version));
            KeyVersions {
                key: ours.key.clone(),
                model_version,
                kb_version,
            }
        })
        .collect()
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // tests may panic freely
mod tests {
    use super::*;

    fn kv(key: &str, model_version: u64, kb_version: u64) -> KeyVersions {
        KeyVersions {
            key: ModelKey::new(key).unwrap(),
            model_version,
            kb_version,
        }
    }

    #[test]
    fn converged_vectors_plan_nothing() {
        let local = vec![kv("chronic", 3, 7), kv("critique", 1, 1)];
        assert!(plan_pulls(&local, &local).is_empty());
        assert_eq!(version_lag(&local, &local), 0);
    }

    #[test]
    fn ahead_peer_yields_independent_model_and_kb_pulls() {
        let local = vec![kv("chronic", 3, 7), kv("critique", 1, 1)];
        let peer = vec![kv("chronic", 5, 7), kv("critique", 1, 4)];
        let actions = plan_pulls(&local, &peer);
        assert_eq!(
            actions,
            vec![
                PullAction {
                    key: ModelKey::new("chronic").unwrap(),
                    artifact: SyncArtifact::Model,
                    version: 5,
                },
                PullAction {
                    key: ModelKey::new("critique").unwrap(),
                    artifact: SyncArtifact::Kb,
                    version: 4,
                },
            ]
        );
        assert_eq!(version_lag(&local, &peer), 3);
    }

    #[test]
    fn behind_peer_and_unknown_keys_are_ignored() {
        let local = vec![kv("chronic", 3, 7)];
        let peer = vec![kv("chronic", 2, 6), kv("other", 9, 9)];
        assert!(plan_pulls(&local, &peer).is_empty());
        assert_eq!(version_lag(&local, &peer), 0);
    }

    #[test]
    fn merged_is_the_elementwise_maximum_over_local_keys() {
        let local = vec![kv("chronic", 3, 7), kv("critique", 1, 1)];
        let peer = vec![kv("chronic", 5, 2), kv("other", 9, 9)];
        assert_eq!(
            merged(&local, &peer),
            vec![kv("chronic", 5, 7), kv("critique", 1, 1)]
        );
    }
}
