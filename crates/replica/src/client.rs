//! The deployment-level client: reads fan out, writes forward.
//!
//! [`ReplicaClient`] is how a clinical caller talks to a *replica group*
//! instead of a single gateway. It wraps the serving [`Client`] with the
//! deployment semantics spelled out:
//!
//! * **Reads fan out.** The client connects via `Client::connect_any` over
//!   the whole endpoint list and arms a retry policy that also covers
//!   connection-level faults, so idempotent requests (suggest, critique,
//!   stats, …) fail over to the healthiest replica — a killed replica
//!   costs one failed attempt, then traffic routes around it.
//! * **Writes forward to one replica.** `reload_model` / `reload_kb` ship
//!   the artifact to whichever replica the client is connected to, and to
//!   that replica only; the group's anti-entropy agents propagate it to
//!   the rest within a few sync intervals. Reloads are never retried on
//!   transport faults (they are not idempotent), exactly like on the
//!   underlying client.
//!
//! Responses are byte-identical across converged replicas — the integration
//! tests assert bit-equality of critique responses from all replicas after
//! a reload converges.

use std::net::SocketAddr;
use std::time::Duration;

use dssddi_core::{CheckPrescriptionRequest, InteractionReport, SuggestRequest, SuggestResponse};
use dssddi_serving::{
    Client, KbInfo, ModelInfo, ModelKey, ModelStats, RetryPolicy, ServingError, StatsReport,
};

/// The retry policy [`ReplicaClient::connect`] arms: 4 attempts with
/// jittered exponential backoff from 25 ms capped at 400 ms, covering
/// `Overloaded` rejections *and* connection faults — the fail-over knob.
fn default_policy() -> RetryPolicy {
    RetryPolicy::new(4, Duration::from_millis(25), Duration::from_millis(400))
        .retry_connection_faults(true)
}

/// A blocking client for a whole replica group.
#[derive(Debug)]
pub struct ReplicaClient {
    inner: Client,
}

impl ReplicaClient {
    /// Connects to the first healthy replica of `endpoints` and arms
    /// fail-over retries (see the module docs). `timeout` bounds each
    /// connect attempt and each response; `seed` drives the retry jitter —
    /// fix it in tests, make it distinct per client in a fleet.
    pub fn connect(
        endpoints: &[SocketAddr],
        timeout: Duration,
        seed: u64,
    ) -> Result<Self, ServingError> {
        let mut inner = Client::connect_any(endpoints, timeout)?;
        inner.set_retry_policy(Some(default_policy()), seed);
        Ok(Self { inner })
    }

    /// Replaces the armed retry policy (`None` disarms fail-over).
    pub fn set_retry_policy(&mut self, policy: Option<RetryPolicy>, seed: u64) {
        self.inner.set_retry_policy(policy, seed);
    }

    /// Asks one model shard for a top-k suggestion (read: fans over).
    pub fn suggest(
        &mut self,
        model: &ModelKey,
        request: &SuggestRequest,
    ) -> Result<SuggestResponse, ServingError> {
        self.inner.suggest(model, request)
    }

    /// Sends a whole batch in one frame (read: fans over).
    pub fn suggest_batch(
        &mut self,
        model: &ModelKey,
        requests: &[SuggestRequest],
    ) -> Result<Vec<SuggestResponse>, ServingError> {
        self.inner.suggest_batch(model, requests)
    }

    /// Critiques an existing prescription against one shard's DDI graph
    /// (read: fans over).
    pub fn check_prescription(
        &mut self,
        model: &ModelKey,
        request: &CheckPrescriptionRequest,
    ) -> Result<InteractionReport, ServingError> {
        self.inner.check_prescription(model, request)
    }

    /// Lists the models the connected replica serves (identical across a
    /// converged group).
    pub fn list_models(&mut self) -> Result<Vec<ModelInfo>, ServingError> {
        self.inner.list_models()
    }

    /// Per-model serving statistics of the connected replica. Statistics
    /// are per-replica, *not* aggregated: each replica counts the traffic
    /// it served.
    pub fn stats(&mut self) -> Result<Vec<(ModelKey, ModelStats)>, ServingError> {
        self.inner.stats()
    }

    /// Full statistics report of the connected replica, including its
    /// `ReplicaStats` (peers, syncs, bytes shipped, per-key versions, lag).
    pub fn stats_report(&mut self) -> Result<StatsReport, ServingError> {
        self.inner.stats_report()
    }

    /// Summary of the knowledge base paired with one shard.
    pub fn kb_info(&mut self, model: &ModelKey) -> Result<KbInfo, ServingError> {
        self.inner.kb_info(model)
    }

    /// Round-trip liveness probe against the connected replica.
    pub fn ping(&mut self) -> Result<Duration, ServingError> {
        self.inner.ping()
    }

    /// Ships a `DSSD` container to *one* replica (write: forwards); the
    /// group's anti-entropy agents propagate the new model version to
    /// every other replica within a few sync intervals. Never retried on
    /// transport faults.
    pub fn reload_model(
        &mut self,
        model: &ModelKey,
        container: &[u8],
    ) -> Result<ModelInfo, ServingError> {
        self.inner.reload_model(model, container)
    }

    /// Ships a `DSKB` container to *one* replica (write: forwards); the
    /// KB's embedded version rides the anti-entropy loop to the rest of
    /// the group. Never retried on transport faults.
    pub fn reload_kb(
        &mut self,
        model: &ModelKey,
        container: &[u8],
    ) -> Result<KbInfo, ServingError> {
        self.inner.reload_kb(model, container)
    }

    /// The wrapped single-connection client, for operations without a
    /// deployment story (peer messages, shutdown).
    pub fn client_mut(&mut self) -> &mut Client {
        &mut self.inner
    }

    /// Unwraps into the underlying client, keeping its endpoint health
    /// memory and retry policy.
    pub fn into_inner(self) -> Client {
        self.inner
    }
}
