//! Static replica-group configuration.
//!
//! A [`ReplicaGroup`] is the one piece of deployment configuration a
//! replicated gateway needs: the addresses of its *peers* (every other
//! replica of the same logical deployment — the local listen address is
//! not in the list), how often to run the anti-entropy loop, how long to
//! wait on an unreachable peer, and a seed for the loop's jitter. Peer
//! lists are static: replicas join by being restarted with a longer list,
//! exactly like the model catalog itself is configured at startup.

use std::net::{SocketAddr, ToSocketAddrs};
use std::time::Duration;

use dssddi_serving::ServingError;

/// Default pause between anti-entropy rounds (pre-jitter).
pub const DEFAULT_SYNC_INTERVAL: Duration = Duration::from_millis(500);

/// Default bound on connecting to a peer and on waiting for each of its
/// responses. Replication is a background repair path, so the bound is
/// tight: a stalled peer costs one round, not a hung agent.
pub const DEFAULT_PEER_TIMEOUT: Duration = Duration::from_secs(2);

/// The static peer list and timing knobs of one replica.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicaGroup {
    peers: Vec<SocketAddr>,
    sync_interval: Duration,
    peer_timeout: Duration,
    seed: u64,
}

impl ReplicaGroup {
    /// A group with the given peers and default timing (sync every
    /// [`DEFAULT_SYNC_INTERVAL`], peer I/O bounded by
    /// [`DEFAULT_PEER_TIMEOUT`], seed 0). An empty peer list is valid and
    /// makes the agent a no-op — a single-replica deployment.
    pub fn new(peers: Vec<SocketAddr>) -> Self {
        Self {
            peers,
            sync_interval: DEFAULT_SYNC_INTERVAL,
            peer_timeout: DEFAULT_PEER_TIMEOUT,
            seed: 0,
        }
    }

    /// Resolves a list of `host:port` peer specs (the `--peer` flags of
    /// `dssddi-serve`) into a group, taking the first address each spec
    /// resolves to.
    pub fn parse(specs: &[String]) -> Result<Self, ServingError> {
        let mut peers = Vec::with_capacity(specs.len());
        for spec in specs {
            let addr = spec
                .to_socket_addrs()
                .map_err(|e| ServingError::Io {
                    what: format!("resolving peer {spec:?}: {e}"),
                })?
                .next()
                .ok_or_else(|| ServingError::Io {
                    what: format!("peer {spec:?} resolved to no socket addresses"),
                })?;
            peers.push(addr);
        }
        Ok(Self::new(peers))
    }

    /// Replaces the pause between anti-entropy rounds.
    pub fn with_sync_interval(mut self, interval: Duration) -> Self {
        self.sync_interval = interval;
        self
    }

    /// Replaces the per-peer connect/response timeout.
    pub fn with_peer_timeout(mut self, timeout: Duration) -> Self {
        self.peer_timeout = timeout;
        self
    }

    /// Replaces the jitter seed. Give each replica of a deployment a
    /// distinct seed so their sync loops drift apart instead of polling in
    /// lock-step.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The peer addresses (not including the local replica).
    pub fn peers(&self) -> &[SocketAddr] {
        &self.peers
    }

    /// Number of peers.
    pub fn len(&self) -> usize {
        self.peers.len()
    }

    /// True for a single-replica deployment (no peers to sync with).
    pub fn is_empty(&self) -> bool {
        self.peers.is_empty()
    }

    /// The pause between anti-entropy rounds (pre-jitter).
    pub fn sync_interval(&self) -> Duration {
        self.sync_interval
    }

    /// The per-peer connect/response timeout.
    pub fn peer_timeout(&self) -> Duration {
        self.peer_timeout
    }

    /// The jitter seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // tests may panic freely
mod tests {
    use super::*;

    #[test]
    fn parse_resolves_literal_addresses() {
        let group =
            ReplicaGroup::parse(&["127.0.0.1:7879".to_string(), "127.0.0.1:7880".to_string()])
                .unwrap();
        assert_eq!(group.len(), 2);
        assert_eq!(
            group.peers().first().map(|a| a.port()),
            Some(7879),
            "peer order is preserved"
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        let error = ReplicaGroup::parse(&["not an address".to_string()]).unwrap_err();
        assert!(matches!(error, ServingError::Io { .. }));
    }
}
