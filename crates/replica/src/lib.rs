//! # dssddi-replica
//!
//! Replica groups and catalog replication: from a *process* to a
//! *deployment*. A single `dssddi-serve` gateway is a single point of
//! failure for a clinical decision-support workflow; this crate turns N
//! gateway processes into one logical deployment per
//! [`ModelKey`](dssddi_serving::ModelKey):
//!
//! * [`group`] — [`ReplicaGroup`]: the static peer list plus sync-interval,
//!   peer-timeout and jitter-seed knobs. Peers are configured at startup
//!   (`dssddi-serve --peer ADDR`, repeatable), like the catalog itself.
//! * [`plan`] — the pure version-vector merge logic: every shard carries a
//!   monotone `(model_version, kb_version)` pair (the model version is
//!   assigned by the gateway on every swap; the KB version travels inside
//!   the `DSKB` container), and [`plan_pulls`] decides what a replica
//!   should pull after seeing a peer's vector. No sockets, no clocks — the
//!   convergence property is proptested directly.
//! * [`agent`] — [`ReplicaAgent`]: the seeded anti-entropy loop. Each
//!   round it exchanges `PeerStatus` vectors with every peer, pulls whole
//!   `DSSD`/`DSKB` containers with `PeerSync` wherever a peer is ahead,
//!   and applies them through the router's monotone sync paths — reusing
//!   the exact hot-reload machinery a direct `ReloadModel`/`ReloadKb`
//!   uses, so a synced replica is bit-identical to a reloaded one.
//! * [`client`] — [`ReplicaClient`]: reads fan out over the healthiest
//!   replica with fail-over retries; writes (reloads) forward to one
//!   replica and anti-entropy carries them to the rest.
//!
//! Convergence is *eventual and monotone*: a reload lands on one replica,
//! and within a few sync intervals every replica reports the same per-key
//! versions in its `ReplicaStats` (on the `Stats` response) and serves
//! byte-identical responses. A replica that was down during the reload
//! pulls the missed artifacts on its first round back.
//!
//! ```no_run
//! use std::sync::Arc;
//! use std::time::Duration;
//!
//! use dssddi_replica::{ReplicaAgent, ReplicaClient, ReplicaGroup};
//! use dssddi_serving::demo::demo_catalog;
//! use dssddi_serving::{ReplicaState, Router, Server};
//!
//! // One replica process (repeat per replica, each listing the OTHERS as
//! // peers; `dssddi-serve --demo --peer ...` is exactly this wiring):
//! let (catalog, _world) = demo_catalog(7)?;
//! let state = Arc::new(ReplicaState::default());
//! let mut router = Router::new(catalog);
//! router.attach_replica(Arc::clone(&state));
//! let server = Server::bind("127.0.0.1:7878", router)?;
//! let group = ReplicaGroup::parse(&[
//!     "127.0.0.1:7879".to_string(),
//!     "127.0.0.1:7880".to_string(),
//! ])?
//! .with_seed(1);
//! let agent = ReplicaAgent::new(group, server.router_arc(), state).spawn();
//! std::thread::spawn(move || server.run());
//!
//! // A clinical caller sees the deployment, not a process:
//! let endpoints: Vec<std::net::SocketAddr> = vec![
//!     "127.0.0.1:7878".parse()?,
//!     "127.0.0.1:7879".parse()?,
//!     "127.0.0.1:7880".parse()?,
//! ];
//! let mut client = ReplicaClient::connect(&endpoints, Duration::from_secs(1), 42)?;
//! # agent.stop();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
// Replication is a background repair path inside a long-lived gateway: it
// must degrade into counted, retried failures, never panics. The
// `unwrap_used`/`expect_used` denies are inherited from `[workspace.lints]`.

pub mod agent;
pub mod client;
pub mod group;
pub mod plan;

pub use agent::{ReplicaAgent, ReplicaHandle, SyncRoundReport};
pub use client::ReplicaClient;
pub use group::{ReplicaGroup, DEFAULT_PEER_TIMEOUT, DEFAULT_SYNC_INTERVAL};
pub use plan::{merged, plan_pulls, version_lag, PullAction};

// The vocabulary shared with the serving layer, re-exported so replica
// deployments can be wired from this crate alone.
pub use dssddi_serving::{KeyVersions, ReplicaState, ReplicaStats, ServingError, SyncArtifact};
