//! `top` for a gateway (or replica group): polls `Stats` and `TraceDump`
//! over the wire and prints a per-model serving table plus the slowest
//! recent requests with their per-stage latency breakdown.
//!
//! ```text
//! cargo run --release -p dssddi-replica --example dssddi-top -- \
//!     127.0.0.1:4641,127.0.0.1:4642 [--iterations N] [--interval-ms MS] \
//!     [--exemplars K]
//! ```
//!
//! Each iteration prints, per endpoint:
//!
//! * one line per model — requests, errors, shed, samples, p50/p99 ms;
//! * the gateway transport counters;
//! * the top `--exemplars` slowest data-plane requests (slowest first),
//!   each with its trace ID and the decode / admit / queue / infer /
//!   encode stage times in microseconds.

// Tests and examples may panic freely; the workspace-level panic-policy
// denies target library and binary code.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::net::{SocketAddr, ToSocketAddrs};
use std::time::Duration;

use dssddi_obs::trace::Stage;
use dssddi_serving::Client;

struct Args {
    targets: Vec<(String, SocketAddr)>,
    iterations: u32,
    interval: Duration,
    exemplars: u64,
}

fn usage() -> ! {
    eprintln!(
        "usage: dssddi-top ADDR[,ADDR...] [--iterations N] [--interval-ms MS] \
         [--exemplars K]"
    );
    std::process::exit(2);
}

fn resolve_list(spec: &str) -> Vec<(String, SocketAddr)> {
    spec.split(',')
        .map(|part| {
            let part = part.trim();
            let addr = part
                .to_socket_addrs()
                .unwrap_or_else(|e| panic!("cannot resolve {part}: {e}"))
                .next()
                .unwrap_or_else(|| panic!("no address for {part}"));
            (part.to_string(), addr)
        })
        .collect()
}

fn parse_args() -> Args {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let mut args = Args {
        targets: Vec::new(),
        iterations: 1,
        interval: Duration::from_millis(1000),
        exemplars: 5,
    };
    let mut i = 0;
    while let Some(arg) = raw.get(i) {
        match arg.as_str() {
            "--iterations" => {
                i += 1;
                args.iterations = raw
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--interval-ms" => {
                i += 1;
                let ms: u64 = raw
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
                args.interval = Duration::from_millis(ms);
            }
            "--exemplars" => {
                i += 1;
                args.exemplars = raw
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--help" | "-h" => usage(),
            spec if !spec.starts_with('-') && args.targets.is_empty() => {
                args.targets = resolve_list(spec);
            }
            _ => usage(),
        }
        i += 1;
    }
    if args.targets.is_empty() {
        usage();
    }
    args
}

fn poll_endpoint(name: &str, addr: SocketAddr, exemplars: u64) {
    let mut client = match Client::connect_timeout(addr, Duration::from_secs(2)) {
        Ok(client) => client,
        Err(error) => {
            println!("## {name}: unreachable ({error})");
            return;
        }
    };
    let report = match client.stats_report() {
        Ok(report) => report,
        Err(error) => {
            println!("## {name}: stats failed ({error})");
            return;
        }
    };
    println!("## {name}");
    println!(
        "{:<24} {:>9} {:>7} {:>7} {:>9} {:>8} {:>8}",
        "MODEL", "REQUESTS", "ERRORS", "SHED", "SAMPLES", "P50_MS", "P99_MS"
    );
    for (key, stats) in &report.models {
        println!(
            "{:<24} {:>9} {:>7} {:>7} {:>9} {:>8.2} {:>8.2}",
            key.as_str(),
            stats.requests,
            stats.errors,
            stats.shed_requests,
            stats.samples,
            stats.p50_ms,
            stats.p99_ms,
        );
    }
    let gw = &report.gateway;
    println!(
        "gateway: conns accepted={} active={} shed={} stalled_reaped={}",
        gw.connections_accepted, gw.connections_active, gw.connections_shed, gw.stalled_reaped
    );
    if let Some(replica) = &report.replica {
        println!(
            "replica: peers={} syncs={} sync_bytes={} max_lag={}",
            replica.peers, replica.syncs, replica.bytes_shipped, replica.max_lag
        );
    }
    match client.trace_dump(exemplars) {
        Ok(dump) if dump.is_empty() => println!("traces: (none yet)"),
        Ok(dump) => {
            println!(
                "{:<18} {:<24} {:<18} {:>9}  stages(us)",
                "TRACE", "MODEL", "OP", "TOTAL_US"
            );
            for exemplar in dump {
                let stages: Vec<String> = Stage::ALL
                    .iter()
                    .map(|stage| {
                        format!(
                            "{}={}",
                            stage.as_str(),
                            exemplar
                                .stage_micros
                                .get(stage.index())
                                .copied()
                                .unwrap_or(0)
                        )
                    })
                    .collect();
                println!(
                    "{:<18x} {:<24} {:<18} {:>9}  {}",
                    exemplar.trace_id,
                    exemplar.model,
                    exemplar.op,
                    exemplar.total_micros,
                    stages.join(" ")
                );
            }
        }
        Err(error) => println!("traces: dump failed ({error})"),
    }
}

fn main() {
    let args = parse_args();
    for iteration in 0..args.iterations {
        if iteration > 0 {
            std::thread::sleep(args.interval);
        }
        println!("=== iteration {} ===", iteration + 1);
        for (name, addr) in &args.targets {
            poll_endpoint(name, *addr, args.exemplars);
        }
    }
}
