//! Operator CLI for a running replica group — the tool the CI replication
//! smoke drives against three `dssddi-serve --demo` processes.
//!
//! ```text
//! # Per-replica version vectors, one line per replica and key:
//! cargo run --release -p dssddi-replica --example replica_ops -- \
//!     --versions 127.0.0.1:4641,127.0.0.1:4642,127.0.0.1:4643
//!
//! # Upgrade the demo knowledge base and ship it to ONE replica (the
//! # group's anti-entropy agents propagate it to the rest):
//! cargo run --release -p dssddi-replica --example replica_ops -- \
//!     --reload-demo-kb 127.0.0.1:4641
//!
//! # Block (bounded) until every replica reports the same kb_version for
//! # the demo key, then print it:
//! cargo run --release -p dssddi-replica --example replica_ops -- \
//!     --await-converge 127.0.0.1:4641,127.0.0.1:4642,127.0.0.1:4643
//! ```

// Tests and examples may panic freely; the workspace-level panic-policy
// denies target library and binary code.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::net::{SocketAddr, ToSocketAddrs};
use std::time::{Duration, Instant};

use dssddi_kb::{EvidenceLevel, KbFact, KnowledgeBase, Severity};
use dssddi_serving::demo::{demo_world, DEMO_SEED};
use dssddi_serving::{Client, KeyVersions, ModelKey};

fn usage() -> ! {
    eprintln!(
        "usage: replica_ops --versions ADDR[,ADDR...]\n\
         \x20      replica_ops --reload-demo-kb ADDR\n\
         \x20      replica_ops --await-converge ADDR[,ADDR...]"
    );
    std::process::exit(2);
}

fn resolve(spec: &str) -> SocketAddr {
    spec.to_socket_addrs()
        .unwrap_or_else(|e| panic!("cannot resolve {spec}: {e}"))
        .next()
        .unwrap_or_else(|| panic!("no address for {spec}"))
}

fn resolve_list(spec: &str) -> Vec<(String, SocketAddr)> {
    spec.split(',')
        .map(|part| (part.trim().to_string(), resolve(part.trim())))
        .collect()
}

fn versions_of(addr: SocketAddr) -> Vec<KeyVersions> {
    let mut client = Client::connect_timeout(addr, Duration::from_secs(2)).expect("connect");
    let report = client.stats_report().expect("stats report");
    report
        .replica
        .expect("gateway is not replicated (no --peer flags?)")
        .versions
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match (args.first().map(String::as_str), args.get(1)) {
        (Some("--versions"), Some(list)) => {
            for (name, addr) in resolve_list(list) {
                for entry in versions_of(addr) {
                    println!(
                        "{name} {} model_version={} kb_version={}",
                        entry.key, entry.model_version, entry.kb_version
                    );
                }
            }
        }
        (Some("--reload-demo-kb"), Some(target)) => {
            // The upgraded KB an operator ships in the demo story: the
            // nitrate pair becomes a managed contraindication, which bumps
            // the container's embedded version past the graph-seeded v1.
            let world = demo_world(DEMO_SEED).expect("demo world");
            let mut kb = KnowledgeBase::from_ddi_graph(&world.ddi, &world.registry)
                .expect("kb from ddi graph");
            kb.upsert(
                61,
                59,
                KbFact {
                    severity: Severity::Contraindicated,
                    evidence: EvidenceLevel::Established,
                    mechanism: "nitrate potentiation".to_string(),
                    management: "do not combine".to_string(),
                },
            )
            .expect("upsert demo fact");
            let key = ModelKey::new("chronic").expect("key");
            let mut client =
                Client::connect_timeout(resolve(target), Duration::from_secs(5)).expect("connect");
            let info = client
                .reload_kb(&key, &kb.to_container_bytes())
                .expect("reload kb");
            println!("reloaded {key} on {target}: kb_version={}", info.version);
        }
        (Some("--await-converge"), Some(list)) => {
            let replicas = resolve_list(list);
            let key = ModelKey::new("chronic").expect("key");
            let deadline = Instant::now() + Duration::from_secs(30);
            loop {
                let versions: Vec<(String, u64)> = replicas
                    .iter()
                    .map(|(name, addr)| {
                        let kb = versions_of(*addr)
                            .into_iter()
                            .find(|entry| entry.key == key)
                            .map_or(0, |entry| entry.kb_version);
                        (name.clone(), kb)
                    })
                    .collect();
                let first = versions.first().map_or(0, |(_, v)| *v);
                if first > 1 && versions.iter().all(|(_, v)| *v == first) {
                    println!("converged: kb_version={first}");
                    for (name, version) in &versions {
                        println!("  {name} kb_version={version}");
                    }
                    return;
                }
                if Instant::now() >= deadline {
                    eprintln!("replicas did not converge within 30s: {versions:?}");
                    std::process::exit(1);
                }
                std::thread::sleep(Duration::from_millis(200));
            }
        }
        _ => usage(),
    }
}
