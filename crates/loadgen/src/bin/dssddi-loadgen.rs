//! `dssddi-loadgen` — open-loop traffic generator for a live DSSDDI
//! gateway.
//!
//! Sweeps one or more connection counts against the gateway, each run
//! offering a fixed Poisson arrival rate of mixed clinical traffic with
//! Zipf hot-shard skew, and prints an achieved-throughput-vs-SLO report.
//! With `--append` the `loadgen_c{N}` results are spliced into an
//! existing `BENCH_serving.json`.
//!
//! ```text
//! dssddi-serve --listen 127.0.0.1:4547 --demo &
//! dssddi-loadgen --addr 127.0.0.1:4547 --connections 1,64,256 \
//!     --rate 800 --duration-s 5 --append BENCH_serving.json
//! ```

use std::time::Duration;

use dssddi_loadgen::{append_results, BenchEntry, LoadgenConfig, WorkloadMix};

fn usage() -> String {
    "usage: dssddi-loadgen --addr HOST:PORT [options]\n\
     \x20      dssddi-loadgen --target HOST:PORT[,HOST:PORT...] [options]\n\
     \n\
     options:\n\
     \x20 --addr HOST:PORT     gateway to drive (this or --target is required)\n\
     \x20 --target LIST        comma-separated replica endpoints to drive as one\n\
     \x20                      deployment: workers spread round-robin, fail over on\n\
     \x20                      reconnect, and the report breaks outcomes down per\n\
     \x20                      endpoint (incompatible with --chaos)\n\
     \x20 --fault-tolerant     tolerate connection-level faults (tallied per kind)\n\
     \x20                      instead of aborting — for runs that kill a replica\n\
     \x20                      on purpose; implied by --chaos\n\
     \x20 --connections LIST   comma-separated sweep of connection counts (default 4)\n\
     \x20 --rate RPS           offered frame rate across all connections (default 200)\n\
     \x20 --duration-s SECS    length of each run (default 5)\n\
     \x20 --seed N             master seed for reproducible traffic (default 17)\n\
     \x20 --zipf EXP           hot-shard skew exponent, 0 = uniform (default 1.1)\n\
     \x20 --batch N            requests per SuggestBatch frame (default 16)\n\
     \x20 --mix S:B:C:R        weights for suggest:batch:check:reload (default 55:20:24:1)\n\
     \x20 --slo-p99-ms MS      p99 objective for the SLO verdict (default 50)\n\
     \x20 --append PATH        splice loadgen_* results into an existing BENCH_serving.json\n\
     \x20 --chaos SEED:SPEC    interpose a deterministic fault-injecting proxy in front of\n\
     \x20                      --addr and tolerate the injected faults; SPEC is a comma list\n\
     \x20                      of none|reset|blackhole|delay:MS[:JIT]|trunc:N|corrupt:N|\n\
     \x20                      stall[:N:MS]|mixed, each optionally @req/@resp/@both\n\
     \x20 --smoke              CI preset: 2 s runs over 1,4 connections\n\
     \x20 --shutdown           ask the gateway to exit after the sweep\n"
        .to_string()
}

struct Args {
    config: LoadgenConfig,
    connections: Vec<usize>,
    append: Option<String>,
    chaos: Option<dssddi_chaos::FaultPlan>,
    shutdown: bool,
}

fn parse_connections(spec: &str) -> Result<Vec<usize>, String> {
    let mut out = Vec::new();
    for part in spec.split(',') {
        let n: usize = part
            .trim()
            .parse()
            .map_err(|e| format!("bad connection count {part:?}: {e}"))?;
        if n == 0 {
            return Err("connection counts must be at least 1".to_string());
        }
        out.push(n);
    }
    if out.is_empty() {
        return Err("empty connection sweep".to_string());
    }
    Ok(out)
}

fn parse_targets(spec: &str) -> Result<Vec<String>, String> {
    let out: Vec<String> = spec
        .split(',')
        .map(|part| part.trim().to_string())
        .collect();
    if out.is_empty() || out.iter().any(|t| t.is_empty()) {
        return Err(format!(
            "bad --target {spec:?}: expected a comma-separated list of HOST:PORT"
        ));
    }
    Ok(out)
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut addr: Option<String> = None;
    let mut targets: Option<Vec<String>> = None;
    let mut fault_tolerant = false;
    let mut connections = vec![4usize];
    let mut rate = 200.0f64;
    let mut duration_s = 5.0f64;
    let mut seed = 17u64;
    let mut zipf = 1.1f64;
    let mut batch = 16usize;
    let mut mix = WorkloadMix::default();
    let mut slo_p99_ms = 50.0f64;
    let mut append = None;
    let mut chaos = None;
    let mut smoke = false;
    let mut shutdown = false;

    let mut i = 0;
    while i < argv.len() {
        let arg = argv[i].as_str();
        let mut value = |name: &str| -> Result<String, String> {
            i += 1;
            argv.get(i)
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg {
            "--addr" => addr = Some(value("--addr")?),
            "--target" => targets = Some(parse_targets(&value("--target")?)?),
            "--fault-tolerant" => fault_tolerant = true,
            "--connections" => connections = parse_connections(&value("--connections")?)?,
            "--rate" => {
                rate = value("--rate")?
                    .parse()
                    .map_err(|e| format!("bad --rate: {e}"))?;
            }
            "--duration-s" => {
                duration_s = value("--duration-s")?
                    .parse()
                    .map_err(|e| format!("bad --duration-s: {e}"))?;
            }
            "--seed" => {
                seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?;
            }
            "--zipf" => {
                zipf = value("--zipf")?
                    .parse()
                    .map_err(|e| format!("bad --zipf: {e}"))?;
            }
            "--batch" => {
                batch = value("--batch")?
                    .parse()
                    .map_err(|e| format!("bad --batch: {e}"))?;
            }
            "--mix" => mix = WorkloadMix::parse(&value("--mix")?)?,
            "--slo-p99-ms" => {
                slo_p99_ms = value("--slo-p99-ms")?
                    .parse()
                    .map_err(|e| format!("bad --slo-p99-ms: {e}"))?;
            }
            "--append" => append = Some(value("--append")?),
            "--chaos" => {
                chaos = Some(
                    dssddi_chaos::FaultPlan::parse(&value("--chaos")?)
                        .map_err(|e| format!("bad --chaos: {e}"))?,
                );
            }
            "--smoke" => smoke = true,
            "--shutdown" => shutdown = true,
            "--help" | "-h" => return Err(usage()),
            other => return Err(format!("unknown argument {other:?}\n\n{}", usage())),
        }
        i += 1;
    }
    let targets = match (addr, targets) {
        (Some(_), Some(_)) => {
            return Err(format!(
                "--addr and --target are mutually exclusive\n\n{}",
                usage()
            ))
        }
        (Some(addr), None) => vec![addr],
        (None, Some(targets)) => targets,
        (None, None) => return Err(format!("--addr or --target is required\n\n{}", usage())),
    };
    if chaos.is_some() && targets.len() > 1 {
        return Err(
            "--chaos interposes one proxy in front of one gateway; it cannot fan out \
             over a --target list"
                .to_string(),
        );
    }
    if smoke {
        connections = vec![1, 4];
        duration_s = 2.0;
    }
    if !(duration_s.is_finite() && duration_s > 0.0) {
        return Err(format!("--duration-s must be positive, got {duration_s}"));
    }
    let mut config = LoadgenConfig::new(String::new());
    config.targets = targets;
    config.rate = rate;
    config.duration = Duration::from_secs_f64(duration_s);
    config.seed = seed;
    config.zipf_exponent = zipf;
    config.batch_size = batch;
    config.mix = mix;
    config.slo_p99_ms = slo_p99_ms;
    config.fault_tolerant = fault_tolerant || chaos.is_some();
    Ok(Args {
        config,
        connections,
        append,
        chaos,
        shutdown,
    })
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut args = match parse_args(&argv) {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            std::process::exit(2);
        }
    };

    // The gateways' real addresses — kept for --shutdown so the requests
    // do not go through the chaos proxy (which might corrupt them).
    let direct_targets = args.config.targets.clone();
    let chaos_handle = match args.chaos.take() {
        Some(plan) => {
            use std::net::ToSocketAddrs;
            // parse_args rejects --chaos with more than one target.
            let direct_addr = direct_targets.first().cloned().unwrap_or_default();
            let upstream = match direct_addr
                .to_socket_addrs()
                .ok()
                .and_then(|mut addrs| addrs.next())
            {
                Some(addr) => addr,
                None => {
                    eprintln!("dssddi-loadgen: cannot resolve --addr {direct_addr}");
                    std::process::exit(2);
                }
            };
            let listen = match "127.0.0.1:0".parse() {
                Ok(listen) => listen,
                Err(e) => {
                    eprintln!("dssddi-loadgen: internal listen address: {e}");
                    std::process::exit(2);
                }
            };
            let seed = plan.seed();
            let handle = dssddi_chaos::ChaosProxy::bind(listen, upstream, plan)
                .and_then(dssddi_chaos::ChaosProxy::spawn);
            match handle {
                Ok(handle) => {
                    eprintln!(
                        "dssddi-loadgen: chaos proxy {} -> {} (seed {seed})",
                        handle.addr(),
                        upstream
                    );
                    args.config.targets = vec![handle.addr().to_string()];
                    Some(handle)
                }
                Err(e) => {
                    eprintln!("dssddi-loadgen: cannot start chaos proxy: {e}");
                    std::process::exit(1);
                }
            }
        }
        None => None,
    };

    let mut entries = Vec::new();
    let mut all_slos_met = true;
    for &connections in &args.connections {
        let mut config = args.config.clone();
        config.connections = connections;
        eprintln!(
            "dssddi-loadgen: driving {} with {} connection(s) at {} frames/s for {:.1}s ...",
            config.targets.join(","),
            connections,
            config.rate,
            config.duration.as_secs_f64()
        );
        let report = match dssddi_loadgen::run(&config) {
            Ok(report) => report,
            Err(e) => {
                eprintln!("dssddi-loadgen: run failed: {e}");
                std::process::exit(1);
            }
        };
        print!("{}", report.render());
        all_slos_met &= report.slo_met();
        entries.push(BenchEntry::from_report(
            format!("loadgen_c{connections}"),
            &report,
        ));
    }

    if let Some(path) = &args.append {
        let doc = match std::fs::read_to_string(path) {
            Ok(doc) => doc,
            Err(e) => {
                eprintln!("dssddi-loadgen: cannot read {path}: {e}");
                std::process::exit(1);
            }
        };
        let spliced = match append_results(&doc, &entries) {
            Ok(spliced) => spliced,
            Err(e) => {
                eprintln!("dssddi-loadgen: cannot append to {path}: {e}");
                std::process::exit(1);
            }
        };
        if let Err(e) = std::fs::write(path, spliced) {
            eprintln!("dssddi-loadgen: cannot write {path}: {e}");
            std::process::exit(1);
        }
        println!("appended {} loadgen result(s) to {path}", entries.len());
    }

    if let Some(handle) = chaos_handle {
        let counts = handle.counts();
        println!(
            "chaos proxy: {} connection(s), {} delays, {} truncations, {} corruptions, \
             {} resets, {} stalls, {} black-holed, {} upstream failures, {} bytes forwarded",
            counts.connections,
            counts.delays,
            counts.truncations,
            counts.corruptions,
            counts.resets,
            counts.stalls,
            counts.black_holes,
            counts.upstream_failures,
            counts.bytes_forwarded
        );
        handle.shutdown();
    }

    if args.shutdown {
        for target in &direct_targets {
            match dssddi_serving::Client::connect(target.as_str()) {
                Ok(client) => {
                    if let Err(e) = client.shutdown() {
                        eprintln!("dssddi-loadgen: shutdown request to {target} failed: {e}");
                        std::process::exit(1);
                    }
                    println!("gateway {target} acknowledged shutdown");
                }
                Err(e) => {
                    eprintln!("dssddi-loadgen: cannot reconnect to {target} for shutdown: {e}");
                    std::process::exit(1);
                }
            }
        }
    }

    if !all_slos_met {
        eprintln!("dssddi-loadgen: at least one run missed its SLO");
    }
}
