//! # dssddi-loadgen
//!
//! Open-loop traffic generator for the DSSDDI serving gateway — the
//! measurement side of the admission-control story. It replays synthetic
//! chronic-disease patient populations
//! ([`PopulationSpec`](dssddi_baselines::PopulationSpec)) against a live
//! gateway over the `DSWR` wire protocol and reports what the gateway
//! actually delivered against a latency SLO.
//!
//! What makes it a *traffic simulator* rather than a benchmark loop:
//!
//! * **Open loop.** Arrivals are a Poisson process at a configured rate,
//!   scheduled in absolute time before the run. Latency is measured from
//!   each request's *scheduled* start, so server-side queueing cannot
//!   hide in the generator's own back-pressure (coordinated omission).
//! * **Hot-shard skew.** Shard choice is Zipf-distributed ([`Zipf`]):
//!   a configurable head of the model catalog receives most traffic,
//!   exercising per-shard rate limits and quotas unevenly.
//! * **Mixed clinical workload.** Single suggestions, batched
//!   suggestions, prescription critiques and rare knowledge-base reloads,
//!   in configurable proportions ([`WorkloadMix`]).
//! * **Typed shed accounting.** `Overloaded` rejections are tallied
//!   separately from successes and from unexpected errors, and
//!   cross-checked against the gateway's own `Stats` counters.
//! * **Replica-group targets.** `--target` takes a comma-separated
//!   endpoint list: workers spread round-robin across the replicas, fail
//!   over to the healthiest endpoint on reconnect, and the report breaks
//!   outcomes down per endpoint ([`TargetTally`]) with the gateway-side
//!   cross-check summed across the group.
//!
//! The `dssddi-loadgen` binary drives connection-count sweeps and can
//! splice `loadgen_*` entries into `BENCH_serving.json`
//! ([`append_results`]); [`run`] is the library entry point the
//! experiment harness calls directly.

#![warn(missing_docs)]

pub mod report;
pub mod runner;
pub mod workload;

/// Latency histogram, now shared process-wide: the implementation moved to
/// [`dssddi_obs::histogram`] so the gateway's metrics registry and this
/// load generator bucket latencies identically. Re-exported here (with the
/// old `histogram` module path) for source compatibility.
pub mod histogram {
    pub use dssddi_obs::histogram::Histogram;
}

pub use histogram::Histogram;
pub use report::{append_results, BenchEntry};
pub use runner::{run, ConnFaults, KindTally, LoadgenConfig, LoadgenReport, TargetTally};
pub use workload::{OpKind, WorkloadMix, Zipf};
