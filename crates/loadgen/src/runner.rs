//! The open-loop run engine.
//!
//! Each connection is driven by its own worker thread with a Poisson
//! arrival process: inter-arrival gaps are drawn from the exponential
//! distribution via inverse-CDF (`-ln(1-u)/λ`), accumulated into an
//! *absolute* schedule, and every request's latency is measured from its
//! **scheduled** start — not from when the worker got around to sending
//! it. A closed-loop generator silently stops offering load exactly when
//! the server slows down (coordinated omission); anchoring the schedule
//! before the run makes queueing delay show up in the recorded
//! percentiles instead of disappearing.
//!
//! Workers never panic on rejections: a typed `Overloaded` frame is the
//! admission-control contract working as designed and is tallied as a
//! shed. By default any transport-level failure (dropped connection,
//! protocol error) aborts the run with an error — a gateway under test
//! must never degrade that way. In fault-tolerant mode
//! ([`LoadgenConfig::fault_tolerant`], used by chaos runs where faults
//! are *injected* on purpose) connection faults are instead tallied per
//! kind — resets, timeouts, short reads, corrupt frames, all distinct
//! from sheds — and the worker reconnects and keeps its schedule.

use std::net::{SocketAddr, ToSocketAddrs};
use std::sync::Arc;
use std::time::{Duration, Instant};

use dssddi_core::{CheckPrescriptionRequest, DrugId, PatientId, SuggestRequest};
use dssddi_serving::demo::demo_world;
use dssddi_serving::{Client, ErrorCode, ModelKey, RetryPolicy, ServingError, WireError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::histogram::Histogram;
use crate::workload::{OpKind, WorkloadMix, Zipf};

/// Everything one load-generation run needs to know.
#[derive(Clone, Debug)]
pub struct LoadgenConfig {
    /// Gateway endpoints, `HOST:PORT` each. One entry is the classic
    /// single-gateway run. Several entries (the `--target` list) drive a
    /// whole replica group: workers are spread round-robin across the
    /// endpoints, any endpoint can serve any worker after a fail-over,
    /// and [`LoadgenReport::by_target`] breaks outcomes down per
    /// endpoint.
    pub targets: Vec<String>,
    /// Number of concurrent client connections (one worker thread each).
    pub connections: usize,
    /// Total offered frame rate across all connections, frames/second.
    /// (A `SuggestBatch` frame carries `batch_size` requests.)
    pub rate: f64,
    /// Length of the run.
    pub duration: Duration,
    /// Master seed; every worker derives its own stream from it, so runs
    /// are reproducible per (seed, connections).
    pub seed: u64,
    /// Hot-shard skew exponent for shard choice (0 = uniform).
    pub zipf_exponent: f64,
    /// Requests per `SuggestBatch` frame.
    pub batch_size: usize,
    /// Operation mix of the generated traffic.
    pub mix: WorkloadMix,
    /// The p99 latency objective (milliseconds) the report's SLO verdict
    /// is judged against.
    pub slo_p99_ms: f64,
    /// Seed of the demo world whose knowledge base `ReloadKb` frames
    /// ship. Only shards whose `registry_digest` matches that formulary
    /// receive reloads.
    pub reload_seed: u64,
    /// Tolerate connection-level faults instead of aborting the run:
    /// resets, response timeouts, short reads and corrupt frames are
    /// tallied per kind in [`LoadgenReport::conn_faults`] (distinct from
    /// typed `Overloaded` sheds) and the worker reconnects and carries
    /// on. This is the mode chaos runs (`dssddi-loadgen --chaos`) use; a
    /// plain benchmark keeps the default `false`, where any transport
    /// fault still fails the run — a gateway under test must never
    /// degrade that way on its own.
    pub fault_tolerant: bool,
}

impl LoadgenConfig {
    /// A moderate default workload against `addr`: 4 connections offering
    /// 200 frames/s for 5 seconds.
    pub fn new(addr: impl Into<String>) -> Self {
        LoadgenConfig {
            targets: vec![addr.into()],
            connections: 4,
            rate: 200.0,
            duration: Duration::from_secs(5),
            seed: 17,
            zipf_exponent: 1.1,
            batch_size: 16,
            mix: WorkloadMix::default(),
            slo_p99_ms: 50.0,
            reload_seed: dssddi_serving::demo::DEMO_SEED,
            fault_tolerant: false,
        }
    }

    fn validate(&self) -> Result<(), String> {
        if self.connections == 0 {
            return Err("need at least one connection".to_string());
        }
        if self.targets.is_empty() {
            return Err("need at least one target endpoint".to_string());
        }
        if self.targets.iter().any(|t| t.is_empty()) {
            return Err("target endpoints must be non-empty".to_string());
        }
        if !self.rate.is_finite() || self.rate <= 0.0 {
            return Err(format!("rate must be finite and > 0, got {}", self.rate));
        }
        if self.duration.is_zero() {
            return Err("duration must be positive".to_string());
        }
        if self.batch_size == 0 {
            return Err("batch size must be at least 1".to_string());
        }
        if !self.slo_p99_ms.is_finite() || self.slo_p99_ms <= 0.0 {
            return Err(format!(
                "SLO must be finite and > 0 ms, got {}",
                self.slo_p99_ms
            ));
        }
        Ok(())
    }
}

/// Per-operation-kind outcome counts.
#[derive(Clone, Copy, Debug, Default)]
pub struct KindTally {
    /// Frames sent.
    pub frames: u64,
    /// Frames answered normally.
    pub ok: u64,
    /// Frames rejected with a typed `Overloaded` error.
    pub shed: u64,
    /// Frames answered with any other typed error.
    pub errors: u64,
    /// Frames lost to a connection-level fault (fault-tolerant runs).
    pub faults: u64,
}

/// Connection-level fault counts, by kind — kept strictly separate from
/// typed `Overloaded` sheds, which are the admission-control contract
/// working as designed, not a fault.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ConnFaults {
    /// Sockets torn by the peer or the path (reset, broken pipe, refused
    /// reconnect) — any I/O-level failure that is not one of the more
    /// specific kinds below.
    pub resets: u64,
    /// Responses that never arrived inside the armed read timeout.
    pub timeouts: u64,
    /// Connections the peer closed cleanly while a response was owed.
    pub short_reads: u64,
    /// Frames that arrived but failed validation (bad magic, CRC
    /// mismatch, truncated payload, oversized declaration).
    pub corrupt_frames: u64,
}

impl ConnFaults {
    /// Total faults across all kinds.
    pub fn total(&self) -> u64 {
        self.resets + self.timeouts + self.short_reads + self.corrupt_frames
    }

    fn merge(&mut self, other: &ConnFaults) {
        self.resets += other.resets;
        self.timeouts += other.timeouts;
        self.short_reads += other.short_reads;
        self.corrupt_frames += other.corrupt_frames;
    }

    fn record(&mut self, kind: ConnFaultKind) {
        match kind {
            ConnFaultKind::Reset => self.resets += 1,
            ConnFaultKind::Timeout => self.timeouts += 1,
            ConnFaultKind::ShortRead => self.short_reads += 1,
            ConnFaultKind::Corrupt => self.corrupt_frames += 1,
        }
    }
}

/// Per-endpoint outcome counts (frame granularity) — the multi-target
/// view: which replica of a group served how much, and where the faults
/// landed. An exchange is attributed to the endpoint the client was
/// connected to when it finished, so a frame retried across a fail-over
/// counts against the endpoint that finally answered (or faulted).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TargetTally {
    /// The endpoint, as given in [`LoadgenConfig::targets`].
    pub target: String,
    /// Frames exchanged against this endpoint.
    pub frames: u64,
    /// Frames answered normally.
    pub ok: u64,
    /// Frames rejected with a typed `Overloaded` error.
    pub shed: u64,
    /// Frames answered with any other typed error.
    pub errors: u64,
    /// Frames lost to a connection-level fault (fault-tolerant runs).
    pub faults: u64,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ConnFaultKind {
    Reset,
    Timeout,
    ShortRead,
    Corrupt,
}

/// Classifies a transport-level failure into its fault kind; `None` for
/// failures that are not connection faults (routing errors, protocol
/// violations) — those always abort the run.
fn conn_fault_kind(error: &ServingError) -> Option<ConnFaultKind> {
    match error {
        ServingError::Wire(WireError::Timeout) | ServingError::Wire(WireError::IdleTimeout) => {
            Some(ConnFaultKind::Timeout)
        }
        ServingError::Wire(WireError::ConnectionClosed) => Some(ConnFaultKind::ShortRead),
        ServingError::Wire(WireError::Decode(_))
        | ServingError::Wire(WireError::Oversized { .. }) => Some(ConnFaultKind::Corrupt),
        ServingError::Wire(WireError::Io { .. }) | ServingError::Io { .. } => {
            Some(ConnFaultKind::Reset)
        }
        _ => None,
    }
}

/// The merged outcome of one run.
#[derive(Clone, Debug)]
pub struct LoadgenReport {
    /// Connections driven.
    pub connections: usize,
    /// Configured offered frame rate (frames/second, all connections).
    pub offered_rps: f64,
    /// Configured run length, seconds.
    pub duration_s: f64,
    /// Actual wall-clock from first schedule to last worker exit.
    pub elapsed_s: f64,
    /// Frames sent (one wire exchange each).
    pub frames: u64,
    /// Requests sent; a `SuggestBatch` frame counts its batch size, which
    /// is also how the gateway's admission control charges it.
    pub requests: u64,
    /// Requests answered normally.
    pub ok_requests: u64,
    /// Requests rejected with typed `Overloaded` frames.
    pub shed_requests: u64,
    /// Requests answered with any other typed error.
    pub error_requests: u64,
    /// Requests lost to connection-level faults (fault-tolerant runs
    /// only; plain runs abort on the first such fault).
    pub fault_requests: u64,
    /// Connection-fault breakdown by kind — resets, timeouts, short
    /// reads and corrupt frames, all distinct from `shed_requests`.
    pub conn_faults: ConnFaults,
    /// Outcomes by operation kind, indexed by [`OpKind::index`].
    pub by_kind: [KindTally; 4],
    /// Outcomes by target endpoint, in [`LoadgenConfig::targets`] order —
    /// one entry per configured endpoint, zeros included.
    pub by_target: Vec<TargetTally>,
    /// Latency of normally-answered frames, **microseconds**, measured
    /// from each frame's scheduled start (coordinated-omission safe).
    pub latency: Histogram,
    /// The p99 objective the run was judged against, milliseconds.
    pub slo_p99_ms: f64,
    /// `shed_requests` summed over the gateway's own `Stats` counters
    /// after the run — cross-checks the client-side tally.
    pub server_shed_requests: u64,
    /// `requests` summed over the gateway's `Stats` after the run.
    pub server_requests: u64,
}

impl LoadgenReport {
    /// Answered throughput: normally-answered requests per second of
    /// actual run time.
    pub fn achieved_rps(&self) -> f64 {
        if self.elapsed_s <= 0.0 {
            0.0
        } else {
            self.ok_requests as f64 / self.elapsed_s
        }
    }

    /// p50 of admitted-frame latency, milliseconds.
    pub fn p50_ms(&self) -> f64 {
        self.latency.value_at_quantile(0.50) as f64 / 1e3
    }

    /// p90 of admitted-frame latency, milliseconds.
    pub fn p90_ms(&self) -> f64 {
        self.latency.value_at_quantile(0.90) as f64 / 1e3
    }

    /// p99 of admitted-frame latency, milliseconds.
    pub fn p99_ms(&self) -> f64 {
        self.latency.value_at_quantile(0.99) as f64 / 1e3
    }

    /// Worst admitted-frame latency, milliseconds.
    pub fn max_ms(&self) -> f64 {
        self.latency.max() as f64 / 1e3
    }

    /// The SLO verdict: admitted traffic met the p99 objective, nothing
    /// failed with unexpected errors, and something was actually served.
    pub fn slo_met(&self) -> bool {
        self.ok_requests > 0 && self.error_requests == 0 && self.p99_ms() <= self.slo_p99_ms
    }

    /// Human-readable multi-line summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "connections {:>4}  offered {:>9.1} frames/s  ran {:.2}s\n",
            self.connections, self.offered_rps, self.elapsed_s
        ));
        out.push_str(&format!(
            "  sent {} frames / {} requests: {} ok, {} shed, {} errors, {} conn faults\n",
            self.frames,
            self.requests,
            self.ok_requests,
            self.shed_requests,
            self.error_requests,
            self.fault_requests
        ));
        for kind in OpKind::ALL {
            let t = &self.by_kind[kind.index()];
            if t.frames > 0 {
                out.push_str(&format!(
                    "    {:<20} {:>7} frames  {:>7} ok  {:>7} shed\n",
                    kind.name(),
                    t.frames,
                    t.ok,
                    t.shed
                ));
            }
        }
        if self.by_target.len() > 1 {
            for t in &self.by_target {
                out.push_str(&format!(
                    "  target {:<21} {:>7} frames  {:>7} ok  {:>7} shed  {:>5} errors  {:>5} faults\n",
                    t.target, t.frames, t.ok, t.shed, t.errors, t.faults
                ));
            }
        }
        if self.conn_faults.total() > 0 {
            out.push_str(&format!(
                "  conn faults: {} resets, {} timeouts, {} short reads, {} corrupt frames\n",
                self.conn_faults.resets,
                self.conn_faults.timeouts,
                self.conn_faults.short_reads,
                self.conn_faults.corrupt_frames
            ));
        }
        out.push_str(&format!(
            "  achieved {:.1} req/s  p50 {:.3} ms  p90 {:.3} ms  p99 {:.3} ms  max {:.3} ms\n",
            self.achieved_rps(),
            self.p50_ms(),
            self.p90_ms(),
            self.p99_ms(),
            self.max_ms()
        ));
        out.push_str(&format!(
            "  gateway accounting: {} requests, {} shed\n",
            self.server_requests, self.server_shed_requests
        ));
        out.push_str(&format!(
            "  SLO p99 <= {:.1} ms: {}\n",
            self.slo_p99_ms,
            if self.slo_met() { "MET" } else { "MISSED" }
        ));
        out
    }
}

/// One routable shard, as discovered from `ListModels`.
#[derive(Clone, Debug)]
struct TargetPlan {
    key: ModelKey,
    n_drugs: usize,
    /// `Some` for fitted shards (suggestion-capable).
    n_features: Option<usize>,
}

/// Immutable run state shared by every worker.
struct SharedPlan {
    /// Target endpoints: the spec string (for reporting) and the address
    /// it resolved to (for connecting and attributing outcomes).
    endpoints: Vec<(String, SocketAddr)>,
    plans: Vec<TargetPlan>,
    /// Indices into `plans` of suggestion-capable shards.
    fitted: Vec<usize>,
    /// Indices into `plans` of shards accepting the prepared KB reload.
    reloadable: Vec<usize>,
    zipf_all: Zipf,
    zipf_fitted: Option<Zipf>,
    zipf_reload: Option<Zipf>,
    mix: WorkloadMix,
    /// Pre-generated synthetic patients, one pool per distinct feature
    /// width the fitted shards expect.
    pools: Vec<(usize, Vec<dssddi_baselines::SimPatient>)>,
    /// The DSKB container `ReloadKb` frames ship.
    reload_bytes: Vec<u8>,
    batch_size: usize,
}

/// Patients pre-generated per feature width — enough that per-worker
/// cursors starting at different offsets do not all replay one patient.
const POOL_PATIENTS: usize = 128;

enum CallOutcome {
    Ok,
    Shed,
    RemoteError,
    ConnFault(ConnFaultKind),
}

fn classify<T>(
    result: Result<T, ServingError>,
    fault_tolerant: bool,
) -> Result<CallOutcome, String> {
    match result {
        Ok(_) => Ok(CallOutcome::Ok),
        Err(ServingError::Remote {
            code: ErrorCode::Overloaded,
            ..
        }) => Ok(CallOutcome::Shed),
        Err(ServingError::Remote { .. }) => Ok(CallOutcome::RemoteError),
        Err(other) => match conn_fault_kind(&other) {
            Some(kind) if fault_tolerant => Ok(CallOutcome::ConnFault(kind)),
            _ => Err(format!("connection degraded: {other}")),
        },
    }
}

struct WorkerTally {
    frames: u64,
    requests: u64,
    ok_requests: u64,
    shed_requests: u64,
    error_requests: u64,
    fault_requests: u64,
    conn_faults: ConnFaults,
    by_kind: [KindTally; 4],
    by_target: Vec<TargetTally>,
    hist: Histogram,
}

/// Connect deadline (and armed response timeout) of multi-target workers.
/// Single-target runs keep the legacy no-timeout connect; with several
/// replicas a worker must not hang on one dead endpoint when it could
/// fail over.
const MULTI_TARGET_TIMEOUT: Duration = Duration::from_secs(5);

fn worker_run(
    config: &LoadgenConfig,
    plan: &SharedPlan,
    worker: usize,
) -> Result<WorkerTally, String> {
    // Spread workers round-robin across the targets; each worker still
    // knows the whole set, so reconnects prefer its own endpoint but fail
    // over to the healthiest other replica.
    let mut order: Vec<SocketAddr> = plan.endpoints.iter().map(|(_, addr)| *addr).collect();
    if !order.is_empty() {
        let shift = worker % order.len();
        order.rotate_left(shift);
    }
    let mut client = if order.len() > 1 {
        Client::connect_any(&order, MULTI_TARGET_TIMEOUT)
    } else {
        Client::connect(order.as_slice())
    }
    .map_err(|e| format!("worker {worker}: connect {:?}: {e}", config.targets))?;
    if config.fault_tolerant {
        // One attempt (no in-client retries — the run wants to *observe*
        // every fault), but with connection-fault handling armed: a
        // transport fault drops the dead socket instead of poisoning the
        // client, so the next scheduled frame reconnects transparently.
        client.set_retry_policy(
            Some(
                RetryPolicy::new(1, Duration::from_millis(1), Duration::from_millis(1))
                    .retry_connection_faults(true),
            ),
            config.seed ^ worker as u64,
        );
        client
            .set_read_timeout(Some(Duration::from_secs(2)))
            .map_err(|e| format!("worker {worker}: arm read timeout: {e}"))?;
    }
    let mut rng = StdRng::seed_from_u64(
        config.seed ^ (worker as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xA076_1D64_78BD_642F,
    );
    let per_worker_rate = config.rate / config.connections as f64;
    let mut tally = WorkerTally {
        frames: 0,
        requests: 0,
        ok_requests: 0,
        shed_requests: 0,
        error_requests: 0,
        fault_requests: 0,
        conn_faults: ConnFaults::default(),
        by_kind: [KindTally::default(); 4],
        by_target: plan
            .endpoints
            .iter()
            .map(|(spec, _)| TargetTally {
                target: spec.clone(),
                ..TargetTally::default()
            })
            .collect(),
        hist: Histogram::new(),
    };
    // Per-pool cursors, offset per worker so the workers replay different
    // slices of the shared populations.
    let mut cursors: Vec<usize> = plan.pools.iter().map(|_| worker * 7).collect();

    let start = Instant::now();
    let mut next = Duration::ZERO;
    loop {
        // Poisson arrivals: exponential gap via inverse CDF. The vendored
        // rand has no Exp distribution; -ln(1-u)/λ needs only a uniform.
        let u: f64 = rng.gen();
        let gap = -(1.0 - u).ln() / per_worker_rate;
        next += Duration::from_secs_f64(gap.max(0.0));
        if next >= config.duration {
            break;
        }
        let now = start.elapsed();
        if next > now {
            std::thread::sleep(next - now);
        }
        let kind = plan.mix.sample(&mut rng);
        let n_requests = if kind == OpKind::SuggestBatch {
            plan.batch_size as u64
        } else {
            1
        };
        let outcome = issue(
            &mut client,
            plan,
            kind,
            &mut rng,
            &mut cursors,
            config.fault_tolerant,
        )
        .map_err(|e| format!("worker {worker}: {e}"))?;
        let latency = start.elapsed().saturating_sub(next);
        tally.frames += 1;
        tally.requests += n_requests;
        let per_kind = &mut tally.by_kind[kind.index()];
        per_kind.frames += 1;
        // Attribute the exchange to the endpoint the client ended up on —
        // after a fail-over that is the replica that actually answered.
        let target_idx = client
            .last_endpoint()
            .and_then(|addr| plan.endpoints.iter().position(|(_, a)| *a == addr))
            .unwrap_or(0);
        let mut per_target = tally.by_target.get_mut(target_idx);
        if let Some(t) = per_target.as_mut() {
            t.frames += 1;
        }
        match outcome {
            CallOutcome::Ok => {
                tally.ok_requests += n_requests;
                per_kind.ok += 1;
                if let Some(t) = per_target.as_mut() {
                    t.ok += 1;
                }
                tally
                    .hist
                    .record(latency.as_micros().min(u128::from(u64::MAX)) as u64);
            }
            CallOutcome::Shed => {
                tally.shed_requests += n_requests;
                per_kind.shed += 1;
                if let Some(t) = per_target.as_mut() {
                    t.shed += 1;
                }
            }
            CallOutcome::RemoteError => {
                tally.error_requests += n_requests;
                per_kind.errors += 1;
                if let Some(t) = per_target.as_mut() {
                    t.errors += 1;
                }
            }
            CallOutcome::ConnFault(kind) => {
                tally.fault_requests += n_requests;
                tally.conn_faults.record(kind);
                per_kind.faults += 1;
                if let Some(t) = per_target.as_mut() {
                    t.faults += 1;
                }
            }
        }
    }
    Ok(tally)
}

fn issue(
    client: &mut Client,
    plan: &SharedPlan,
    kind: OpKind,
    rng: &mut StdRng,
    cursors: &mut [usize],
    fault_tolerant: bool,
) -> Result<CallOutcome, String> {
    match kind {
        OpKind::Suggest | OpKind::SuggestBatch => {
            let (zipf, shards) = match (&plan.zipf_fitted, &plan.fitted) {
                (Some(zipf), shards) if !shards.is_empty() => (zipf, shards),
                _ => return Err("suggest sampled with no fitted shard".to_string()),
            };
            let target = &plan.plans[shards[zipf.sample(rng)]];
            let width = target.n_features.unwrap_or(0);
            let (pool_idx, pool) = plan
                .pools
                .iter()
                .enumerate()
                .find(|(_, (w, _))| *w == width)
                .map(|(i, (_, p))| (i, p.as_slice()))
                .ok_or_else(|| format!("no patient pool for {width} features"))?;
            let n = if kind == OpKind::SuggestBatch {
                plan.batch_size
            } else {
                1
            };
            let mut requests = Vec::with_capacity(n);
            for _ in 0..n {
                let patient = &pool[cursors[pool_idx] % pool.len()];
                cursors[pool_idx] += 1;
                requests.push(SuggestRequest::new(
                    PatientId::new(patient.id as usize),
                    patient.features.clone(),
                    rng.gen_range(1usize..=5),
                ));
            }
            if kind == OpKind::SuggestBatch {
                classify(client.suggest_batch(&target.key, &requests), fault_tolerant)
            } else {
                classify(client.suggest(&target.key, &requests[0]), fault_tolerant)
            }
        }
        OpKind::CheckPrescription => {
            let target = &plan.plans[plan.zipf_all.sample(rng)];
            let n_drugs = target.n_drugs.max(2);
            let want = rng.gen_range(2usize..=4).min(n_drugs);
            let mut drugs: Vec<DrugId> = Vec::with_capacity(want);
            while drugs.len() < want {
                let id = DrugId::new(rng.gen_range(0usize..n_drugs));
                if !drugs.contains(&id) {
                    drugs.push(id);
                }
            }
            classify(
                client.check_prescription(&target.key, &CheckPrescriptionRequest::new(drugs)),
                fault_tolerant,
            )
        }
        OpKind::ReloadKb => {
            let (zipf, shards) = match (&plan.zipf_reload, &plan.reloadable) {
                (Some(zipf), shards) if !shards.is_empty() => (zipf, shards),
                _ => return Err("reload sampled with no reloadable shard".to_string()),
            };
            let target = &plan.plans[shards[zipf.sample(rng)]];
            classify(
                client.reload_kb(&target.key, &plan.reload_bytes),
                fault_tolerant,
            )
        }
    }
}

/// Runs one open-loop load generation against a live gateway and returns
/// the merged report. Discovers shards via `ListModels`, degrades the mix
/// when the gateway cannot serve a kind (no fitted shard, no
/// formulary-compatible reload target), and cross-checks the gateway's
/// own shed accounting afterwards.
pub fn run(config: &LoadgenConfig) -> Result<LoadgenReport, String> {
    config.validate()?;
    let mut endpoints: Vec<(String, SocketAddr)> = Vec::with_capacity(config.targets.len());
    for target in &config.targets {
        let addr = target
            .to_socket_addrs()
            .map_err(|e| format!("resolving target {target:?}: {e}"))?
            .next()
            .ok_or_else(|| format!("target {target:?} resolved to no addresses"))?;
        endpoints.push((target.clone(), addr));
    }
    let first_target = config
        .targets
        .first()
        .ok_or("need at least one target endpoint")?;
    let mut probe = Client::connect(first_target.as_str())
        .map_err(|e| format!("connect {first_target}: {e}"))?;
    if config.fault_tolerant {
        // The probe's discovery and final stats calls must survive
        // injected faults too: retry with reconnect-and-failover armed.
        probe.set_retry_policy(
            Some(
                RetryPolicy::new(6, Duration::from_millis(20), Duration::from_millis(200))
                    .retry_connection_faults(true),
            ),
            config.seed ^ 0x70B3,
        );
        probe
            .set_read_timeout(Some(Duration::from_secs(2)))
            .map_err(|e| format!("arm probe read timeout: {e}"))?;
    }
    let mut models = probe
        .list_models()
        .map_err(|e| format!("list models: {e}"))?;
    if models.is_empty() {
        return Err("gateway serves no models".to_string());
    }
    // Popularity rank = lexicographic key order: deterministic across
    // runs and across gateways regardless of listing order.
    models.sort_by(|a, b| a.key.as_str().cmp(b.key.as_str()));

    let plans: Vec<TargetPlan> = models
        .iter()
        .map(|info| TargetPlan {
            key: info.key.clone(),
            n_drugs: info.n_drugs,
            n_features: if info.fitted { info.n_features } else { None },
        })
        .collect();
    let fitted: Vec<usize> = plans
        .iter()
        .enumerate()
        .filter(|(_, p)| p.n_features.is_some())
        .map(|(i, _)| i)
        .collect();

    let mut mix = config.mix.clone();
    if fitted.is_empty() {
        mix.fold_into_check(OpKind::Suggest);
        mix.fold_into_check(OpKind::SuggestBatch);
    }

    // Prepare the ReloadKb payload and find shards whose formulary digest
    // accepts it; skip reload traffic (with the rate folded into
    // critiques) when none match.
    let mut reloadable = Vec::new();
    let mut reload_bytes = Vec::new();
    if mix.weight(OpKind::ReloadKb) > 0.0 {
        let world =
            demo_world(config.reload_seed).map_err(|e| format!("build reload world: {e}"))?;
        let kb = dssddi_kb::KnowledgeBase::from_ddi_graph(&world.ddi, &world.registry)
            .map_err(|e| format!("build reload KB: {e}"))?;
        let digest = kb.registry_digest();
        reloadable = models
            .iter()
            .enumerate()
            .filter(|(_, info)| info.registry_digest == digest)
            .map(|(i, _)| i)
            .collect();
        if reloadable.is_empty() {
            mix.fold_into_check(OpKind::ReloadKb);
        } else {
            reload_bytes = kb.to_container_bytes();
        }
    }

    // Synthetic patient pools, one per distinct feature width.
    let mut widths: Vec<usize> = fitted.iter().filter_map(|&i| plans[i].n_features).collect();
    widths.sort_unstable();
    widths.dedup();
    let pools: Vec<(usize, Vec<dssddi_baselines::SimPatient>)> = widths
        .into_iter()
        .map(|width| {
            let spec = dssddi_baselines::PopulationSpec::new(config.seed, width);
            (width, spec.patients().take(POOL_PATIENTS).collect())
        })
        .collect();

    let shared = Arc::new(SharedPlan {
        zipf_all: Zipf::new(plans.len(), config.zipf_exponent)?,
        zipf_fitted: if fitted.is_empty() {
            None
        } else {
            Some(Zipf::new(fitted.len(), config.zipf_exponent)?)
        },
        zipf_reload: if reloadable.is_empty() {
            None
        } else {
            Some(Zipf::new(reloadable.len(), config.zipf_exponent)?)
        },
        endpoints: endpoints.clone(),
        plans,
        fitted,
        reloadable,
        mix,
        pools,
        reload_bytes,
        batch_size: config.batch_size,
    });

    let started = Instant::now();
    let workers: Vec<_> = (0..config.connections)
        .map(|worker| {
            let config = config.clone();
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || worker_run(&config, &shared, worker))
        })
        .collect();

    let mut frames = 0u64;
    let mut requests = 0u64;
    let mut ok_requests = 0u64;
    let mut shed_requests = 0u64;
    let mut error_requests = 0u64;
    let mut fault_requests = 0u64;
    let mut conn_faults = ConnFaults::default();
    let mut by_kind = [KindTally::default(); 4];
    let mut by_target: Vec<TargetTally> = endpoints
        .iter()
        .map(|(spec, _)| TargetTally {
            target: spec.clone(),
            ..TargetTally::default()
        })
        .collect();
    let mut latency = Histogram::new();
    let mut failure: Option<String> = None;
    for handle in workers {
        match handle.join() {
            Ok(Ok(tally)) => {
                frames += tally.frames;
                requests += tally.requests;
                ok_requests += tally.ok_requests;
                shed_requests += tally.shed_requests;
                error_requests += tally.error_requests;
                fault_requests += tally.fault_requests;
                conn_faults.merge(&tally.conn_faults);
                for (merged, kind) in by_kind.iter_mut().zip(tally.by_kind) {
                    merged.frames += kind.frames;
                    merged.ok += kind.ok;
                    merged.shed += kind.shed;
                    merged.errors += kind.errors;
                    merged.faults += kind.faults;
                }
                for (merged, target) in by_target.iter_mut().zip(tally.by_target) {
                    merged.frames += target.frames;
                    merged.ok += target.ok;
                    merged.shed += target.shed;
                    merged.errors += target.errors;
                    merged.faults += target.faults;
                }
                latency.merge(&tally.hist);
            }
            Ok(Err(e)) => failure = failure.or(Some(e)),
            Err(_) => failure = failure.or_else(|| Some("worker thread panicked".to_string())),
        }
    }
    let elapsed_s = started.elapsed().as_secs_f64();
    if let Some(e) = failure {
        return Err(e);
    }

    // Gateway-side cross-check. Single target: through the probe (which
    // may sit behind a chaos proxy and has its retries armed). Several
    // targets: each replica counts only the traffic it served, so the
    // totals are summed across all of them — a replica killed mid-run
    // takes its counters with it, which fault-tolerant runs accept.
    let (server_shed_requests, server_requests) = if endpoints.len() == 1 {
        let stats = probe.stats().map_err(|e| format!("final stats: {e}"))?;
        (
            stats.iter().map(|(_, s)| s.shed_requests).sum(),
            stats.iter().map(|(_, s)| s.requests).sum(),
        )
    } else {
        let mut shed = 0u64;
        let mut served = 0u64;
        for (spec, addr) in &endpoints {
            match Client::connect_timeout(addr, Duration::from_secs(2))
                .and_then(|mut client| client.stats())
            {
                Ok(stats) => {
                    shed += stats.iter().map(|(_, s)| s.shed_requests).sum::<u64>();
                    served += stats.iter().map(|(_, s)| s.requests).sum::<u64>();
                }
                Err(_) if config.fault_tolerant => {}
                Err(e) => return Err(format!("final stats from {spec}: {e}")),
            }
        }
        (shed, served)
    };

    Ok(LoadgenReport {
        connections: config.connections,
        offered_rps: config.rate,
        duration_s: config.duration.as_secs_f64(),
        elapsed_s,
        frames,
        requests,
        ok_requests,
        shed_requests,
        error_requests,
        fault_requests,
        conn_faults,
        by_kind,
        by_target,
        latency,
        slo_p99_ms: config.slo_p99_ms,
        server_shed_requests,
        server_requests,
    })
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // tests may panic freely
mod tests {
    use super::*;

    #[test]
    fn config_validates() {
        let good = LoadgenConfig::new("127.0.0.1:1");
        assert!(good.validate().is_ok());
        let mut bad = good.clone();
        bad.connections = 0;
        assert!(bad.validate().is_err());
        let mut bad = good.clone();
        bad.rate = 0.0;
        assert!(bad.validate().is_err());
        let mut bad = good.clone();
        bad.duration = Duration::ZERO;
        assert!(bad.validate().is_err());
        let mut bad = good.clone();
        bad.batch_size = 0;
        assert!(bad.validate().is_err());
        let mut bad = good;
        bad.slo_p99_ms = f64::NAN;
        assert!(bad.validate().is_err());
    }

    #[test]
    fn run_refuses_unreachable_gateway() {
        // A port from the discard range that nothing listens on: the run
        // reports a connection error instead of hanging or panicking.
        let mut config = LoadgenConfig::new("127.0.0.1:9");
        config.duration = Duration::from_millis(50);
        assert!(run(&config).is_err());
    }

    #[test]
    fn report_math_is_consistent() {
        let mut latency = Histogram::new();
        for micros in [500u64, 1_000, 2_000, 40_000] {
            latency.record(micros);
        }
        let report = LoadgenReport {
            connections: 2,
            offered_rps: 100.0,
            duration_s: 1.0,
            elapsed_s: 2.0,
            frames: 6,
            requests: 10,
            ok_requests: 4,
            shed_requests: 6,
            error_requests: 0,
            fault_requests: 0,
            conn_faults: ConnFaults::default(),
            by_kind: [KindTally::default(); 4],
            by_target: vec![
                TargetTally {
                    target: "127.0.0.1:4641".to_string(),
                    frames: 4,
                    ok: 3,
                    shed: 1,
                    ..TargetTally::default()
                },
                TargetTally {
                    target: "127.0.0.1:4642".to_string(),
                    frames: 2,
                    ok: 1,
                    shed: 1,
                    ..TargetTally::default()
                },
            ],
            latency,
            slo_p99_ms: 50.0,
            server_shed_requests: 6,
            server_requests: 4,
        };
        assert_eq!(report.achieved_rps(), 2.0);
        assert!(report.p99_ms() >= report.p50_ms());
        assert!(report.max_ms() >= report.p99_ms());
        assert!(report.slo_met(), "41 ms max is inside the 50 ms SLO");
        let rendered = report.render();
        assert!(rendered.contains("MET"));
        assert!(rendered.contains("6 shed"));
        assert!(
            rendered.contains("target 127.0.0.1:4642"),
            "multi-target runs render the per-endpoint breakdown"
        );
    }

    #[test]
    fn multi_target_config_validates() {
        let mut config = LoadgenConfig::new("127.0.0.1:1");
        config.targets = vec!["127.0.0.1:1".to_string(), "127.0.0.1:2".to_string()];
        assert!(config.validate().is_ok());
        config.targets.clear();
        assert!(config.validate().is_err(), "no targets is rejected");
        config.targets = vec![String::new()];
        assert!(config.validate().is_err(), "empty target is rejected");
    }
}
