//! Bench-report integration: turns a [`LoadgenReport`](crate::LoadgenReport)
//! into a result entry under the `BENCH_serving.json` schema
//! (`schema_version` 1: `name`, `batch_size`, `iterations`,
//! `throughput_rps`, `p50_ms`, `p99_ms`) and splices entries into an
//! existing report file without disturbing the rest of the document.
//!
//! For loadgen entries the schema fields are mapped as: `batch_size` is
//! the **connection count** of the run, `iterations` the frames sent,
//! `throughput_rps` the answered-request throughput and the percentiles
//! the admitted-frame latency.

use crate::runner::LoadgenReport;

/// One entry of the `results` array of `BENCH_serving.json`.
#[derive(Clone, Debug)]
pub struct BenchEntry {
    /// Result name; loadgen entries use `loadgen_c{connections}`.
    pub name: String,
    /// Connection count of the run (the schema's `batch_size` slot).
    pub batch_size: usize,
    /// Frames sent during the run.
    pub iterations: usize,
    /// Answered-request throughput.
    pub throughput_rps: f64,
    /// Admitted-frame p50 latency, milliseconds.
    pub p50_ms: f64,
    /// Admitted-frame p99 latency, milliseconds.
    pub p99_ms: f64,
}

impl BenchEntry {
    /// Maps a finished run into the bench schema under `name`.
    pub fn from_report(name: impl Into<String>, report: &LoadgenReport) -> Self {
        BenchEntry {
            name: name.into(),
            batch_size: report.connections,
            iterations: report.frames as usize,
            throughput_rps: report.achieved_rps(),
            p50_ms: report.p50_ms(),
            p99_ms: report.p99_ms(),
        }
    }

    fn render(&self, indent: &str) -> String {
        let name = self.name.replace('\\', "\\\\").replace('"', "\\\"");
        format!(
            "{indent}{{\n\
             {indent}  \"name\": \"{name}\",\n\
             {indent}  \"batch_size\": {},\n\
             {indent}  \"iterations\": {},\n\
             {indent}  \"throughput_rps\": {:.2},\n\
             {indent}  \"p50_ms\": {:.4},\n\
             {indent}  \"p99_ms\": {:.4}\n\
             {indent}}}",
            self.batch_size, self.iterations, self.throughput_rps, self.p50_ms, self.p99_ms
        )
    }
}

/// Finds the closing bracket of the `"results": [` array, skipping string
/// literals (with escapes) and nested brackets.
fn results_array_end(doc: &str) -> Result<(usize, usize), String> {
    let marker = "\"results\":";
    let at = doc
        .find(marker)
        .ok_or_else(|| "no \"results\" array in document".to_string())?;
    let after = &doc[at + marker.len()..];
    let open_rel = after
        .find('[')
        .ok_or_else(|| "\"results\" is not an array".to_string())?;
    let open = at + marker.len() + open_rel;
    let bytes = doc.as_bytes();
    let mut depth = 0usize;
    let mut in_string = false;
    let mut escaped = false;
    for (i, &b) in bytes.iter().enumerate().skip(open) {
        if in_string {
            if escaped {
                escaped = false;
            } else if b == b'\\' {
                escaped = true;
            } else if b == b'"' {
                in_string = false;
            }
            continue;
        }
        match b {
            b'"' => in_string = true,
            b'[' | b'{' => depth += 1,
            b']' | b'}' => {
                depth -= 1;
                if depth == 0 {
                    return Ok((open, i));
                }
            }
            _ => {}
        }
    }
    Err("unterminated \"results\" array".to_string())
}

/// Returns `doc` with `entries` appended to its `"results"` array,
/// preserving everything else byte-for-byte. Works on any
/// `schema_version` 1 report, including one whose array is empty.
pub fn append_results(doc: &str, entries: &[BenchEntry]) -> Result<String, String> {
    if entries.is_empty() {
        return Ok(doc.to_string());
    }
    let (open, close) = results_array_end(doc)?;
    let body = &doc[open + 1..close];
    let has_entries = body.chars().any(|c| !c.is_whitespace());
    let rendered: Vec<String> = entries.iter().map(|e| e.render("    ")).collect();
    let mut insert = String::new();
    if has_entries {
        // Re-terminate the current last entry with a comma, keeping its
        // trailing newline/indentation intact.
        let trimmed_len = body.trim_end().len();
        let (kept, tail) = body.split_at(trimmed_len);
        insert.push_str(kept);
        insert.push_str(",\n");
        insert.push_str(&rendered.join(",\n"));
        insert.push_str(tail);
    } else {
        insert.push('\n');
        insert.push_str(&rendered.join(",\n"));
        insert.push_str("\n  ");
    }
    Ok(format!("{}{}{}", &doc[..=open], insert, &doc[close..]))
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // tests may panic freely
mod tests {
    use super::*;

    fn entry(name: &str) -> BenchEntry {
        BenchEntry {
            name: name.to_string(),
            batch_size: 64,
            iterations: 1200,
            throughput_rps: 812.5,
            p50_ms: 1.25,
            p99_ms: 9.875,
        }
    }

    #[test]
    fn appends_to_a_populated_results_array() {
        let doc = "{\n  \"schema_version\": 1,\n  \"results\": [\n    {\n      \"name\": \"a[b]\",\n      \"p99_ms\": 1.0\n    }\n  ]\n}\n";
        let out = append_results(doc, &[entry("loadgen_c64")]).expect("append");
        assert!(out.contains("\"p99_ms\": 1.0\n    },\n    {\n      \"name\": \"loadgen_c64\""));
        assert!(out.contains("\"throughput_rps\": 812.50"));
        assert!(out.ends_with("  ]\n}\n"));
        // Both entries now live in the array; the document stays balanced.
        assert_eq!(out.matches("\"name\"").count(), 2);
        assert_eq!(
            out.matches('{').count(),
            out.matches('}').count(),
            "braces balanced"
        );
    }

    #[test]
    fn appends_to_an_empty_results_array() {
        let doc = "{\n  \"results\": []\n}\n";
        let out =
            append_results(doc, &[entry("loadgen_c1"), entry("loadgen_c256")]).expect("append");
        assert!(out.contains("loadgen_c1"));
        assert!(out.contains("loadgen_c256"));
        assert!(out.contains("},\n    {"), "entries separated by commas");
        assert_eq!(out.matches('{').count(), out.matches('}').count());
    }

    #[test]
    fn rejects_documents_without_results() {
        assert!(append_results("{}", &[entry("x")]).is_err());
        assert!(append_results("{\"results\": [", &[entry("x")]).is_err());
        // No entries: the document passes through untouched.
        assert_eq!(append_results("{}", &[]).expect("noop"), "{}");
    }
}
