//! Workload composition: which operation each generated request performs
//! and which model shard it targets.
//!
//! * [`WorkloadMix`] — weighted mix over the four data/maintenance
//!   operations a clinical gateway serves ([`OpKind`]).
//! * [`Zipf`] — Zipf-distributed shard choice, the classic hot-shard skew:
//!   with exponent `s`, shard `i` (0-based popularity rank) is picked with
//!   probability ∝ 1/(i+1)^s. Exponent `0` degenerates to uniform.

use rand::rngs::StdRng;
use rand::Rng;

/// One kind of generated gateway operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpKind {
    /// Single top-k medication suggestion (`Suggest` frame).
    Suggest,
    /// Batched suggestions in one frame (`SuggestBatch`).
    SuggestBatch,
    /// Prescription critique (`CheckPrescription`).
    CheckPrescription,
    /// Knowledge-base hot reload (`ReloadKb`) — the rare maintenance write
    /// mixed into read traffic.
    ReloadKb,
}

impl OpKind {
    /// All kinds, in [`OpKind::index`] order.
    pub const ALL: [OpKind; 4] = [
        OpKind::Suggest,
        OpKind::SuggestBatch,
        OpKind::CheckPrescription,
        OpKind::ReloadKb,
    ];

    /// Stable index into per-kind tally arrays.
    pub fn index(self) -> usize {
        match self {
            OpKind::Suggest => 0,
            OpKind::SuggestBatch => 1,
            OpKind::CheckPrescription => 2,
            OpKind::ReloadKb => 3,
        }
    }

    /// Human-readable name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            OpKind::Suggest => "suggest",
            OpKind::SuggestBatch => "suggest_batch",
            OpKind::CheckPrescription => "check_prescription",
            OpKind::ReloadKb => "reload_kb",
        }
    }
}

/// Relative weights of the operation kinds in the generated traffic.
#[derive(Clone, Debug)]
pub struct WorkloadMix {
    weights: [f64; 4],
}

impl WorkloadMix {
    /// Builds a mix from per-kind weights. Weights must be finite and
    /// non-negative with a positive total; they need not sum to 1.
    pub fn new(
        suggest: f64,
        suggest_batch: f64,
        check_prescription: f64,
        reload_kb: f64,
    ) -> Result<Self, String> {
        let weights = [suggest, suggest_batch, check_prescription, reload_kb];
        for (kind, w) in OpKind::ALL.iter().zip(weights) {
            if !w.is_finite() || w < 0.0 {
                return Err(format!(
                    "{} weight must be finite and >= 0, got {w}",
                    kind.name()
                ));
            }
        }
        if weights.iter().sum::<f64>() <= 0.0 {
            return Err("workload mix must have a positive total weight".to_string());
        }
        Ok(WorkloadMix { weights })
    }

    /// Parses a `S:B:C:R` weight spec, e.g. `55:20:24:1`.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let parts: Vec<&str> = spec.split(':').collect();
        if parts.len() != 4 {
            return Err(format!(
                "mix spec must be S:B:C:R (four weights), got {spec:?}"
            ));
        }
        let mut w = [0.0f64; 4];
        for (slot, part) in w.iter_mut().zip(&parts) {
            *slot = part
                .trim()
                .parse::<f64>()
                .map_err(|e| format!("bad mix weight {part:?}: {e}"))?;
        }
        WorkloadMix::new(w[0], w[1], w[2], w[3])
    }

    /// The weight of one kind.
    pub fn weight(&self, kind: OpKind) -> f64 {
        self.weights[kind.index()]
    }

    /// Moves a kind's weight onto `CheckPrescription` — used when a target
    /// gateway cannot serve that kind (no fitted shard for suggestions, no
    /// formulary-compatible shard for reloads), so the offered request
    /// *rate* is preserved even though the composition degrades.
    pub fn fold_into_check(&mut self, kind: OpKind) {
        let w = self.weights[kind.index()];
        self.weights[kind.index()] = 0.0;
        self.weights[OpKind::CheckPrescription.index()] += w;
    }

    /// Samples one kind, weight-proportionally.
    pub fn sample(&self, rng: &mut StdRng) -> OpKind {
        let total: f64 = self.weights.iter().sum();
        let mut u = rng.gen::<f64>() * total;
        for kind in OpKind::ALL {
            let w = self.weights[kind.index()];
            if w > 0.0 {
                if u < w {
                    return kind;
                }
                u -= w;
            }
        }
        // Rounding fell off the end: return the last positively weighted
        // kind (total > 0 guarantees one exists).
        for kind in OpKind::ALL.iter().rev() {
            if self.weights[kind.index()] > 0.0 {
                return *kind;
            }
        }
        OpKind::CheckPrescription
    }
}

impl Default for WorkloadMix {
    /// A read-heavy clinical mix: mostly single suggestions, a fifth
    /// batches, a quarter prescription critiques, 1% KB reloads.
    fn default() -> Self {
        WorkloadMix {
            weights: [55.0, 20.0, 24.0, 1.0],
        }
    }
}

/// Zipf-distributed choice over `n` popularity-ranked items, sampled by
/// inverting the precomputed CDF.
#[derive(Clone, Debug)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// A Zipf distribution over `n >= 1` items with exponent
    /// `s >= 0` (0 = uniform).
    pub fn new(n: usize, exponent: f64) -> Result<Self, String> {
        if n == 0 {
            return Err("zipf needs at least one item".to_string());
        }
        if !exponent.is_finite() || exponent < 0.0 {
            return Err(format!(
                "zipf exponent must be finite and >= 0, got {exponent}"
            ));
        }
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for i in 0..n {
            acc += 1.0 / ((i + 1) as f64).powf(exponent);
            cdf.push(acc);
        }
        for c in &mut cdf {
            *c /= acc;
        }
        Ok(Zipf { cdf })
    }

    /// Number of items.
    pub fn n(&self) -> usize {
        self.cdf.len()
    }

    /// Samples an item index (0 = most popular).
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        let u = rng.gen::<f64>();
        // First index whose CDF value reaches u.
        let idx = self.cdf.partition_point(|&c| c < u);
        idx.min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // tests may panic freely
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn mix_validates_weights() {
        assert!(WorkloadMix::new(1.0, 0.0, 0.0, 0.0).is_ok());
        assert!(WorkloadMix::new(0.0, 0.0, 0.0, 0.0).is_err());
        assert!(WorkloadMix::new(-1.0, 2.0, 0.0, 0.0).is_err());
        assert!(WorkloadMix::new(f64::NAN, 1.0, 0.0, 0.0).is_err());
        assert!(WorkloadMix::parse("55:20:24:1").is_ok());
        assert!(WorkloadMix::parse("55:20:24").is_err());
        assert!(WorkloadMix::parse("a:b:c:d").is_err());
    }

    #[test]
    fn mix_samples_follow_the_weights() {
        let mix = WorkloadMix::new(3.0, 0.0, 1.0, 0.0).expect("mix");
        let mut rng = StdRng::seed_from_u64(5);
        let mut counts = [0u32; 4];
        for _ in 0..4_000 {
            counts[mix.sample(&mut rng).index()] += 1;
        }
        assert_eq!(counts[OpKind::SuggestBatch.index()], 0);
        assert_eq!(counts[OpKind::ReloadKb.index()], 0);
        let suggest = counts[OpKind::Suggest.index()] as f64;
        let check = counts[OpKind::CheckPrescription.index()] as f64;
        let ratio = suggest / check;
        assert!((2.2..4.0).contains(&ratio), "3:1 mix drifted to {ratio}");
    }

    #[test]
    fn folding_preserves_total_weight() {
        let mut mix = WorkloadMix::default();
        let total: f64 = OpKind::ALL.iter().map(|&k| mix.weight(k)).sum();
        mix.fold_into_check(OpKind::Suggest);
        mix.fold_into_check(OpKind::ReloadKb);
        assert_eq!(mix.weight(OpKind::Suggest), 0.0);
        assert_eq!(mix.weight(OpKind::ReloadKb), 0.0);
        let after: f64 = OpKind::ALL.iter().map(|&k| mix.weight(k)).sum();
        assert!((total - after).abs() < 1e-12);
        // Sampling a fully folded mix never emits the folded kinds.
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..200 {
            let kind = mix.sample(&mut rng);
            assert!(kind == OpKind::SuggestBatch || kind == OpKind::CheckPrescription);
        }
    }

    #[test]
    fn zipf_skews_toward_the_head() {
        let zipf = Zipf::new(8, 1.2).expect("zipf");
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0u32; 8];
        for _ in 0..8_000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        assert!(
            counts[0] > 2 * counts[3],
            "rank 0 ({}) must dominate rank 3 ({})",
            counts[0],
            counts[3]
        );
        assert!(counts.iter().all(|&c| c > 0), "tail must still be sampled");
    }

    #[test]
    fn zipf_exponent_zero_is_uniform() {
        let zipf = Zipf::new(4, 0.0).expect("zipf");
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0u32; 4];
        for _ in 0..8_000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((1_600..=2_400).contains(&c), "uniform drifted: {counts:?}");
        }
        assert!(Zipf::new(0, 1.0).is_err());
        assert!(Zipf::new(4, f64::NAN).is_err());
    }

    #[test]
    fn zipf_single_item_always_picks_it() {
        let zipf = Zipf::new(1, 1.5).expect("zipf");
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            assert_eq!(zipf.sample(&mut rng), 0);
        }
    }
}
