//! End-to-end runs of the open-loop generator against live loopback
//! gateways: discovery, mix degradation, shed accounting and the SLO
//! report all exercised over real sockets.

// Tests and examples may panic freely; the workspace-level panic-policy
// denies target library and binary code.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::time::Duration;

use dssddi_loadgen::{LoadgenConfig, OpKind, WorkloadMix};
use dssddi_serving::demo::{demo_catalog, demo_world, DEMO_SEED};
use dssddi_serving::{AdmissionConfig, Client, ModelCatalog, ModelKey, RateLimit, Router, Server};

/// A cheap support-only catalog under the key `critique` (no fitted
/// model, so the generator must fold suggestion traffic into critiques).
fn support_catalog() -> ModelCatalog {
    let world = demo_world(DEMO_SEED).expect("demo world");
    let support = dssddi_core::ServiceBuilder::fast()
        .build_support(&world.ddi)
        .expect("support shard");
    let mut catalog = ModelCatalog::new();
    catalog
        .insert(ModelKey::new("critique").expect("key"), support)
        .expect("insert");
    catalog
}

fn quick_config(addr: std::net::SocketAddr) -> LoadgenConfig {
    let mut config = LoadgenConfig::new(addr.to_string());
    config.connections = 3;
    config.rate = 300.0;
    config.duration = Duration::from_millis(600);
    config.batch_size = 4;
    config
}

#[test]
fn generator_degrades_mix_on_a_support_only_gateway() {
    let server = Server::bind("127.0.0.1:0", Router::new(support_catalog())).expect("bind");
    let addr = server.local_addr().expect("addr");
    let handle = std::thread::spawn(move || server.run());

    let config = quick_config(addr);
    let report = dssddi_loadgen::run(&config).expect("run");

    assert!(report.frames > 0, "an open loop at 300/s must send frames");
    assert_eq!(report.error_requests, 0, "no unexpected typed errors");
    assert_eq!(report.shed_requests, 0, "no admission control configured");
    // No fitted shard: suggestion weight folded into critiques; the
    // formulary digest matches the demo world, so reloads still flow.
    let suggest = &report.by_kind[OpKind::Suggest.index()];
    let batch = &report.by_kind[OpKind::SuggestBatch.index()];
    let check = &report.by_kind[OpKind::CheckPrescription.index()];
    assert_eq!(suggest.frames + batch.frames, 0);
    assert!(check.ok > 0, "critiques must be served");
    // Gateway-side accounting: only data-plane calls count as shard
    // requests; KB reloads are control-plane.
    let reload_ok = report.by_kind[OpKind::ReloadKb.index()].ok;
    assert_eq!(report.server_requests, report.ok_requests - reload_ok);
    assert!(report.latency.count() > 0, "admitted latencies recorded");
    assert!(report.p99_ms() >= report.p50_ms());

    let observer = Client::connect(addr).expect("observer");
    observer.shutdown().expect("clean shutdown");
    handle.join().expect("no panic").expect("clean exit");
}

#[test]
fn generator_tallies_sheds_that_match_gateway_accounting() {
    // 20 frames/s with a 5-token burst against an offered 300/s: most of
    // the run is shed, every shed typed, and the gateway's own counters
    // agree with the client-side tally.
    let admission = AdmissionConfig {
        default_rate: Some(RateLimit::new(20.0, 5.0).expect("limit")),
        ..AdmissionConfig::default()
    };
    let server = Server::bind(
        "127.0.0.1:0",
        Router::with_admission(support_catalog(), admission),
    )
    .expect("bind");
    let addr = server.local_addr().expect("addr");
    let handle = std::thread::spawn(move || server.run());

    let mut config = quick_config(addr);
    // Pure critiques: every frame passes through admission (reloads are
    // control-plane and would never shed).
    config.mix = WorkloadMix::new(0.0, 0.0, 1.0, 0.0).expect("mix");
    let report = dssddi_loadgen::run(&config).expect("run");

    assert!(report.shed_requests > 0, "overload must shed");
    assert!(report.ok_requests > 0, "the burst is still admitted");
    assert_eq!(report.error_requests, 0, "sheds are typed, not errors");
    assert_eq!(
        report.server_shed_requests, report.shed_requests,
        "gateway shed accounting must match the client tally"
    );
    assert_eq!(report.server_requests, report.ok_requests);

    let observer = Client::connect(addr).expect("observer");
    observer.shutdown().expect("clean shutdown");
    handle.join().expect("no panic").expect("clean exit");
}

#[test]
fn generator_reaches_every_kind_on_the_demo_catalog() {
    // The full demo catalog (fitted `chronic` + support `critique`): all
    // four operation kinds flow and none produce unexpected errors.
    let (catalog, _world) = demo_catalog(DEMO_SEED).expect("demo catalog");
    let server = Server::bind("127.0.0.1:0", Router::new(catalog)).expect("bind");
    let addr = server.local_addr().expect("addr");
    let handle = std::thread::spawn(move || server.run());

    let mut config = quick_config(addr);
    config.duration = Duration::from_millis(900);
    // Weight reloads up so the short run reliably samples them.
    config.mix = WorkloadMix::new(40.0, 20.0, 30.0, 10.0).expect("mix");
    let report = dssddi_loadgen::run(&config).expect("run");

    assert_eq!(report.error_requests, 0, "no unexpected typed errors");
    for kind in OpKind::ALL {
        let tally = &report.by_kind[kind.index()];
        assert!(
            tally.ok > 0,
            "{} must be exercised (frames {})",
            kind.name(),
            tally.frames
        );
    }
    // Batched frames count their whole batch as requests.
    let batch = &report.by_kind[OpKind::SuggestBatch.index()];
    assert!(
        report.requests >= report.frames + batch.frames * (config.batch_size as u64 - 1),
        "batch frames must be charged batch_size requests"
    );

    let observer = Client::connect(addr).expect("observer");
    observer.shutdown().expect("clean shutdown");
    handle.join().expect("no panic").expect("clean exit");
}
