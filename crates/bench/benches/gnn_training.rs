//! Benchmarks of one training epoch of DDIGCN (per backbone) and MDGCN —
//! the model cost behind Tables I, II and IV.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use dssddi_bench::BenchWorld;
use dssddi_core::{Backbone, DdiModule, DdiModuleConfig, MdModule, MdModuleConfig};

fn bench_ddigcn(c: &mut Criterion) {
    let world = BenchWorld::new(50, 2);
    let mut group = c.benchmark_group("ddigcn_training");
    group.sample_size(10);
    for backbone in Backbone::ALL {
        let config = DdiModuleConfig {
            hidden_dim: 32,
            layers: 2,
            epochs: 5,
            backbone,
            ..Default::default()
        };
        group.bench_function(format!("five_epochs_{}", backbone.name()), |b| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(3);
                DdiModule::train(&world.ddi, &config, &mut rng).unwrap()
            })
        });
    }
    group.finish();
}

fn bench_mdgcn(c: &mut Criterion) {
    let world = BenchWorld::new(200, 4);
    let observed: Vec<usize> = (0..150).collect();
    let features = world.cohort.features().select_rows(&observed);
    let graph = world.cohort.bipartite_graph(&observed).unwrap();
    let mut group = c.benchmark_group("mdgcn_training");
    group.sample_size(10);
    for (label, counterfactual) in [
        ("with_counterfactual", true),
        ("without_counterfactual", false),
    ] {
        let config = MdModuleConfig {
            hidden_dim: 32,
            epochs: 5,
            use_ddi_embeddings: false,
            use_counterfactual: counterfactual,
            ..Default::default()
        };
        group.bench_function(format!("five_epochs_{label}_150_patients"), |b| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(5);
                MdModule::fit(
                    &features,
                    &graph,
                    &world.drug_features,
                    &world.ddi,
                    None,
                    &config,
                    &mut rng,
                )
                .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ddigcn, bench_mdgcn);
criterion_main!(benches);
