//! Macro benchmarks shaped like the evaluation artifacts: data generation
//! (Fig. 2/3), test-set scoring and metric computation (Tables I/II/IV) and
//! Suggestion Satisfaction scoring (Table III, Fig. 8).

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use dssddi_baselines::{LightGcnRecommender, Recommender, UserSim};
use dssddi_bench::BenchWorld;
use dssddi_core::ms_module::explain_suggestion;
use dssddi_core::{DssddiConfig, MsModuleConfig, ServiceBuilder};
use dssddi_data::{generate_chronic_cohort, generate_mimic_dataset, ChronicConfig, MimicConfig};
use dssddi_ml::{ndcg_at_k, precision_at_k, recall_at_k, top_k_indices};

fn bench_data_generation(c: &mut Criterion) {
    let world = BenchWorld::new(10, 9);
    let mut group = c.benchmark_group("data_generation");
    group.sample_size(10);
    group.bench_function("chronic_cohort_500_patients_fig2_fig3", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(10);
            generate_chronic_cohort(
                &world.registry,
                &world.ddi,
                &ChronicConfig {
                    n_patients: 500,
                    ..Default::default()
                },
                &mut rng,
            )
            .unwrap()
        })
    });
    group.bench_function("mimic_dataset_500_patients_table4", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(11);
            generate_mimic_dataset(
                &MimicConfig {
                    n_patients: 500,
                    ..Default::default()
                },
                &mut rng,
            )
            .unwrap()
        })
    });
    group.finish();
}

fn bench_scoring_pipelines(c: &mut Criterion) {
    let world = BenchWorld::new(260, 12);
    let observed: Vec<usize> = (0..200).collect();
    let held_out: Vec<usize> = (200..260).collect();
    let train_x = world.cohort.features().select_rows(&observed);
    let train_y = world.cohort.labels().select_rows(&observed);
    let train_graph = world.cohort.bipartite_graph(&observed).unwrap();
    let test_x = world.cohort.features().select_rows(&held_out);
    let test_y = world.cohort.labels().select_rows(&held_out);

    // Fit the models once; the benchmark measures the evaluation pipeline.
    let mut config = DssddiConfig::fast();
    config.ddi.hidden_dim = 16;
    config.md.hidden_dim = 16;
    config.ddi.epochs = 30;
    config.md.epochs = 30;
    let mut rng = StdRng::seed_from_u64(13);
    let dssddi = ServiceBuilder::new()
        .config(config)
        .fit_chronic(
            &world.cohort,
            &observed,
            &world.drug_features,
            &world.ddi,
            &mut rng,
        )
        .unwrap();
    let lightgcn = LightGcnRecommender::fit(
        &train_x,
        &train_graph,
        &dssddi_baselines::graph_models::GraphBaselineConfig {
            hidden_dim: 16,
            epochs: 30,
            ..Default::default()
        },
        &mut rng,
    )
    .unwrap();
    let usersim = UserSim::fit(&train_x, &train_y).unwrap();

    let mut group = c.benchmark_group("table_pipelines");
    group.sample_size(10);
    group.bench_function("table1_dssddi_score_60_test_patients", |b| {
        b.iter(|| dssddi.predict_scores(&test_x).unwrap())
    });
    group.bench_function("table1_lightgcn_score_60_test_patients", |b| {
        b.iter(|| lightgcn.predict_scores(&test_x).unwrap())
    });
    group.bench_function("table1_usersim_score_60_test_patients", |b| {
        b.iter(|| usersim.predict_scores(&test_x).unwrap())
    });

    let scores = dssddi.predict_scores(&test_x).unwrap();
    group.bench_function("table1_metrics_precision_recall_ndcg_k6", |b| {
        b.iter(|| {
            (
                precision_at_k(&scores, &test_y, 6).unwrap(),
                recall_at_k(&scores, &test_y, 6).unwrap(),
                ndcg_at_k(&scores, &test_y, 6).unwrap(),
            )
        })
    });
    let ms = MsModuleConfig::default();
    group.bench_function("table3_suggestion_satisfaction_60_patients_k4", |b| {
        b.iter(|| {
            let mut total = 0.0;
            for p in 0..scores.rows() {
                let top = top_k_indices(scores.row(p), 4);
                total += explain_suggestion(&world.ddi, &top, &ms)
                    .unwrap()
                    .suggestion_satisfaction;
            }
            total
        })
    });
    group.bench_function("fig8_single_explanation_k3", |b| {
        b.iter(|| explain_suggestion(&world.ddi, &[46, 47, 59], &ms).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_data_generation, bench_scoring_pipelines);
criterion_main!(benches);
