//! Service-layer serving benchmarks (the ROADMAP's criterion-benches item):
//! `suggest_batch` with cold versus memoized explanations, the taped versus
//! tape-free score-prediction paths behind it, `check_prescription`, and
//! save/load throughput of the `DSSD` container.
//!
//! The headline comparison for the tape-free inference engine is
//! `predict_scores/batch64_taped` against `predict_scores/batch64_tape_free`
//! — identical work, identical (bit-for-bit) outputs, no autodiff tape on
//! the second. `suggest_batch/batch64_cold` measures the full serving path
//! (prediction + ranking + community search) with the explanation cache
//! cleared before every batch; `batch64_memoized` leaves the cache warm.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use dssddi_bench::BenchWorld;
use dssddi_core::{CheckPrescriptionRequest, DrugId};
use dssddi_tensor::Matrix;

fn bench_suggest_batch(c: &mut Criterion) {
    let world = BenchWorld::new(200, 11);
    let service = world.fitted_service(120, 13);
    let held_out: Vec<usize> = (120..184).collect();
    let requests = world.suggest_requests(&held_out);
    assert_eq!(requests.len(), 64);

    let mut group = c.benchmark_group("suggest_batch");
    group.sample_size(10);
    group.bench_function("batch64_cold", |b| {
        b.iter_batched(
            || service.clear_explanation_cache(),
            |_| service.suggest_batch(&requests).unwrap(),
            BatchSize::SmallInput,
        )
    });
    // Single-shard cold serving: the pre-PR execution shape (one thread,
    // every explanation searched inline) for the ≥2x throughput comparison.
    group.bench_function("batch64_cold_serial_1shard", |b| {
        b.iter_batched(
            || service.clear_explanation_cache(),
            |_| service.suggest_batch_sharded(&requests, 1).unwrap(),
            BatchSize::SmallInput,
        )
    });
    // Warm the memo once, then serve the same batch from it.
    service.suggest_batch(&requests).unwrap();
    group.bench_function("batch64_memoized", |b| {
        b.iter(|| service.suggest_batch(&requests).unwrap())
    });
    group.bench_function("batch64_serial_1shard", |b| {
        b.iter(|| service.suggest_batch_sharded(&requests, 1).unwrap())
    });
    group.finish();
}

fn bench_predict_scores(c: &mut Criterion) {
    let world = BenchWorld::new(200, 11);
    let service = world.fitted_service(120, 13);
    let engine = service.engine().expect("fitted service has an engine");
    let held_out: Vec<usize> = (120..184).collect();
    let features = world.cohort.features().select_rows(&held_out);

    let mut group = c.benchmark_group("predict_scores");
    group.sample_size(10);
    group.bench_function("batch64_taped", |b| {
        b.iter(|| engine.predict_scores_taped(&features).unwrap())
    });
    group.bench_function("batch64_tape_free", |b| {
        b.iter(|| engine.predict_scores(&features).unwrap())
    });
    // The two paths must agree bit-for-bit, or the comparison is void.
    let taped = engine.predict_scores_taped(&features).unwrap();
    let tape_free = engine.predict_scores(&features).unwrap();
    assert_eq!(taped, tape_free);
    group.finish();
}

fn bench_check_prescription(c: &mut Criterion) {
    let world = BenchWorld::new(50, 11);
    let service = world.fitted_service(40, 13);
    // The paper's Fig. 8 antagonistic pair plus a synergistic pair.
    let request = CheckPrescriptionRequest::new(vec![
        DrugId::new(61),
        DrugId::new(59),
        DrugId::new(10),
        DrugId::new(5),
    ]);
    let mut group = c.benchmark_group("check_prescription");
    group.sample_size(10);
    group.bench_function("four_drug_prescription", |b| {
        b.iter(|| service.check_prescription(&request).unwrap())
    });
    group.finish();
}

fn bench_save_load(c: &mut Criterion) {
    let world = BenchWorld::new(120, 11);
    let service = world.fitted_service(90, 13);
    let dir = std::env::temp_dir().join("dssddi_bench_save_load");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("service.dssd");

    let mut group = c.benchmark_group("persistence");
    group.sample_size(10);
    group.bench_function("save_fitted_service", |b| {
        b.iter(|| service.save(&path).unwrap())
    });
    service.save(&path).unwrap();
    let registry = world.registry.clone();
    group.bench_function("load_fitted_service", |b| {
        b.iter(|| {
            dssddi_core::DecisionService::load(&path, registry.clone()).unwrap();
        })
    });
    group.finish();
    let _ = std::fs::remove_file(&path);
}

fn bench_tensor_kernels(c: &mut Criterion) {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(5);
    let a = Matrix::rand_uniform(256, 256, -1.0, 1.0, &mut rng);
    let b = Matrix::rand_uniform(256, 256, -1.0, 1.0, &mut rng);
    let mut group = c.benchmark_group("tensor_kernels");
    group.sample_size(10);
    group.bench_function("matmul_256", |b2| b2.iter(|| a.matmul(&b).unwrap()));
    let mut out = Matrix::zeros(256, 256);
    group.bench_function("matmul_into_256", |b2| {
        b2.iter(|| a.matmul_into(&mut out, &b).unwrap())
    });
    group.bench_function("transpose_256", |b2| b2.iter(|| a.transpose()));
    group.finish();
}

criterion_group!(
    benches,
    bench_suggest_batch,
    bench_predict_scores,
    bench_check_prescription,
    bench_save_load,
    bench_tensor_kernels,
);
criterion_main!(benches);
