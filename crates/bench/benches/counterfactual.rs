//! Benchmarks of the causal-augmentation machinery of the Medical Decision
//! module: treatment matrix construction (Section IV-B1) and the
//! counterfactual nearest-neighbour search (Eq. 7).

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use dssddi_bench::BenchWorld;
use dssddi_core::counterfactual::CounterfactualIndex;
use dssddi_core::TreatmentMatrix;
use dssddi_ml::fit_kmeans;
use dssddi_tensor::Matrix;

fn bench_counterfactual(c: &mut Criterion) {
    let world = BenchWorld::new(300, 6);
    let observed: Vec<usize> = (0..300).collect();
    let features = world.cohort.features().select_rows(&observed);
    let graph = world.cohort.bipartite_graph(&observed).unwrap();
    let mut rng = StdRng::seed_from_u64(7);
    let kmeans = fit_kmeans(&features, 16, 30, &mut rng).unwrap();
    let treatment = TreatmentMatrix::build(&graph, kmeans.assignments(), &world.ddi).unwrap();
    let labels = Matrix::from_fn(graph.left_count(), graph.right_count(), |p, d| {
        if graph.has_edge(p, d) {
            1.0
        } else {
            0.0
        }
    });
    let pairs: Vec<(usize, usize)> = graph.edges();
    let pair_patients: Vec<usize> = pairs.iter().map(|&(p, _)| p).collect();
    let pair_drugs: Vec<usize> = pairs.iter().map(|&(_, d)| d).collect();

    let mut group = c.benchmark_group("counterfactual_links");
    group.sample_size(10);
    group.bench_function("kmeans_300_patients_k16", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(8);
            fit_kmeans(&features, 16, 30, &mut rng).unwrap()
        })
    });
    group.bench_function("treatment_matrix_300x86", |b| {
        b.iter(|| TreatmentMatrix::build(&graph, kmeans.assignments(), &world.ddi).unwrap())
    });
    group.bench_function("counterfactual_index_build", |b| {
        b.iter(|| CounterfactualIndex::build(&features, &world.drug_features, 2.0, 2.0, 16))
    });
    let index = CounterfactualIndex::build(&features, &world.drug_features, 2.0, 2.0, 16);
    group.bench_function("counterfactual_search_all_observed_links", |b| {
        b.iter(|| index.find_links(&pair_patients, &pair_drugs, &treatment, &labels))
    });
    group.finish();
}

criterion_group!(benches, bench_counterfactual);
criterion_main!(benches);
