//! Benchmarks of the Medical Support graph kernels (Algorithm 1): truss
//! decomposition, Steiner tree computation and the closest truss community
//! query on the paper-sized DDI graph (86 drugs, 97 + 243 interactions).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use dssddi_bench::BenchWorld;
use dssddi_graph::{closest_truss_community, steiner_tree, truss_decomposition, CtcConfig};

fn bench_graph(c: &mut Criterion) {
    let world = BenchWorld::new(50, 1);
    let structural = world.ddi.structural_graph();
    let decomposition = truss_decomposition(&structural);

    let mut group = c.benchmark_group("ms_module_graph_kernels");
    group.sample_size(20);

    group.bench_function("truss_decomposition_ddi_graph", |b| {
        b.iter(|| truss_decomposition(&structural))
    });

    // Query sets typical of the experiments: the Fig. 8 suggestion and a
    // larger k = 6 suggestion.
    let fig8_query = vec![46usize, 47, 59];
    let k6_query = vec![46usize, 47, 25, 8, 10, 5];

    group.bench_function("steiner_tree_k3", |b| {
        b.iter(|| steiner_tree(&structural, &fig8_query, &decomposition).unwrap())
    });
    group.bench_function("steiner_tree_k6", |b| {
        b.iter(|| steiner_tree(&structural, &k6_query, &decomposition).unwrap())
    });
    group.bench_function("closest_truss_community_k3", |b| {
        b.iter_batched(
            || fig8_query.clone(),
            |q| closest_truss_community(&structural, &q, &CtcConfig::default()).unwrap(),
            BatchSize::SmallInput,
        )
    });
    group.bench_function("closest_truss_community_k6", |b| {
        b.iter_batched(
            || k6_query.clone(),
            |q| closest_truss_community(&structural, &q, &CtcConfig::default()).unwrap(),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_graph);
criterion_main!(benches);
