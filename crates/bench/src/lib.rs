//! Shared fixtures for the Criterion benchmarks.
//!
//! The benchmarks cover the computational kernels behind every table and
//! figure of the paper: the Medical Support graph algorithms (truss
//! decomposition, Steiner trees, closest truss community), DDIGCN / MDGCN
//! training epochs, counterfactual link construction, and the end-to-end
//! scoring pipelines of the experiment tables.

use rand::rngs::StdRng;
use rand::SeedableRng;

use dssddi_core::{DecisionService, PatientId, ServiceBuilder, SuggestRequest};
use dssddi_data::{
    generate_chronic_cohort, generate_ddi_graph, ChronicCohort, ChronicConfig, DdiConfig,
    DrugRegistry,
};
use dssddi_graph::SignedGraph;
use dssddi_tensor::Matrix;

/// A small but realistic benchmark world: the 86-drug formulary, the
/// paper-sized DDI graph and a cohort of `n_patients` synthetic patients.
pub struct BenchWorld {
    /// Drug formulary.
    pub registry: DrugRegistry,
    /// Signed DDI graph (97 + 243 interactions).
    pub ddi: SignedGraph,
    /// Synthetic chronic cohort.
    pub cohort: ChronicCohort,
    /// Random drug features standing in for the KG embeddings.
    pub drug_features: Matrix,
}

impl BenchWorld {
    /// Builds the benchmark world deterministically.
    pub fn new(n_patients: usize, seed: u64) -> Self {
        let registry = DrugRegistry::standard();
        let mut rng = StdRng::seed_from_u64(seed);
        let ddi =
            generate_ddi_graph(&registry, &DdiConfig::default(), &mut rng).expect("DDI generation");
        let cohort = generate_chronic_cohort(
            &registry,
            &ddi,
            &ChronicConfig {
                n_patients,
                ..Default::default()
            },
            &mut rng,
        )
        .expect("cohort generation");
        let drug_features = Matrix::rand_uniform(registry.len(), 32, -0.1, 0.1, &mut rng);
        Self {
            registry,
            ddi,
            cohort,
            drug_features,
        }
    }

    /// Fits a small but realistic [`DecisionService`] on the first
    /// `n_observed` patients of the world — the shared fixture of the
    /// service-layer benches and the `bench_report` workload.
    pub fn fitted_service(&self, n_observed: usize, seed: u64) -> DecisionService {
        let observed: Vec<usize> = (0..n_observed.min(self.cohort.n_patients())).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        ServiceBuilder::fast()
            .hidden_dim(16)
            .epochs(25, 30)
            .fit_chronic(
                &self.cohort,
                &observed,
                &self.drug_features,
                &self.ddi,
                &mut rng,
            )
            .expect("service fitting")
    }

    /// Top-3 suggestion requests for the patient indices in `patients`.
    pub fn suggest_requests(&self, patients: &[usize]) -> Vec<SuggestRequest> {
        patients
            .iter()
            .map(|&p| {
                SuggestRequest::new(PatientId::new(p), self.cohort.features().row(p).to_vec(), 3)
            })
            .collect()
    }
}
