//! LightGCN-style propagation (He et al., SIGIR 2020).
//!
//! The MDGCN encoder of the paper (Eq. 11–13) abandons feature
//! transformations and non-linearities inside the graph convolution: it
//! propagates patient/drug embeddings over the symmetrically normalised
//! bipartite adjacency and combines the per-layer representations with
//! fixed weights β_t. The same propagation is reused for the LightGCN
//! baseline.

use std::rc::Rc;

use dssddi_graph::BipartiteGraph;
use dssddi_tensor::{CsrMatrix, Tape, TensorError, Var};

/// Symmetrically normalised adjacency of a patient–drug bipartite graph,
/// with patients occupying rows `0..n_patients` and drugs the rest.
pub fn bipartite_adjacency(graph: &BipartiteGraph) -> Result<Rc<CsrMatrix>, TensorError> {
    let adj =
        CsrMatrix::bipartite_normalized(graph.left_count(), graph.right_count(), &graph.edges())?;
    Ok(Rc::new(adj))
}

/// The layer-combination weights `β_t = 1 / (t + 2)` used by the paper
/// (Section V-A3) for `t = 0..=layers`.
pub fn paper_layer_weights(layers: usize) -> Vec<f32> {
    (0..=layers).map(|t| 1.0 / (t as f32 + 2.0)).collect()
}

/// Propagates stacked patient+drug embeddings `x` (shape
/// `(n_patients + n_drugs) x d`) through `layers` LightGCN convolutions and
/// returns the weighted combination `Σ_t β_t · h^(t)`.
///
/// `betas` must have `layers + 1` entries (including the weight of the input
/// layer `t = 0`).
pub fn lightgcn_propagate(
    tape: &mut Tape,
    adjacency: &Rc<CsrMatrix>,
    x: Var,
    layers: usize,
    betas: &[f32],
) -> Result<Var, TensorError> {
    if betas.len() != layers + 1 {
        return Err(TensorError::InvalidArgument {
            what: "betas must have one weight per layer plus the input layer",
        });
    }
    let mut combined = tape.scale(x, betas[0]);
    let mut h = x;
    for (t, &beta) in betas.iter().enumerate().skip(1) {
        h = tape.spmm(adjacency, h)?;
        let weighted = tape.scale(h, beta);
        combined = tape.add(combined, weighted)?;
        let _ = t;
    }
    Ok(combined)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dssddi_tensor::Matrix;

    fn graph() -> BipartiteGraph {
        BipartiteGraph::from_pairs(3, 2, &[(0, 0), (1, 0), (1, 1), (2, 1)]).unwrap()
    }

    #[test]
    fn adjacency_has_combined_dimension() {
        let adj = bipartite_adjacency(&graph()).unwrap();
        assert_eq!(adj.rows(), 5);
        assert_eq!(adj.cols(), 5);
        assert!(adj.nnz() >= 8);
    }

    #[test]
    fn paper_weights_decay_with_depth() {
        let betas = paper_layer_weights(2);
        assert_eq!(betas.len(), 3);
        assert!((betas[0] - 0.5).abs() < 1e-6);
        assert!(betas[0] > betas[1] && betas[1] > betas[2]);
    }

    #[test]
    fn propagation_mixes_connected_nodes() {
        let g = graph();
        let adj = bipartite_adjacency(&g).unwrap();
        let mut tape = Tape::new();
        let x = tape.constant(Matrix::identity(5));
        let out = lightgcn_propagate(&mut tape, &adj, x, 2, &paper_layer_weights(2)).unwrap();
        let v = tape.value(out);
        assert_eq!(v.shape(), (5, 5));
        // Patient 1 is connected to both drugs, so after propagation its row
        // must have mass on the drug columns (3 and 4).
        assert!(v.get(1, 3) > 0.0 && v.get(1, 4) > 0.0);
        // Patient 0 and patient 1 are two hops apart (they share drug 0), so
        // with 2 layers some of patient 1's identity mass reaches patient 0.
        assert!(v.get(0, 1) > 0.0);
    }

    #[test]
    fn beta_length_mismatch_is_rejected() {
        let adj = bipartite_adjacency(&graph()).unwrap();
        let mut tape = Tape::new();
        let x = tape.constant(Matrix::identity(5));
        assert!(lightgcn_propagate(&mut tape, &adj, x, 2, &[0.5, 0.3]).is_err());
    }

    #[test]
    fn zero_layers_returns_scaled_input() {
        let adj = bipartite_adjacency(&graph()).unwrap();
        let mut tape = Tape::new();
        let x = tape.constant(Matrix::identity(5));
        let out = lightgcn_propagate(&mut tape, &adj, x, 0, &[1.0]).unwrap();
        assert_eq!(tape.value(out).data(), Matrix::identity(5).data());
    }
}
