//! Multi-layer perceptrons on the autodiff tape.
//!
//! Both DDIGCN (Eq. 1, the `f_Θ1` update) and the MDGCN decoder (Eq. 14–15,
//! `f_Θ2`) are MLPs; this module provides a small reusable implementation
//! whose parameters live in a shared [`ParamSet`].

use rand::Rng;

use dssddi_tensor::serde::{ByteReader, ByteWriter, SerdeError};
use dssddi_tensor::{init, Binder, ParamId, ParamSet, Tape, TensorError, Var};

/// Activation applied between (and optionally after) MLP layers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// Rectified linear unit.
    Relu,
    /// Leaky ReLU with slope 0.01 (the paper's choice for MDGCN).
    LeakyRelu,
    /// Hyperbolic tangent.
    Tanh,
    /// Logistic sigmoid.
    Sigmoid,
    /// No activation.
    Identity,
}

impl Activation {
    /// Stable on-disk tag of the activation.
    pub fn tag(self) -> u8 {
        match self {
            Activation::Relu => 0,
            Activation::LeakyRelu => 1,
            Activation::Tanh => 2,
            Activation::Sigmoid => 3,
            Activation::Identity => 4,
        }
    }

    /// Inverse of [`Activation::tag`].
    pub fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            0 => Some(Activation::Relu),
            1 => Some(Activation::LeakyRelu),
            2 => Some(Activation::Tanh),
            3 => Some(Activation::Sigmoid),
            4 => Some(Activation::Identity),
            _ => None,
        }
    }
}

/// A fully connected network `x W₁ + b₁ → act → … → x Wₗ + bₗ`.
#[derive(Debug, Clone)]
pub struct Mlp {
    pub(crate) layers: Vec<(ParamId, ParamId)>,
    pub(crate) dims: Vec<usize>,
    pub(crate) hidden_activation: Activation,
    pub(crate) output_activation: Activation,
}

impl Mlp {
    /// Creates an MLP with the given layer dimensions, e.g. `[64, 64, 1]`
    /// builds two linear layers. Parameters are registered in `params` under
    /// names derived from `name`.
    pub fn new(
        name: &str,
        dims: &[usize],
        hidden_activation: Activation,
        output_activation: Activation,
        params: &mut ParamSet,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(
            dims.len() >= 2,
            "an MLP needs at least an input and an output dimension"
        );
        let mut layers = Vec::with_capacity(dims.len() - 1);
        for i in 0..dims.len() - 1 {
            let w = params.add(
                format!("{name}.w{i}"),
                init::xavier_uniform(dims[i], dims[i + 1], rng),
            );
            let b = params.add(format!("{name}.b{i}"), init::zeros(1, dims[i + 1]));
            layers.push((w, b));
        }
        Self {
            layers,
            dims: dims.to_vec(),
            hidden_activation,
            output_activation,
        }
    }

    /// Input dimension.
    pub fn input_dim(&self) -> usize {
        self.dims[0]
    }

    /// Output dimension.
    pub fn output_dim(&self) -> usize {
        self.dims.last().copied().unwrap_or(0)
    }

    /// Number of linear layers.
    pub fn n_layers(&self) -> usize {
        self.layers.len()
    }

    /// Serializes the MLP's structure (layer parameter ids, dimensions and
    /// activations). Parameter *values* live in the shared [`ParamSet`] and
    /// are serialized with it, not here.
    pub fn write_into(&self, w: &mut ByteWriter) {
        w.put_usize(self.layers.len());
        for &(wid, bid) in &self.layers {
            w.put_param_id(wid);
            w.put_param_id(bid);
        }
        w.put_usize_slice(&self.dims);
        w.put_u8(self.hidden_activation.tag());
        w.put_u8(self.output_activation.tag());
    }

    /// Reconstructs an MLP written by [`Mlp::write_into`], validating every
    /// parameter id and layer shape against `params` so a corrupt file can
    /// never produce an MLP that panics at inference time.
    pub fn read_from(r: &mut ByteReader<'_>, params: &ParamSet) -> Result<Self, SerdeError> {
        let n_layers = r.take_usize("mlp.layers")?;
        let mut layers = Vec::new();
        for _ in 0..n_layers {
            let wid = r.take_param_id(params, "mlp.layer.w")?;
            let bid = r.take_param_id(params, "mlp.layer.b")?;
            layers.push((wid, bid));
        }
        let dims = r.take_usize_vec("mlp.dims")?;
        if dims.len() < 2 || dims.len() != n_layers + 1 {
            return Err(SerdeError::Corrupt {
                what: format!("mlp: {} dims do not match {} layers", dims.len(), n_layers),
            });
        }
        for (i, &(wid, bid)) in layers.iter().enumerate() {
            let (expect_in, expect_out) = (dims[i], dims[i + 1]);
            if params.get(wid).shape() != (expect_in, expect_out)
                || params.get(bid).shape() != (1, expect_out)
            {
                return Err(SerdeError::Corrupt {
                    what: format!(
                        "mlp: layer {i} parameters do not have the declared \
                         {expect_in}->{expect_out} shape"
                    ),
                });
            }
        }
        let hidden = r.take_u8("mlp.hidden_activation")?;
        let output = r.take_u8("mlp.output_activation")?;
        let decode = |tag: u8| {
            Activation::from_tag(tag).ok_or_else(|| SerdeError::Corrupt {
                what: format!("mlp: unknown activation tag {tag}"),
            })
        };
        Ok(Self {
            layers,
            dims,
            hidden_activation: decode(hidden)?,
            output_activation: decode(output)?,
        })
    }

    /// Runs the MLP on `x` (shape `n x input_dim`), binding its parameters
    /// onto `tape` through `binder`.
    pub fn forward(
        &self,
        tape: &mut Tape,
        params: &ParamSet,
        binder: &mut Binder,
        x: Var,
    ) -> Result<Var, TensorError> {
        let mut h = x;
        for (i, &(w, b)) in self.layers.iter().enumerate() {
            let wv = binder.bind(tape, params, w);
            let bv = binder.bind(tape, params, b);
            h = tape.matmul(h, wv)?;
            h = tape.add_broadcast_row(h, bv)?;
            let act = if i + 1 == self.layers.len() {
                self.output_activation
            } else {
                self.hidden_activation
            };
            h = apply_activation(tape, h, act);
        }
        Ok(h)
    }
}

/// Applies an [`Activation`] to a tape variable.
pub fn apply_activation(tape: &mut Tape, x: Var, activation: Activation) -> Var {
    match activation {
        Activation::Relu => tape.relu(x),
        Activation::LeakyRelu => tape.leaky_relu(x, 0.01),
        Activation::Tanh => tape.tanh(x),
        Activation::Sigmoid => tape.sigmoid(x),
        Activation::Identity => x,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dssddi_tensor::{Adam, Matrix, Optimizer};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn shapes_and_parameter_count() {
        let mut params = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(0);
        let mlp = Mlp::new(
            "m",
            &[4, 8, 2],
            Activation::Relu,
            Activation::Identity,
            &mut params,
            &mut rng,
        );
        assert_eq!(mlp.input_dim(), 4);
        assert_eq!(mlp.output_dim(), 2);
        assert_eq!(mlp.n_layers(), 2);
        assert_eq!(params.len(), 4); // two weights + two biases
        assert_eq!(params.num_scalars(), 4 * 8 + 8 + 8 * 2 + 2);

        let mut tape = Tape::new();
        let mut binder = Binder::new();
        let x = tape.constant(Matrix::ones(5, 4));
        let y = mlp.forward(&mut tape, &params, &mut binder, x).unwrap();
        assert_eq!(tape.value(y).shape(), (5, 2));
    }

    #[test]
    fn mlp_can_learn_xor() {
        let mut params = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(1);
        let mlp = Mlp::new(
            "xor",
            &[2, 16, 1],
            Activation::Tanh,
            Activation::Identity,
            &mut params,
            &mut rng,
        );
        let x = Matrix::from_vec(4, 2, vec![0.0, 0.0, 0.0, 1.0, 1.0, 0.0, 1.0, 1.0]).unwrap();
        let y = Matrix::from_vec(4, 1, vec![0.0, 1.0, 1.0, 0.0]).unwrap();
        let mut opt = Adam::new(0.05);
        let mut last = f32::INFINITY;
        for _ in 0..400 {
            let mut tape = Tape::new();
            let mut binder = Binder::new();
            let xv = tape.constant(x.clone());
            let logits = mlp.forward(&mut tape, &params, &mut binder, xv).unwrap();
            let loss = tape.bce_with_logits(logits, &y).unwrap();
            tape.backward(loss).unwrap();
            let grads = binder.grads(&tape, &params);
            opt.step(&mut params, &grads).unwrap();
            last = tape.value(loss).get(0, 0);
        }
        assert!(last < 0.1, "XOR not learned, loss {last}");
    }

    #[test]
    fn mlp_round_trips_through_serde() {
        let mut params = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(9);
        let mlp = Mlp::new(
            "m",
            &[3, 5, 2],
            Activation::LeakyRelu,
            Activation::Sigmoid,
            &mut params,
            &mut rng,
        );
        let mut w = ByteWriter::new();
        mlp.write_into(&mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let back = Mlp::read_from(&mut r, &params).unwrap();
        assert_eq!(back.input_dim(), 3);
        assert_eq!(back.output_dim(), 2);
        assert_eq!(back.n_layers(), 2);

        // The reloaded MLP computes the same outputs with the same ParamSet.
        let x = Matrix::rand_uniform(4, 3, -1.0, 1.0, &mut rng);
        let mut t1 = Tape::new();
        let mut b1 = Binder::new();
        let x1 = t1.constant(x.clone());
        let y1 = mlp.forward(&mut t1, &params, &mut b1, x1).unwrap();
        let mut t2 = Tape::new();
        let mut b2 = Binder::new();
        let x2 = t2.constant(x);
        let y2 = back.forward(&mut t2, &params, &mut b2, x2).unwrap();
        assert_eq!(t1.value(y1), t2.value(y2));

        // A reader over an empty ParamSet rejects the parameter ids.
        let mut r = ByteReader::new(&bytes);
        assert!(Mlp::read_from(&mut r, &ParamSet::new()).is_err());
        // Truncation errors instead of panicking.
        for cut in 0..bytes.len() {
            let mut r = ByteReader::new(&bytes[..cut]);
            assert!(Mlp::read_from(&mut r, &params).is_err());
        }
    }

    #[test]
    fn every_activation_is_applied_without_panic() {
        for act in [
            Activation::Relu,
            Activation::LeakyRelu,
            Activation::Tanh,
            Activation::Sigmoid,
            Activation::Identity,
        ] {
            let mut tape = Tape::new();
            let x = tape.constant(Matrix::from_vec(1, 2, vec![-1.0, 1.0]).unwrap());
            let y = apply_activation(&mut tape, x, act);
            assert!(tape.value(y).all_finite());
        }
    }
}
