//! # dssddi-gnn
//!
//! Graph neural network building blocks for the DSSDDI reproduction:
//!
//! * [`mlp`] — multi-layer perceptrons (the `f_Θ` blocks of DDIGCN / MDGCN),
//! * [`context`] — precomputed adjacency operators of a signed DDI graph,
//! * [`gin`] — Graph Isomorphism Network convolution (default backbone),
//! * [`sgcn`] — Signed GCN layer (best backbone on the chronic data set),
//! * [`attention`] — the SiGAT and SNEA attention backbones,
//! * [`lightgcn`] — LightGCN-style propagation used by the MDGCN encoder and
//!   the LightGCN baseline,
//! * [`gcn`] — a generic GCN layer used by the GCMC / Bipar-GCN baselines,
//! * [`sampling`] — 1:1 negative sampling over patient–drug links,
//! * [`infer`] — tape-free inference over scratch buffers for the serving
//!   path (bit-identical to the taped forward passes).

#![warn(missing_docs)]

pub mod attention;
pub mod context;
pub mod gcn;
pub mod gin;
pub mod infer;
pub mod lightgcn;
pub mod mlp;
pub mod sampling;
pub mod sgcn;

pub use attention::{SigatLayer, SneaLayer};
pub use context::SignedGraphContext;
pub use gcn::GcnLayer;
pub use gin::GinConv;
pub use infer::activation_kind;
pub use lightgcn::{bipartite_adjacency, lightgcn_propagate, paper_layer_weights};
pub use mlp::{apply_activation, Activation, Mlp};
pub use sampling::{sample_link_batch, LinkBatch};
pub use sgcn::SgcnLayer;
