//! Negative sampling for link-prediction training.
//!
//! MDGCN is trained with 1:1 negative sampling over patient–drug pairs
//! (Section IV-B3): for every observed medication-use link, one unobserved
//! pair from the same patient is sampled as a negative example.

use rand::Rng;

use dssddi_graph::BipartiteGraph;

/// A training batch of patient–drug pairs with binary targets.
#[derive(Debug, Clone, Default)]
pub struct LinkBatch {
    /// Patient index of every pair.
    pub patients: Vec<usize>,
    /// Drug index of every pair.
    pub drugs: Vec<usize>,
    /// Target of every pair (1.0 for observed links, 0.0 for negatives).
    pub targets: Vec<f32>,
}

impl LinkBatch {
    /// Number of pairs in the batch.
    pub fn len(&self) -> usize {
        self.patients.len()
    }

    /// True when the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.patients.is_empty()
    }

    /// Number of positive pairs.
    pub fn positives(&self) -> usize {
        self.targets.iter().filter(|&&t| t > 0.5).count()
    }
}

/// Builds a training batch containing every observed link of `graph` as a
/// positive pair and `negatives_per_positive` sampled non-links per positive
/// (sampled uniformly over drugs the patient does not take).
pub fn sample_link_batch(
    graph: &BipartiteGraph,
    negatives_per_positive: usize,
    rng: &mut impl Rng,
) -> LinkBatch {
    let mut batch = LinkBatch::default();
    let n_drugs = graph.right_count();
    for (patient, drug) in graph.edges() {
        batch.patients.push(patient);
        batch.drugs.push(drug);
        batch.targets.push(1.0);
        let mut attempts = 0;
        let mut added = 0;
        while added < negatives_per_positive && attempts < 50 * negatives_per_positive.max(1) {
            attempts += 1;
            let candidate = rng.gen_range(0..n_drugs);
            if !graph.has_edge(patient, candidate) {
                batch.patients.push(patient);
                batch.drugs.push(candidate);
                batch.targets.push(0.0);
                added += 1;
            }
        }
    }
    batch
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn graph() -> BipartiteGraph {
        BipartiteGraph::from_pairs(4, 10, &[(0, 1), (0, 2), (1, 3), (2, 0), (3, 9)]).unwrap()
    }

    #[test]
    fn one_to_one_sampling_doubles_the_batch() {
        let g = graph();
        let mut rng = StdRng::seed_from_u64(0);
        let batch = sample_link_batch(&g, 1, &mut rng);
        assert_eq!(batch.positives(), 5);
        assert_eq!(batch.len(), 10);
        assert!(!batch.is_empty());
    }

    #[test]
    fn negatives_are_never_observed_links() {
        let g = graph();
        let mut rng = StdRng::seed_from_u64(1);
        let batch = sample_link_batch(&g, 2, &mut rng);
        for i in 0..batch.len() {
            if batch.targets[i] < 0.5 {
                assert!(!g.has_edge(batch.patients[i], batch.drugs[i]));
            } else {
                assert!(g.has_edge(batch.patients[i], batch.drugs[i]));
            }
        }
    }

    #[test]
    fn zero_negatives_returns_positives_only() {
        let g = graph();
        let mut rng = StdRng::seed_from_u64(2);
        let batch = sample_link_batch(&g, 0, &mut rng);
        assert_eq!(batch.len(), batch.positives());
    }

    #[test]
    fn patient_taking_every_drug_produces_no_negatives() {
        let pairs: Vec<(usize, usize)> = (0..3).map(|d| (0, d)).collect();
        let g = BipartiteGraph::from_pairs(1, 3, &pairs).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let batch = sample_link_batch(&g, 1, &mut rng);
        assert_eq!(batch.positives(), 3);
        assert_eq!(batch.len(), 3, "no negatives should be available");
    }
}
