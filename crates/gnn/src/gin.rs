//! Graph Isomorphism Network convolution (Xu et al., ICLR 2019) — the
//! default DDIGCN backbone (Eq. 1 of the paper).

use rand::Rng;

use dssddi_tensor::{Binder, Matrix, ParamId, ParamSet, Tape, TensorError, Var};

use crate::context::SignedGraphContext;
use crate::mlp::{Activation, Mlp};

/// One GIN convolution: `z' = MLP((1 + ε) · z + mean_{u ∈ N(v)} z_u)`,
/// followed (as in the paper) by batch normalisation and ReLU.
#[derive(Debug, Clone)]
pub struct GinConv {
    epsilon: ParamId,
    mlp: Mlp,
    gamma: ParamId,
    beta: ParamId,
    use_batch_norm: bool,
}

impl GinConv {
    /// Creates a GIN convolution mapping `in_dim` features to `out_dim`.
    pub fn new(
        name: &str,
        in_dim: usize,
        out_dim: usize,
        use_batch_norm: bool,
        params: &mut ParamSet,
        rng: &mut impl Rng,
    ) -> Self {
        let epsilon = params.add(format!("{name}.eps"), Matrix::zeros(1, 1));
        let mlp = Mlp::new(
            &format!("{name}.mlp"),
            &[in_dim, out_dim, out_dim],
            Activation::Relu,
            Activation::Identity,
            params,
            rng,
        );
        let gamma = params.add(format!("{name}.bn_gamma"), Matrix::ones(1, out_dim));
        let beta = params.add(format!("{name}.bn_beta"), Matrix::zeros(1, out_dim));
        Self {
            epsilon,
            mlp,
            gamma,
            beta,
            use_batch_norm,
        }
    }

    /// Output feature dimension.
    pub fn output_dim(&self) -> usize {
        self.mlp.output_dim()
    }

    /// Applies the convolution to node features `x` using the mean
    /// aggregation operator of `ctx`.
    pub fn forward(
        &self,
        tape: &mut Tape,
        params: &ParamSet,
        binder: &mut Binder,
        ctx: &SignedGraphContext,
        x: Var,
    ) -> Result<Var, TensorError> {
        let eps = binder.bind(tape, params, self.epsilon);
        let one_plus_eps = tape.add_scalar(eps, 1.0);
        let self_term = tape.mul_scalar_var(x, one_plus_eps)?;
        let neighbour_mean = tape.spmm(&ctx.mean_adjacency, x)?;
        let combined = tape.add(self_term, neighbour_mean)?;
        let mut h = self.mlp.forward(tape, params, binder, combined)?;
        if self.use_batch_norm {
            let standardized = tape.standardize_cols(h, 1e-5);
            let gamma = binder.bind(tape, params, self.gamma);
            let beta = binder.bind(tape, params, self.beta);
            let scaled = tape.mul_broadcast_row(standardized, gamma)?;
            h = tape.add_broadcast_row(scaled, beta)?;
        }
        Ok(tape.relu(h))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dssddi_graph::{Interaction, SignedGraph};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ctx() -> SignedGraphContext {
        let mut g = SignedGraph::new(5);
        g.add_interaction(0, 1, Interaction::Synergistic).unwrap();
        g.add_interaction(1, 2, Interaction::Antagonistic).unwrap();
        g.add_interaction(3, 4, Interaction::Synergistic).unwrap();
        SignedGraphContext::new(&g).unwrap()
    }

    #[test]
    fn forward_produces_expected_shape_and_finite_values() {
        let ctx = ctx();
        let mut params = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(0);
        let conv = GinConv::new("gin0", 5, 8, true, &mut params, &mut rng);
        assert_eq!(conv.output_dim(), 8);

        let mut tape = Tape::new();
        let mut binder = Binder::new();
        let x = tape.constant(Matrix::identity(5));
        let z = conv
            .forward(&mut tape, &params, &mut binder, &ctx, x)
            .unwrap();
        assert_eq!(tape.value(z).shape(), (5, 8));
        assert!(tape.value(z).all_finite());
    }

    #[test]
    fn gradients_reach_epsilon_and_mlp_weights() {
        let ctx = ctx();
        let mut params = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(1);
        let conv = GinConv::new("gin0", 5, 4, false, &mut params, &mut rng);
        let mut tape = Tape::new();
        let mut binder = Binder::new();
        let x = tape.constant(Matrix::identity(5));
        let z = conv
            .forward(&mut tape, &params, &mut binder, &ctx, x)
            .unwrap();
        let loss = tape.mean_all(z);
        tape.backward(loss).unwrap();
        let grads = binder.grads(&tape, &params);
        let nonzero = grads
            .iter()
            .filter(|(_, g)| g.frobenius_norm() > 0.0)
            .count();
        assert!(nonzero >= 3, "only {nonzero} parameters received gradient");
    }

    #[test]
    fn isolated_nodes_keep_self_information() {
        // Node with no neighbours: output depends only on its own features.
        let g = SignedGraph::new(3);
        let ctx = SignedGraphContext::new(&g).unwrap();
        let mut params = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(2);
        let conv = GinConv::new("gin0", 3, 4, false, &mut params, &mut rng);
        let mut tape = Tape::new();
        let mut binder = Binder::new();
        let x = tape.constant(Matrix::identity(3));
        let z = conv
            .forward(&mut tape, &params, &mut binder, &ctx, x)
            .unwrap();
        assert!(tape.value(z).all_finite());
    }
}
