//! Precomputed adjacency operators for a signed DDI graph.
//!
//! Every DDIGCN backbone consumes the same [`SignedGraphContext`]: mean
//! aggregation matrices over all interacting edges (GIN), sign-separated
//! mean aggregation matrices (SGCN), and directed edge lists with
//! destination segments (the attention backbones SiGAT and SNEA).

use std::rc::Rc;

use dssddi_graph::{Interaction, SignedGraph};
use dssddi_tensor::{CsrMatrix, TensorError};

/// Adjacency structures derived once from a [`SignedGraph`] and shared by
/// all forward passes.
#[derive(Clone)]
pub struct SignedGraphContext {
    /// Number of drugs.
    pub n: usize,
    /// Undirected synergistic pairs `(u, v)` with `u < v`.
    pub positive_edges: Vec<(usize, usize)>,
    /// Undirected antagonistic pairs `(u, v)` with `u < v`.
    pub negative_edges: Vec<(usize, usize)>,
    /// All signed training edges `(u, v, label)` including explicit
    /// no-interaction pairs (the DDIGCN regression targets).
    pub labelled_edges: Vec<(usize, usize, f32)>,
    /// Mean aggregation over all interacting neighbours (synergistic and
    /// antagonistic), used by the GIN backbone.
    pub mean_adjacency: Rc<CsrMatrix>,
    /// Mean aggregation restricted to synergistic neighbours.
    pub positive_mean_adjacency: Rc<CsrMatrix>,
    /// Mean aggregation restricted to antagonistic neighbours.
    pub negative_mean_adjacency: Rc<CsrMatrix>,
    /// Directed interacting edges `(src, dst)` (both directions plus self
    /// loops), for the attention backbones.
    pub directed_edges: Rc<Vec<(usize, usize)>>,
    /// Destination node of each directed edge (the softmax segments).
    pub edge_segments: Rc<Vec<usize>>,
    /// Sign of each directed edge (+1 synergy, −1 antagonism, +1 for self loops).
    pub edge_signs: Vec<f32>,
}

impl SignedGraphContext {
    /// Builds the context from a signed DDI graph.
    pub fn new(graph: &SignedGraph) -> Result<Self, TensorError> {
        let n = graph.node_count();
        let positive_edges = graph.edges_of(Interaction::Synergistic);
        let negative_edges = graph.edges_of(Interaction::Antagonistic);
        let mut interacting: Vec<(usize, usize)> = positive_edges.clone();
        interacting.extend_from_slice(&negative_edges);

        let mean_adjacency = Rc::new(CsrMatrix::mean_adjacency(n, &interacting)?);
        let positive_mean_adjacency = Rc::new(CsrMatrix::mean_adjacency(n, &positive_edges)?);
        let negative_mean_adjacency = Rc::new(CsrMatrix::mean_adjacency(n, &negative_edges)?);

        let mut directed = Vec::with_capacity(interacting.len() * 2 + n);
        let mut signs = Vec::with_capacity(interacting.len() * 2 + n);
        for &(u, v) in &positive_edges {
            directed.push((u, v));
            signs.push(1.0);
            directed.push((v, u));
            signs.push(1.0);
        }
        for &(u, v) in &negative_edges {
            directed.push((u, v));
            signs.push(-1.0);
            directed.push((v, u));
            signs.push(-1.0);
        }
        for i in 0..n {
            directed.push((i, i));
            signs.push(1.0);
        }
        let segments: Vec<usize> = directed.iter().map(|&(_, dst)| dst).collect();

        Ok(Self {
            n,
            positive_edges,
            negative_edges,
            labelled_edges: graph.labelled_edges(),
            mean_adjacency,
            positive_mean_adjacency,
            negative_mean_adjacency,
            directed_edges: Rc::new(directed),
            edge_segments: Rc::new(segments),
            edge_signs: signs,
        })
    }

    /// Number of directed edges (including self loops) seen by the attention
    /// backbones.
    pub fn directed_edge_count(&self) -> usize {
        self.directed_edges.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dssddi_graph::Interaction;

    fn small_graph() -> SignedGraph {
        let mut g = SignedGraph::new(4);
        g.add_interaction(0, 1, Interaction::Synergistic).unwrap();
        g.add_interaction(1, 2, Interaction::Antagonistic).unwrap();
        g.add_interaction(2, 3, Interaction::None).unwrap();
        g
    }

    #[test]
    fn context_splits_edges_by_sign() {
        let ctx = SignedGraphContext::new(&small_graph()).unwrap();
        assert_eq!(ctx.n, 4);
        assert_eq!(ctx.positive_edges, vec![(0, 1)]);
        assert_eq!(ctx.negative_edges, vec![(1, 2)]);
        assert_eq!(ctx.labelled_edges.len(), 3);
        // 2 directed per interacting edge + 4 self loops.
        assert_eq!(ctx.directed_edge_count(), 2 * 2 + 4);
        assert_eq!(ctx.edge_signs.len(), ctx.directed_edge_count());
    }

    #[test]
    fn adjacency_shapes_match_node_count() {
        let ctx = SignedGraphContext::new(&small_graph()).unwrap();
        assert_eq!(ctx.mean_adjacency.rows(), 4);
        assert_eq!(ctx.positive_mean_adjacency.cols(), 4);
        assert_eq!(ctx.negative_mean_adjacency.rows(), 4);
    }

    #[test]
    fn segments_point_at_edge_destinations() {
        let ctx = SignedGraphContext::new(&small_graph()).unwrap();
        for (e, &(_, dst)) in ctx.directed_edges.iter().enumerate() {
            assert_eq!(ctx.edge_segments[e], dst);
        }
    }

    #[test]
    fn graph_without_interactions_still_builds() {
        let g = SignedGraph::new(3);
        let ctx = SignedGraphContext::new(&g).unwrap();
        assert_eq!(ctx.positive_edges.len(), 0);
        assert_eq!(ctx.directed_edge_count(), 3); // self loops only
    }
}
