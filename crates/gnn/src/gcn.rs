//! Generic graph convolution layer with feature transformation
//! (`H' = act(Â H W + b)`), used by the GCMC and Bipar-GCN baselines.

use std::rc::Rc;

use rand::Rng;

use dssddi_tensor::{init, Binder, CsrMatrix, ParamId, ParamSet, Tape, TensorError, Var};

use crate::mlp::{apply_activation, Activation};

/// One standard GCN layer.
#[derive(Debug, Clone)]
pub struct GcnLayer {
    pub(crate) w: ParamId,
    pub(crate) b: ParamId,
    pub(crate) activation: Activation,
    pub(crate) out_dim: usize,
}

impl GcnLayer {
    /// Creates a GCN layer mapping `in_dim` features to `out_dim`.
    pub fn new(
        name: &str,
        in_dim: usize,
        out_dim: usize,
        activation: Activation,
        params: &mut ParamSet,
        rng: &mut impl Rng,
    ) -> Self {
        let w = params.add(
            format!("{name}.w"),
            init::xavier_uniform(in_dim, out_dim, rng),
        );
        let b = params.add(format!("{name}.b"), init::zeros(1, out_dim));
        Self {
            w,
            b,
            activation,
            out_dim,
        }
    }

    /// Output dimension.
    pub fn output_dim(&self) -> usize {
        self.out_dim
    }

    /// Applies `act(Â x W + b)`.
    pub fn forward(
        &self,
        tape: &mut Tape,
        params: &ParamSet,
        binder: &mut Binder,
        adjacency: &Rc<CsrMatrix>,
        x: Var,
    ) -> Result<Var, TensorError> {
        let propagated = tape.spmm(adjacency, x)?;
        let w = binder.bind(tape, params, self.w);
        let b = binder.bind(tape, params, self.b);
        let lin = tape.matmul(propagated, w)?;
        let lin = tape.add_broadcast_row(lin, b)?;
        Ok(apply_activation(tape, lin, self.activation))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dssddi_tensor::Matrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_shape_and_gradients() {
        let adj =
            Rc::new(CsrMatrix::normalized_adjacency(4, &[(0, 1), (1, 2), (2, 3)], true).unwrap());
        let mut params = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(0);
        let layer = GcnLayer::new("gcn0", 4, 6, Activation::Relu, &mut params, &mut rng);
        assert_eq!(layer.output_dim(), 6);

        let mut tape = Tape::new();
        let mut binder = Binder::new();
        let x = tape.constant(Matrix::identity(4));
        let h = layer
            .forward(&mut tape, &params, &mut binder, &adj, x)
            .unwrap();
        assert_eq!(tape.value(h).shape(), (4, 6));
        let loss = tape.mean_all(h);
        tape.backward(loss).unwrap();
        assert!(binder.grad_norm(&tape) > 0.0);
    }

    #[test]
    fn stacking_layers_reaches_two_hop_neighbours() {
        let adj = Rc::new(CsrMatrix::normalized_adjacency(3, &[(0, 1), (1, 2)], true).unwrap());
        let mut params = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(1);
        let l1 = GcnLayer::new("l1", 3, 3, Activation::Identity, &mut params, &mut rng);
        let l2 = GcnLayer::new("l2", 3, 2, Activation::Identity, &mut params, &mut rng);
        let mut tape = Tape::new();
        let mut binder = Binder::new();
        let x = tape.constant(Matrix::identity(3));
        let h1 = l1
            .forward(&mut tape, &params, &mut binder, &adj, x)
            .unwrap();
        let h2 = l2
            .forward(&mut tape, &params, &mut binder, &adj, h1)
            .unwrap();
        assert_eq!(tape.value(h2).shape(), (3, 2));
        assert!(tape.value(h2).all_finite());
    }
}
