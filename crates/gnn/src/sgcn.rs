//! Signed Graph Convolutional Network layer (Derr et al., ICDM 2018) —
//! the best-performing DDIGCN backbone in the paper (Eq. 2–4).

use rand::Rng;

use dssddi_tensor::{init, Binder, ParamId, ParamSet, Tape, TensorError, Var};

use crate::context::SignedGraphContext;

/// One SGCN layer maintaining separate "balanced" (synergy-reachable) and
/// "unbalanced" (antagonism-reachable) hidden representations.
///
/// Following Eq. 2–3 of the paper, the balanced representation aggregates
/// synergistic neighbours' balanced states and antagonistic neighbours'
/// unbalanced states (and vice versa), concatenated with the node's own
/// previous state and linearly transformed.
#[derive(Debug, Clone)]
pub struct SgcnLayer {
    pub(crate) w_balanced: ParamId,
    pub(crate) b_balanced: ParamId,
    pub(crate) w_unbalanced: ParamId,
    pub(crate) b_unbalanced: ParamId,
    pub(crate) out_dim: usize,
}

impl SgcnLayer {
    /// Creates an SGCN layer mapping `in_dim`-dimensional balanced and
    /// unbalanced states to `out_dim`-dimensional ones.
    pub fn new(
        name: &str,
        in_dim: usize,
        out_dim: usize,
        params: &mut ParamSet,
        rng: &mut impl Rng,
    ) -> Self {
        let w_balanced = params.add(
            format!("{name}.w_bal"),
            init::xavier_uniform(3 * in_dim, out_dim, rng),
        );
        let b_balanced = params.add(format!("{name}.b_bal"), init::zeros(1, out_dim));
        let w_unbalanced = params.add(
            format!("{name}.w_unbal"),
            init::xavier_uniform(3 * in_dim, out_dim, rng),
        );
        let b_unbalanced = params.add(format!("{name}.b_unbal"), init::zeros(1, out_dim));
        Self {
            w_balanced,
            b_balanced,
            w_unbalanced,
            b_unbalanced,
            out_dim,
        }
    }

    /// Output dimension of each of the two hidden states.
    pub fn output_dim(&self) -> usize {
        self.out_dim
    }

    /// Applies the layer, returning the updated `(balanced, unbalanced)`
    /// representations.
    pub fn forward(
        &self,
        tape: &mut Tape,
        params: &ParamSet,
        binder: &mut Binder,
        ctx: &SignedGraphContext,
        h_balanced: Var,
        h_unbalanced: Var,
    ) -> Result<(Var, Var), TensorError> {
        // Balanced update: synergy neighbours' balanced + antagonism
        // neighbours' unbalanced + own balanced state.
        let pos_bal = tape.spmm(&ctx.positive_mean_adjacency, h_balanced)?;
        let neg_unbal = tape.spmm(&ctx.negative_mean_adjacency, h_unbalanced)?;
        let cat = tape.concat_cols(pos_bal, neg_unbal)?;
        let cat = tape.concat_cols(cat, h_balanced)?;
        let w_b = binder.bind(tape, params, self.w_balanced);
        let b_b = binder.bind(tape, params, self.b_balanced);
        let lin = tape.matmul(cat, w_b)?;
        let lin = tape.add_broadcast_row(lin, b_b)?;
        let new_balanced = tape.tanh(lin);

        // Unbalanced update: synergy neighbours' unbalanced + antagonism
        // neighbours' balanced + own unbalanced state.
        let pos_unbal = tape.spmm(&ctx.positive_mean_adjacency, h_unbalanced)?;
        let neg_bal = tape.spmm(&ctx.negative_mean_adjacency, h_balanced)?;
        let cat_u = tape.concat_cols(pos_unbal, neg_bal)?;
        let cat_u = tape.concat_cols(cat_u, h_unbalanced)?;
        let w_u = binder.bind(tape, params, self.w_unbalanced);
        let b_u = binder.bind(tape, params, self.b_unbalanced);
        let lin_u = tape.matmul(cat_u, w_u)?;
        let lin_u = tape.add_broadcast_row(lin_u, b_u)?;
        let new_unbalanced = tape.tanh(lin_u);

        Ok((new_balanced, new_unbalanced))
    }

    /// Concatenates balanced and unbalanced states into the final node
    /// representation `z = [h_B, h_U]` (Eq. 4).
    pub fn combine(tape: &mut Tape, balanced: Var, unbalanced: Var) -> Result<Var, TensorError> {
        tape.concat_cols(balanced, unbalanced)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dssddi_graph::{Interaction, SignedGraph};
    use dssddi_tensor::Matrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ctx() -> SignedGraphContext {
        let mut g = SignedGraph::new(4);
        g.add_interaction(0, 1, Interaction::Synergistic).unwrap();
        g.add_interaction(1, 2, Interaction::Antagonistic).unwrap();
        g.add_interaction(2, 3, Interaction::Antagonistic).unwrap();
        SignedGraphContext::new(&g).unwrap()
    }

    #[test]
    fn forward_shapes_and_combination() {
        let ctx = ctx();
        let mut params = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(0);
        let layer = SgcnLayer::new("sgcn0", 4, 6, &mut params, &mut rng);
        assert_eq!(layer.output_dim(), 6);

        let mut tape = Tape::new();
        let mut binder = Binder::new();
        let h = tape.constant(Matrix::identity(4));
        let (b, u) = layer
            .forward(&mut tape, &params, &mut binder, &ctx, h, h)
            .unwrap();
        assert_eq!(tape.value(b).shape(), (4, 6));
        assert_eq!(tape.value(u).shape(), (4, 6));
        let z = SgcnLayer::combine(&mut tape, b, u).unwrap();
        assert_eq!(tape.value(z).shape(), (4, 12));
    }

    #[test]
    fn balanced_and_unbalanced_paths_differ_when_signs_differ() {
        // Node 0 only has a synergistic neighbour, node 3 only an
        // antagonistic one; their balanced representations should differ.
        let ctx = ctx();
        let mut params = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(1);
        let layer = SgcnLayer::new("sgcn0", 4, 8, &mut params, &mut rng);
        let mut tape = Tape::new();
        let mut binder = Binder::new();
        let h = tape.constant(Matrix::identity(4));
        let (b, u) = layer
            .forward(&mut tape, &params, &mut binder, &ctx, h, h)
            .unwrap();
        let bv = tape.value(b);
        let uv = tape.value(u);
        let diff: f32 = bv
            .row(0)
            .iter()
            .zip(uv.row(0).iter())
            .map(|(x, y)| (x - y).abs())
            .sum();
        assert!(
            diff > 1e-4,
            "balanced and unbalanced collapsed to the same representation"
        );
    }

    #[test]
    fn gradients_flow_into_both_weight_matrices() {
        let ctx = ctx();
        let mut params = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(2);
        let layer = SgcnLayer::new("sgcn0", 4, 4, &mut params, &mut rng);
        let mut tape = Tape::new();
        let mut binder = Binder::new();
        let h = tape.constant(Matrix::identity(4));
        let (b, u) = layer
            .forward(&mut tape, &params, &mut binder, &ctx, h, h)
            .unwrap();
        let z = SgcnLayer::combine(&mut tape, b, u).unwrap();
        let loss = tape.mean_all(z);
        tape.backward(loss).unwrap();
        let grads = binder.grads(&tape, &params);
        for (id, g) in grads {
            assert!(
                g.frobenius_norm() > 0.0,
                "parameter {} received no gradient",
                params.name(id)
            );
        }
    }
}
