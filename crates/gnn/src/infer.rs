//! Tape-free inference for the GNN building blocks.
//!
//! Training needs the autodiff [`Tape`](dssddi_tensor::Tape): every
//! operation allocates a node, clones activations and remembers enough to
//! run backwards. Serving needs none of that — a suggestion request only
//! ever runs forwards. The methods in this module re-express the forward
//! passes of [`Mlp`], [`GcnLayer`] and [`SgcnLayer`] directly over the
//! fused kernels of `dssddi_tensor`, writing every intermediate into a
//! caller-provided [`ScratchPool`] so a serving loop performs no steady-
//! state allocation at all.
//!
//! ## Bit-identical by construction
//!
//! The tape-free paths are not merely "numerically close" to the taped
//! ones; they produce the same bits. Each taped op is replaced by a kernel
//! with the identical floating-point evaluation order:
//!
//! * `Tape::matmul` and [`fused_linear_into`] share the same blocked,
//!   `k`-ascending accumulation (both call `Matrix::matmul_into`),
//! * the fused bias-plus-activation pass performs the same single addition
//!   as `Tape::add_broadcast_row` followed by the same scalar activation
//!   function,
//! * `Tape::spmm` and `CsrMatrix::matmul_dense_into` share one CSR kernel,
//! * concatenation copies values verbatim.
//!
//! The equivalence tests in `tests/infer_equivalence.rs` assert exact
//! equality between `forward` and `infer` on randomized shapes, weights
//! and activations.

use dssddi_tensor::{
    fused_linear_into, ActivationKind, CsrMatrix, Matrix, ParamSet, ScratchPool, TensorError,
};

use crate::context::SignedGraphContext;
use crate::gcn::GcnLayer;
use crate::mlp::{Activation, Mlp};
use crate::sgcn::SgcnLayer;

/// The scalar activation a tape-level [`Activation`] evaluates — shared by
/// every tape-free layer so the mapping exists in exactly one place.
pub fn activation_kind(activation: Activation) -> ActivationKind {
    match activation {
        Activation::Relu => ActivationKind::Relu,
        // The taped path applies leaky ReLU with slope 0.01 (see
        // `apply_activation`); the tape-free path must match it exactly.
        Activation::LeakyRelu => ActivationKind::LeakyRelu(0.01),
        Activation::Tanh => ActivationKind::Tanh,
        Activation::Sigmoid => ActivationKind::Sigmoid,
        Activation::Identity => ActivationKind::Identity,
    }
}

/// Writes `[a | b | c]` into `out` row by row (shapes are the caller's
/// responsibility; this is the tape-free counterpart of two chained
/// `Tape::concat_cols` calls). Like every `*_into` kernel, it takes its
/// output buffer as the first argument and fully overwrites it.
fn concat3_into(out: &mut Matrix, a: &Matrix, b: &Matrix, c: &Matrix) {
    debug_assert_eq!(out.rows(), a.rows());
    debug_assert_eq!(out.cols(), a.cols() + b.cols() + c.cols());
    let (da, db) = (a.cols(), b.cols());
    for r in 0..out.rows() {
        let row = out.row_mut(r);
        row[..da].copy_from_slice(a.row(r));
        row[da..da + db].copy_from_slice(b.row(r));
        row[da + db..].copy_from_slice(c.row(r));
    }
}

impl Mlp {
    /// Tape-free forward pass over `x` (shape `n x input_dim`), bit-identical
    /// to [`Mlp::forward`] on a tape.
    ///
    /// Intermediates come from (and retire back into) `pool`; callers may
    /// [`ScratchPool::recycle`] the returned matrix once they are done with
    /// it, making a serving loop allocation-free after warm-up.
    pub fn infer(
        &self,
        params: &ParamSet,
        x: &Matrix,
        pool: &mut ScratchPool,
    ) -> Result<Matrix, TensorError> {
        let mut cur: Option<Matrix> = None;
        for (i, &(w, b)) in self.layers.iter().enumerate() {
            let act = if i + 1 == self.layers.len() {
                self.output_activation
            } else {
                self.hidden_activation
            };
            let input = cur.as_ref().unwrap_or(x);
            let mut out = pool.take(input.rows(), self.dims[i + 1]);
            fused_linear_into(
                &mut out,
                input,
                params.get(w),
                params.get(b),
                activation_kind(act),
            )?;
            if let Some(prev) = cur.replace(out) {
                pool.recycle(prev);
            }
        }
        // Construction asserts `dims.len() >= 2`, so at least one layer ran;
        // an (impossible) zero-layer MLP is the identity.
        Ok(cur.unwrap_or_else(|| x.clone()))
    }
}

impl GcnLayer {
    /// Tape-free `act(Â x W + b)`, bit-identical to [`GcnLayer::forward`].
    pub fn infer(
        &self,
        params: &ParamSet,
        adjacency: &CsrMatrix,
        x: &Matrix,
        pool: &mut ScratchPool,
    ) -> Result<Matrix, TensorError> {
        let mut propagated = pool.take(adjacency.rows(), x.cols());
        adjacency.matmul_dense_into(&mut propagated, x)?;
        let mut out = pool.take(propagated.rows(), self.out_dim);
        fused_linear_into(
            &mut out,
            &propagated,
            params.get(self.w),
            params.get(self.b),
            activation_kind(self.activation),
        )?;
        pool.recycle(propagated);
        Ok(out)
    }
}

impl SgcnLayer {
    /// Tape-free layer application, returning the updated
    /// `(balanced, unbalanced)` representations — bit-identical to
    /// [`SgcnLayer::forward`].
    pub fn infer(
        &self,
        params: &ParamSet,
        ctx: &SignedGraphContext,
        h_balanced: &Matrix,
        h_unbalanced: &Matrix,
        pool: &mut ScratchPool,
    ) -> Result<(Matrix, Matrix), TensorError> {
        let n = h_balanced.rows();
        let d = h_balanced.cols();

        // Balanced update: synergy neighbours' balanced + antagonism
        // neighbours' unbalanced + own balanced state (Eq. 2).
        let mut pos_agg = pool.take(n, d);
        ctx.positive_mean_adjacency
            .matmul_dense_into(&mut pos_agg, h_balanced)?;
        let mut neg_agg = pool.take(n, d);
        ctx.negative_mean_adjacency
            .matmul_dense_into(&mut neg_agg, h_unbalanced)?;
        let mut cat = pool.take(n, 3 * d);
        concat3_into(&mut cat, &pos_agg, &neg_agg, h_balanced);
        let mut new_balanced = pool.take(n, self.out_dim);
        fused_linear_into(
            &mut new_balanced,
            &cat,
            params.get(self.w_balanced),
            params.get(self.b_balanced),
            ActivationKind::Tanh,
        )?;

        // Unbalanced update (Eq. 3), reusing the aggregation buffers.
        ctx.positive_mean_adjacency
            .matmul_dense_into(&mut pos_agg, h_unbalanced)?;
        ctx.negative_mean_adjacency
            .matmul_dense_into(&mut neg_agg, h_balanced)?;
        concat3_into(&mut cat, &pos_agg, &neg_agg, h_unbalanced);
        let mut new_unbalanced = pool.take(n, self.out_dim);
        fused_linear_into(
            &mut new_unbalanced,
            &cat,
            params.get(self.w_unbalanced),
            params.get(self.b_unbalanced),
            ActivationKind::Tanh,
        )?;

        pool.recycle(pos_agg);
        pool.recycle(neg_agg);
        pool.recycle(cat);
        Ok((new_balanced, new_unbalanced))
    }

    /// Tape-free counterpart of [`SgcnLayer::combine`] (Eq. 4):
    /// `z = [h_B, h_U]`.
    pub fn combine_inference(
        balanced: &Matrix,
        unbalanced: &Matrix,
    ) -> Result<Matrix, TensorError> {
        balanced.concat_cols(unbalanced)
    }
}
