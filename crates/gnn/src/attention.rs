//! Attention-based signed graph layers: SiGAT (Huang et al., ICANN 2019)
//! and SNEA (Li et al., AAAI 2020), the remaining DDIGCN backbones of the
//! paper's backbone comparison (Table I).
//!
//! Both layers compute per-edge attention logits from the source and
//! destination representations, normalise them with a softmax over each
//! destination node's incoming edges, and aggregate source features with the
//! attention weights. SiGAT runs two independent attention heads — one over
//! synergistic edges, one over antagonistic edges — and concatenates their
//! outputs; SNEA uses a single signed attention where the edge sign
//! modulates the aggregated message.

use std::rc::Rc;

use rand::Rng;

use dssddi_tensor::{init, Binder, Matrix, ParamId, ParamSet, Tape, TensorError, Var};

use crate::context::SignedGraphContext;

/// Builds directed edge lists (both directions + self loops) restricted to
/// one sign from the shared context.
fn directed_edges_of_sign(
    ctx: &SignedGraphContext,
    positive: bool,
) -> (Rc<Vec<(usize, usize)>>, Rc<Vec<usize>>) {
    let undirected = if positive {
        &ctx.positive_edges
    } else {
        &ctx.negative_edges
    };
    let mut edges = Vec::with_capacity(undirected.len() * 2 + ctx.n);
    for &(u, v) in undirected {
        edges.push((u, v));
        edges.push((v, u));
    }
    for i in 0..ctx.n {
        edges.push((i, i));
    }
    let segments: Vec<usize> = edges.iter().map(|&(_, dst)| dst).collect();
    (Rc::new(edges), Rc::new(segments))
}

/// One graph-attention head over a fixed directed edge list.
#[derive(Debug, Clone)]
struct AttentionHead {
    w: ParamId,
    attn: ParamId,
}

impl AttentionHead {
    fn new(
        name: &str,
        in_dim: usize,
        out_dim: usize,
        params: &mut ParamSet,
        rng: &mut impl Rng,
    ) -> Self {
        let w = params.add(
            format!("{name}.w"),
            init::xavier_uniform(in_dim, out_dim, rng),
        );
        let attn = params.add(
            format!("{name}.attn"),
            init::xavier_uniform(2 * out_dim, 1, rng),
        );
        Self { w, attn }
    }

    fn forward(
        &self,
        tape: &mut Tape,
        params: &ParamSet,
        binder: &mut Binder,
        edges: &Rc<Vec<(usize, usize)>>,
        segments: &Rc<Vec<usize>>,
        n_nodes: usize,
        x: Var,
    ) -> Result<Var, TensorError> {
        let w = binder.bind(tape, params, self.w);
        let h = tape.matmul(x, w)?;
        if edges.is_empty() {
            // Graph with no edges of this sign: return transformed features.
            return Ok(h);
        }
        let srcs: Vec<usize> = edges.iter().map(|&(s, _)| s).collect();
        let dsts: Vec<usize> = edges.iter().map(|&(_, d)| d).collect();
        let h_src = tape.select_rows(h, &srcs)?;
        let h_dst = tape.select_rows(h, &dsts)?;
        let pair = tape.concat_cols(h_src, h_dst)?;
        let attn = binder.bind(tape, params, self.attn);
        let logits = tape.matmul(pair, attn)?;
        let logits = tape.leaky_relu(logits, 0.2);
        let alpha = tape.segment_softmax(logits, segments)?;
        tape.spmm_edge_weighted(edges, alpha, h, n_nodes)
    }
}

/// Signed Graph Attention layer (SiGAT): independent attention over the
/// synergistic and antagonistic sub-graphs, outputs concatenated.
#[derive(Debug, Clone)]
pub struct SigatLayer {
    positive_head: AttentionHead,
    negative_head: AttentionHead,
    out_dim: usize,
}

impl SigatLayer {
    /// Creates a SiGAT layer; the concatenated output has `2 * out_dim` columns.
    pub fn new(
        name: &str,
        in_dim: usize,
        out_dim: usize,
        params: &mut ParamSet,
        rng: &mut impl Rng,
    ) -> Self {
        Self {
            positive_head: AttentionHead::new(&format!("{name}.pos"), in_dim, out_dim, params, rng),
            negative_head: AttentionHead::new(&format!("{name}.neg"), in_dim, out_dim, params, rng),
            out_dim,
        }
    }

    /// Output dimension (twice the per-head dimension).
    pub fn output_dim(&self) -> usize {
        2 * self.out_dim
    }

    /// Applies the layer to node features `x`.
    pub fn forward(
        &self,
        tape: &mut Tape,
        params: &ParamSet,
        binder: &mut Binder,
        ctx: &SignedGraphContext,
        x: Var,
    ) -> Result<Var, TensorError> {
        let (pos_edges, pos_segments) = directed_edges_of_sign(ctx, true);
        let (neg_edges, neg_segments) = directed_edges_of_sign(ctx, false);
        let pos = self.positive_head.forward(
            tape,
            params,
            binder,
            &pos_edges,
            &pos_segments,
            ctx.n,
            x,
        )?;
        let neg = self.negative_head.forward(
            tape,
            params,
            binder,
            &neg_edges,
            &neg_segments,
            ctx.n,
            x,
        )?;
        let cat = tape.concat_cols(pos, neg)?;
        Ok(tape.tanh(cat))
    }
}

/// Signed Network Embedding via Attention (SNEA): a single attention over
/// all interacting edges where the edge sign scales the message, so
/// antagonistic neighbours push representations apart.
#[derive(Debug, Clone)]
pub struct SneaLayer {
    w: ParamId,
    attn: ParamId,
    out_dim: usize,
}

impl SneaLayer {
    /// Creates a SNEA layer mapping `in_dim` to `out_dim`.
    pub fn new(
        name: &str,
        in_dim: usize,
        out_dim: usize,
        params: &mut ParamSet,
        rng: &mut impl Rng,
    ) -> Self {
        let w = params.add(
            format!("{name}.w"),
            init::xavier_uniform(in_dim, out_dim, rng),
        );
        let attn = params.add(
            format!("{name}.attn"),
            init::xavier_uniform(2 * out_dim, 1, rng),
        );
        Self { w, attn, out_dim }
    }

    /// Output dimension.
    pub fn output_dim(&self) -> usize {
        self.out_dim
    }

    /// Applies the layer to node features `x`.
    pub fn forward(
        &self,
        tape: &mut Tape,
        params: &ParamSet,
        binder: &mut Binder,
        ctx: &SignedGraphContext,
        x: Var,
    ) -> Result<Var, TensorError> {
        let w = binder.bind(tape, params, self.w);
        let h = tape.matmul(x, w)?;
        if ctx.directed_edges.is_empty() {
            return Ok(tape.tanh(h));
        }
        let srcs: Vec<usize> = ctx.directed_edges.iter().map(|&(s, _)| s).collect();
        let dsts: Vec<usize> = ctx.directed_edges.iter().map(|&(_, d)| d).collect();
        let h_src = tape.select_rows(h, &srcs)?;
        let h_dst = tape.select_rows(h, &dsts)?;
        let pair = tape.concat_cols(h_src, h_dst)?;
        let attn = binder.bind(tape, params, self.attn);
        let logits = tape.matmul(pair, attn)?;
        let logits = tape.leaky_relu(logits, 0.2);
        let alpha = tape.segment_softmax(logits, &ctx.edge_segments)?;
        // The edge sign modulates the attention weight: antagonistic
        // neighbours contribute negatively.
        let signs = tape.constant(Matrix::from_vec(
            ctx.edge_signs.len(),
            1,
            ctx.edge_signs.clone(),
        )?);
        let signed_alpha = tape.mul(alpha, signs)?;
        let aggregated = tape.spmm_edge_weighted(&ctx.directed_edges, signed_alpha, h, ctx.n)?;
        Ok(tape.tanh(aggregated))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dssddi_graph::{Interaction, SignedGraph};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ctx() -> SignedGraphContext {
        let mut g = SignedGraph::new(5);
        g.add_interaction(0, 1, Interaction::Synergistic).unwrap();
        g.add_interaction(1, 2, Interaction::Antagonistic).unwrap();
        g.add_interaction(2, 3, Interaction::Synergistic).unwrap();
        g.add_interaction(3, 4, Interaction::Antagonistic).unwrap();
        SignedGraphContext::new(&g).unwrap()
    }

    #[test]
    fn sigat_forward_shape_and_gradients() {
        let ctx = ctx();
        let mut params = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(0);
        let layer = SigatLayer::new("sigat", 5, 6, &mut params, &mut rng);
        assert_eq!(layer.output_dim(), 12);

        let mut tape = Tape::new();
        let mut binder = Binder::new();
        let x = tape.constant(Matrix::identity(5));
        let z = layer
            .forward(&mut tape, &params, &mut binder, &ctx, x)
            .unwrap();
        assert_eq!(tape.value(z).shape(), (5, 12));
        let loss = tape.mean_all(z);
        tape.backward(loss).unwrap();
        assert!(binder.grad_norm(&tape) > 0.0);
    }

    #[test]
    fn snea_forward_shape_and_gradients() {
        let ctx = ctx();
        let mut params = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(1);
        let layer = SneaLayer::new("snea", 5, 7, &mut params, &mut rng);
        assert_eq!(layer.output_dim(), 7);

        let mut tape = Tape::new();
        let mut binder = Binder::new();
        let x = tape.constant(Matrix::identity(5));
        let z = layer
            .forward(&mut tape, &params, &mut binder, &ctx, x)
            .unwrap();
        assert_eq!(tape.value(z).shape(), (5, 7));
        assert!(tape.value(z).all_finite());
        let loss = tape.mean_all(z);
        tape.backward(loss).unwrap();
        assert!(binder.grad_norm(&tape) > 0.0);
    }

    #[test]
    fn attention_layers_handle_edgeless_graphs() {
        let g = SignedGraph::new(3);
        let ctx = SignedGraphContext::new(&g).unwrap();
        let mut params = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(2);
        let sigat = SigatLayer::new("sigat", 3, 4, &mut params, &mut rng);
        let snea = SneaLayer::new("snea", 3, 4, &mut params, &mut rng);
        let mut tape = Tape::new();
        let mut binder = Binder::new();
        let x = tape.constant(Matrix::identity(3));
        let a = sigat
            .forward(&mut tape, &params, &mut binder, &ctx, x)
            .unwrap();
        let b = snea
            .forward(&mut tape, &params, &mut binder, &ctx, x)
            .unwrap();
        assert!(tape.value(a).all_finite());
        assert!(tape.value(b).all_finite());
    }

    #[test]
    fn attention_weights_differ_across_nodes_with_different_neighbourhoods() {
        let ctx = ctx();
        let mut params = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(3);
        let layer = SneaLayer::new("snea", 5, 5, &mut params, &mut rng);
        let mut tape = Tape::new();
        let mut binder = Binder::new();
        let x = tape.constant(Matrix::identity(5));
        let z = layer
            .forward(&mut tape, &params, &mut binder, &ctx, x)
            .unwrap();
        let zv = tape.value(z);
        // Node 0 (one synergistic neighbour) and node 4 (one antagonistic
        // neighbour) should not produce identical embeddings.
        let diff: f32 = zv
            .row(0)
            .iter()
            .zip(zv.row(4))
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(diff > 1e-5);
    }
}
