//! The tape-free inference path must be *bit-identical* to the taped
//! forward passes: the serving fast path (`dssddi_core`) relies on it, and
//! any drift would silently change clinical suggestions between training-
//! time evaluation and deployment.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use dssddi_gnn::{Activation, GcnLayer, Mlp, SgcnLayer, SignedGraphContext};
use dssddi_graph::{Interaction, SignedGraph};
use dssddi_tensor::{Binder, CsrMatrix, Matrix, ParamSet, ScratchPool, Tape};

const ACTIVATIONS: [Activation; 5] = [
    Activation::Relu,
    Activation::LeakyRelu,
    Activation::Tanh,
    Activation::Sigmoid,
    Activation::Identity,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `Mlp::infer` equals `Mlp::forward` bit-for-bit on random shapes,
    /// depths, activations and inputs.
    #[test]
    fn mlp_infer_matches_taped_forward_bitwise(
        seed in 0u64..1_000_000,
        n_rows in 1usize..24,
        d_in in 1usize..12,
        d_hidden in 1usize..16,
        d_out in 1usize..8,
        depth in 0usize..3,
        hidden_act in 0usize..5,
        output_act in 0usize..5,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut dims = vec![d_in];
        for _ in 0..depth {
            dims.push(d_hidden);
        }
        dims.push(d_out);
        let mut params = ParamSet::new();
        let mlp = Mlp::new(
            "m",
            &dims,
            ACTIVATIONS[hidden_act],
            ACTIVATIONS[output_act],
            &mut params,
            &mut rng,
        );
        let x = Matrix::rand_uniform(n_rows, d_in, -2.0, 2.0, &mut rng);

        let mut tape = Tape::new();
        let mut binder = Binder::new();
        let xv = tape.constant(x.clone());
        let taped = mlp.forward(&mut tape, &params, &mut binder, xv).unwrap();

        let mut pool = ScratchPool::new();
        let tape_free = mlp.infer(&params, &x, &mut pool).unwrap();

        prop_assert_eq!(tape.value(taped).shape(), tape_free.shape());
        prop_assert_eq!(
            tape.value(taped).data().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            tape_free.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    /// `GcnLayer::infer` equals `GcnLayer::forward` bit-for-bit.
    #[test]
    fn gcn_infer_matches_taped_forward_bitwise(
        seed in 0u64..1_000_000,
        n_nodes in 2usize..12,
        d_in in 1usize..10,
        d_out in 1usize..10,
        act in 0usize..5,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let edges: Vec<(usize, usize)> = (0..n_nodes - 1).map(|i| (i, i + 1)).collect();
        let adj = std::rc::Rc::new(
            CsrMatrix::normalized_adjacency(n_nodes, &edges, true).unwrap(),
        );
        let mut params = ParamSet::new();
        let layer = GcnLayer::new("g", d_in, d_out, ACTIVATIONS[act], &mut params, &mut rng);
        let x = Matrix::rand_uniform(n_nodes, d_in, -1.5, 1.5, &mut rng);

        let mut tape = Tape::new();
        let mut binder = Binder::new();
        let xv = tape.constant(x.clone());
        let taped = layer
            .forward(&mut tape, &params, &mut binder, &adj, xv)
            .unwrap();

        let mut pool = ScratchPool::new();
        let tape_free = layer.infer(&params, &adj, &x, &mut pool).unwrap();

        prop_assert_eq!(
            tape.value(taped).data().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            tape_free.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    /// `SgcnLayer::infer` (and the combined `z`) equals the taped layer
    /// bit-for-bit on random signed graphs.
    #[test]
    fn sgcn_infer_matches_taped_forward_bitwise(
        seed in 0u64..1_000_000,
        n_nodes in 3usize..10,
        d_in in 1usize..8,
        d_out in 1usize..8,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut graph = SignedGraph::new(n_nodes);
        for u in 0..n_nodes - 1 {
            let sign = if (seed as usize + u).is_multiple_of(2) {
                Interaction::Synergistic
            } else {
                Interaction::Antagonistic
            };
            graph.add_interaction(u, u + 1, sign).unwrap();
        }
        let ctx = SignedGraphContext::new(&graph).unwrap();
        let mut params = ParamSet::new();
        let layer = SgcnLayer::new("s", d_in, d_out, &mut params, &mut rng);
        let h = Matrix::rand_uniform(n_nodes, d_in, -1.0, 1.0, &mut rng);

        let mut tape = Tape::new();
        let mut binder = Binder::new();
        let hv = tape.constant(h.clone());
        let (tb, tu) = layer
            .forward(&mut tape, &params, &mut binder, &ctx, hv, hv)
            .unwrap();
        let tz = SgcnLayer::combine(&mut tape, tb, tu).unwrap();

        let mut pool = ScratchPool::new();
        let (fb, fu) = layer.infer(&params, &ctx, &h, &h, &mut pool).unwrap();
        let fz = SgcnLayer::combine_inference(&fb, &fu).unwrap();

        for (taped, tape_free) in [(tb, &fb), (tu, &fu), (tz, &fz)] {
            prop_assert_eq!(
                tape.value(taped).data().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                tape_free.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            );
        }
    }
}

/// Stacked tape-free MLP inference reuses pool buffers instead of growing
/// the pool per call.
#[test]
fn repeated_inference_is_allocation_free_after_warmup() {
    let mut rng = StdRng::seed_from_u64(3);
    let mut params = ParamSet::new();
    let mlp = Mlp::new(
        "m",
        &[8, 16, 16, 4],
        Activation::Relu,
        Activation::Identity,
        &mut params,
        &mut rng,
    );
    let x = Matrix::rand_uniform(10, 8, -1.0, 1.0, &mut rng);
    let mut pool = ScratchPool::new();
    let first = mlp.infer(&params, &x, &mut pool).unwrap();
    pool.recycle(first);
    let after_warmup = pool.idle_buffers();
    for _ in 0..5 {
        let out = mlp.infer(&params, &x, &mut pool).unwrap();
        pool.recycle(out);
        assert_eq!(pool.idle_buffers(), after_warmup, "pool must not grow");
    }
}
