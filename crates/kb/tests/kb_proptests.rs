//! Property-based coverage of the knowledge-base subsystem: TSV ingestion
//! never panics (malformed rows are typed errors), `DSKB` containers
//! round-trip bit-exactly and reject truncation/bit-flips, and the severity
//! ordering is total.

// Tests and examples may panic freely; the workspace-level panic-policy
// denies target library and binary code.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use dssddi_data::DrugRegistry;
use dssddi_kb::{EvidenceLevel, KbError, KbFact, KnowledgeBase, Severity};
use proptest::prelude::*;

fn arb_severity() -> impl Strategy<Value = Severity> {
    (0usize..4).prop_map(|i| Severity::ALL[i])
}

fn arb_evidence() -> impl Strategy<Value = EvidenceLevel> {
    (0usize..4).prop_map(|i| EvidenceLevel::ALL[i])
}

/// Free text with multibyte characters, quotes and separators-adjacent
/// bytes — everything a mechanism/management cell may carry.
fn arb_text() -> impl Strategy<Value = String> {
    proptest::collection::vec(0usize..12, 0..12).prop_map(|picks| {
        const ALPHABET: [&str; 12] = ["a", "B", "7", " ", "ü", "血", "-", "_", "\"", "'", ";", "é"];
        picks.iter().map(|&i| ALPHABET[i]).collect()
    })
}

fn arb_fact() -> impl Strategy<Value = KbFact> {
    (arb_severity(), arb_evidence(), arb_text(), arb_text()).prop_map(
        |(severity, evidence, mechanism, management)| KbFact {
            severity,
            evidence,
            mechanism,
            management,
        },
    )
}

/// A populated KB over the standard registry with random facts and a
/// version history.
fn arb_kb() -> impl Strategy<Value = KnowledgeBase> {
    proptest::collection::vec((0usize..86, 0usize..86, arb_fact()), 0..20).prop_map(|facts| {
        let registry = DrugRegistry::standard();
        let mut kb = KnowledgeBase::new(&registry);
        for (a, b, fact) in facts {
            if a != b {
                kb.upsert(a, b, fact).expect("in-range distinct pair");
            }
        }
        kb
    })
}

/// Raw text lines: arbitrary cells joined by tabs, sometimes with the
/// wrong cell count, unknown severities, unresolvable drugs.
fn arb_tsv_source() -> impl Strategy<Value = String> {
    proptest::collection::vec(proptest::collection::vec(arb_text(), 0..8), 0..8).prop_map(|lines| {
        lines
            .iter()
            .map(|cells| cells.join("\t"))
            .collect::<Vec<_>>()
            .join("\n")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary text fed to the TSV parser is a typed result, never a
    /// panic — and a failed ingest never mutates the KB.
    #[test]
    fn tsv_ingestion_never_panics(source in arb_tsv_source()) {
        let registry = DrugRegistry::standard();
        let mut kb = KnowledgeBase::new(&registry);
        match kb.ingest_tsv(&source, &registry) {
            Ok(_) => {}
            Err(
                KbError::Parse { line, .. }
                | KbError::UnknownDrug { line, .. }
                | KbError::SelfInteraction { line, .. },
            ) => {
                prop_assert!(line >= 1, "error lines are 1-based");
                prop_assert!(kb.is_empty(), "failed ingest must not mutate");
                prop_assert_eq!(kb.version(), 0);
            }
            Err(other) => prop_assert!(false, "unexpected error class: {other:?}"),
        }
    }

    /// Well-formed rows ingest, and the ingested facts read back exactly.
    #[test]
    fn well_formed_rows_ingest_and_read_back(
        pairs in proptest::collection::vec(
            (0usize..86, 0usize..86, arb_severity(), arb_evidence()),
            1..10,
        ),
    ) {
        let registry = DrugRegistry::standard();
        let mut kb = KnowledgeBase::new(&registry);
        let mut rows = String::from("# generated\n");
        let mut expected: std::collections::BTreeMap<(usize, usize), Severity> =
            std::collections::BTreeMap::new();
        for (a, b, severity, evidence) in &pairs {
            if a == b {
                continue;
            }
            rows.push_str(&format!(
                "DID {a}\t{b}\t{}\t{}\tmech\thint\n",
                severity.name().to_uppercase(),
                evidence.name(),
            ));
            expected.insert((*a.min(b), *a.max(b)), *severity);
        }
        let summary = kb.ingest_tsv(&rows, &registry).expect("well-formed rows ingest");
        prop_assert_eq!(summary.added, expected.len());
        prop_assert_eq!(kb.len(), expected.len());
        prop_assert_eq!(kb.version(), u64::from(!expected.is_empty()));
        for (&(a, b), &severity) in &expected {
            let fact = kb.lookup(a, b).expect("ingested fact present");
            prop_assert_eq!(fact.severity, severity);
            prop_assert_eq!(fact.management.as_str(), "hint");
        }
    }

    /// `DSKB` containers round-trip exactly: facts, version and formulary
    /// identity all survive, byte-for-byte re-encoding included.
    #[test]
    fn dskb_containers_round_trip_bit_exactly(kb in arb_kb()) {
        let bytes = kb.to_container_bytes();
        let back = KnowledgeBase::from_container_bytes(&bytes).expect("fresh container decodes");
        prop_assert_eq!(&back, &kb);
        prop_assert_eq!(back.to_container_bytes(), bytes);
    }

    /// Truncating a container anywhere is a typed error, never a panic.
    #[test]
    fn truncated_containers_are_typed_errors(
        kb in arb_kb(),
        cut_at in any::<proptest::sample::Index>(),
    ) {
        let bytes = kb.to_container_bytes();
        let cut = cut_at.index(bytes.len());
        prop_assert!(KnowledgeBase::from_container_bytes(&bytes[..cut]).is_err());
    }

    /// Flipping any single bit of a container is a typed error: header
    /// damage fails the header checks, payload damage fails the CRC, CRC
    /// damage fails the comparison. Accepting damaged bytes is the one
    /// forbidden outcome.
    #[test]
    fn bit_flipped_containers_are_typed_errors(
        kb in arb_kb(),
        byte_at in any::<proptest::sample::Index>(),
        bit in 0usize..8,
    ) {
        let bytes = kb.to_container_bytes();
        let index = byte_at.index(bytes.len());
        let mut damaged = bytes.clone();
        damaged[index] ^= 1 << bit;
        prop_assert!(
            KnowledgeBase::from_container_bytes(&damaged).is_err(),
            "flip at byte {} bit {} was absorbed",
            index,
            bit
        );
    }

    /// The severity order is total and agrees with the byte encoding:
    /// antisymmetric, transitive, and every pair is comparable.
    #[test]
    fn severity_ordering_is_total(
        a in arb_severity(),
        b in arb_severity(),
        c in arb_severity(),
    ) {
        // Comparability + antisymmetry.
        prop_assert_eq!(a.cmp(&b), a.to_u8().cmp(&b.to_u8()));
        prop_assert_eq!(a.cmp(&b), b.cmp(&a).reverse());
        prop_assert_eq!(a == b, a.to_u8() == b.to_u8());
        // Transitivity.
        if a <= b && b <= c {
            prop_assert!(a <= c);
        }
        // Round trips through every representation preserve the order.
        prop_assert_eq!(Severity::from_u8(a.to_u8()), Some(a));
        prop_assert_eq!(Severity::parse(a.name()), Some(a));
    }
}
