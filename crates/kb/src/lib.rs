//! # dssddi-kb
//!
//! The clinical knowledge-base subsystem of the DSSDDI reproduction.
//!
//! The paper's decision support system critiques prescriptions against the
//! signed drug-drug interaction graph, but an edge only says *that* two
//! drugs interact. A deployable critiquing system needs a clinical layer on
//! top: how **severe** is the interaction, how well **evidenced**, and what
//! should the prescriber **do** about it. This crate is that layer:
//!
//! * [`Severity`] — the four-grade ladder (`Minor` → `Moderate` → `Major` →
//!   `Contraindicated`) with a total order,
//! * [`EvidenceLevel`] — how established a fact is,
//! * [`AlertPolicy`] — the per-request filter deciding which findings a
//!   critique reports (minimum severity; contraindicated findings always
//!   fire),
//! * [`KnowledgeBase`] — a versioned, registry-aware store of
//!   severity-graded facts keyed by canonical drug pairs, ingested from a
//!   TSV source format ([`KnowledgeBase::ingest_tsv`]) or seeded from the
//!   DDI graph itself ([`KnowledgeBase::from_ddi_graph`]; unknown-severity
//!   antagonistic edges default to `Moderate`),
//! * the `DSKB` container ([`KnowledgeBase::save`] /
//!   [`KnowledgeBase::load`]) — the same CRC-framed layout as `DSSD` model
//!   files and `DSWR` wire frames, under its own magic bytes, so a KB can
//!   ship to serving hosts and hot-reload under a live routing key,
//! * [`KbDiff`] — a typed difference between two KB versions, for operators
//!   reviewing an update before reloading it.
//!
//! ```
//! use dssddi_data::DrugRegistry;
//! use dssddi_kb::{AlertPolicy, KnowledgeBase, Severity};
//!
//! let registry = DrugRegistry::standard();
//! let mut kb = KnowledgeBase::new(&registry);
//! kb.ingest_tsv(
//!     "Gabapentin\tIsosorbide Mononitrate\tmajor\tstudy\tadditive hypotension\treview dosing\n",
//!     &registry,
//! )?;
//! let gabapentin = registry.resolve("Gabapentin").unwrap();
//! let mononitrate = registry.resolve("Isosorbide Mononitrate").unwrap();
//! let fact = kb.lookup(gabapentin, mononitrate).unwrap();
//! assert_eq!(fact.severity, Severity::Major);
//! // An outpatient policy mutes Minor/Moderate chatter but reports this.
//! assert!(AlertPolicy::at_least(Severity::Major).reports(fact.severity));
//! # Ok::<(), dssddi_kb::KbError>(())
//! ```

#![warn(missing_docs)]
// The KB is serving-path input: damaged containers, malformed TSV and
// foreign registries are routine and must come back as typed errors. The
// `unwrap_used`/`expect_used` denies are inherited from `[workspace.lints]`.

use std::fmt;

use dssddi_tensor::serde::SerdeError;

pub mod base;
pub mod severity;

pub use base::{
    IngestSummary, KbChange, KbDiff, KbFact, KbInfo, KnowledgeBase, KB_FORMAT_VERSION, KB_MAGIC,
    MAX_KB_PAYLOAD,
};
pub use severity::{AlertPolicy, EvidenceLevel, Severity};

/// Errors produced while building, ingesting, persisting or comparing
/// knowledge bases.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum KbError {
    /// A TSV row could not be parsed.
    Parse {
        /// 1-based line number of the offending row.
        line: usize,
        /// Description of the problem.
        what: String,
    },
    /// A TSV drug cell did not resolve against the registry.
    UnknownDrug {
        /// 1-based line number of the offending row.
        line: usize,
        /// The cell content that failed to resolve.
        query: String,
    },
    /// A fact named the same drug on both sides.
    SelfInteraction {
        /// 1-based line number (0 for programmatic [`KnowledgeBase::upsert`]).
        line: usize,
        /// The drug's DID.
        drug: usize,
    },
    /// The KB and the registry (or two KBs) describe different formularies.
    RegistryMismatch {
        /// Description of the mismatch.
        what: String,
    },
    /// A `DSKB` container failed validation (bad magic, version mismatch,
    /// truncation, CRC mismatch, corrupt field).
    Serde(SerdeError),
    /// A filesystem operation failed.
    Io {
        /// Description including the underlying error.
        what: String,
    },
}

impl fmt::Display for KbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KbError::Parse { line, what } => write!(f, "kb source line {line}: {what}"),
            KbError::UnknownDrug { line, query } => {
                write!(f, "kb source line {line}: unknown drug {query:?}")
            }
            KbError::SelfInteraction { line, drug } => {
                if *line == 0 {
                    write!(f, "drug DID {drug} cannot interact with itself")
                } else {
                    write!(
                        f,
                        "kb source line {line}: drug DID {drug} cannot interact with itself"
                    )
                }
            }
            KbError::RegistryMismatch { what } => write!(f, "formulary mismatch: {what}"),
            KbError::Serde(e) => write!(f, "kb container error: {e}"),
            KbError::Io { what } => write!(f, "kb i/o error: {what}"),
        }
    }
}

impl std::error::Error for KbError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            KbError::Serde(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SerdeError> for KbError {
    fn from(e: SerdeError) -> Self {
        KbError::Serde(e)
    }
}
