//! The clinical severity model: interaction grades, evidence levels and the
//! alert policy that gates what a critique reports.
//!
//! Real critiquing systems grade every interaction and let the deployment
//! decide how much to surface — an ICU formulary wants every `Minor` footnote,
//! a busy outpatient clinic wants `Major` and up, and *everyone* wants
//! contraindicated combinations to fire unconditionally. [`Severity`] is the
//! grade, [`EvidenceLevel`] records how well-established the fact is, and
//! [`AlertPolicy`] is the per-request filter.

use std::fmt;

use dssddi_graph::Interaction;

/// Clinical severity of a drug-drug interaction, ordered from least to most
/// severe. The ordering is total: every pair of severities compares, and the
/// alert policy's threshold test relies on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Documented but clinically insignificant; no action needed.
    Minor,
    /// May require monitoring or dose adjustment. The default grade for
    /// interactions of unknown severity.
    Moderate,
    /// Clinically significant; use only when benefits outweigh risks.
    Major,
    /// The combination must not be prescribed.
    Contraindicated,
}

impl Severity {
    /// Every severity, in ascending order.
    pub const ALL: [Severity; 4] = [
        Severity::Minor,
        Severity::Moderate,
        Severity::Major,
        Severity::Contraindicated,
    ];

    /// Canonical lower-case name (the TSV source format's spelling).
    pub fn name(self) -> &'static str {
        match self {
            Severity::Minor => "minor",
            Severity::Moderate => "moderate",
            Severity::Major => "major",
            Severity::Contraindicated => "contraindicated",
        }
    }

    /// Stable wire/container encoding.
    pub fn to_u8(self) -> u8 {
        match self {
            Severity::Minor => 0,
            Severity::Moderate => 1,
            Severity::Major => 2,
            Severity::Contraindicated => 3,
        }
    }

    /// Decodes [`Severity::to_u8`]; unknown bytes are `None` so decoders can
    /// produce their own typed error.
    pub fn from_u8(tag: u8) -> Option<Self> {
        Some(match tag {
            0 => Severity::Minor,
            1 => Severity::Moderate,
            2 => Severity::Major,
            3 => Severity::Contraindicated,
            _ => return None,
        })
    }

    /// Parses a TSV severity cell (case-insensitive, surrounding whitespace
    /// ignored).
    pub fn parse(cell: &str) -> Option<Self> {
        let cell = cell.trim();
        Severity::ALL
            .into_iter()
            .find(|s| s.name().eq_ignore_ascii_case(cell))
    }

    /// The grade assumed for an interaction the knowledge base has no fact
    /// for: antagonistic edges default to [`Severity::Moderate`] (unknown
    /// severity is not license to ignore them), synergistic and explicit
    /// no-interaction edges to [`Severity::Minor`].
    pub fn default_for(interaction: Interaction) -> Self {
        match interaction {
            Interaction::Antagonistic => Severity::Moderate,
            Interaction::Synergistic | Interaction::None => Severity::Minor,
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// How well-established a knowledge-base fact is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EvidenceLevel {
    /// Predicted from pharmacology or a model; not clinically observed.
    /// The grade for facts ingested from the DDI graph.
    Theoretical,
    /// Reported in isolated case reports.
    CaseReport,
    /// Demonstrated in a controlled study.
    Study,
    /// Established, guideline-level knowledge.
    Established,
}

impl EvidenceLevel {
    /// Every evidence level, in ascending order of strength.
    pub const ALL: [EvidenceLevel; 4] = [
        EvidenceLevel::Theoretical,
        EvidenceLevel::CaseReport,
        EvidenceLevel::Study,
        EvidenceLevel::Established,
    ];

    /// Canonical lower-case name (the TSV source format's spelling).
    pub fn name(self) -> &'static str {
        match self {
            EvidenceLevel::Theoretical => "theoretical",
            EvidenceLevel::CaseReport => "case-report",
            EvidenceLevel::Study => "study",
            EvidenceLevel::Established => "established",
        }
    }

    /// Stable wire/container encoding.
    pub fn to_u8(self) -> u8 {
        match self {
            EvidenceLevel::Theoretical => 0,
            EvidenceLevel::CaseReport => 1,
            EvidenceLevel::Study => 2,
            EvidenceLevel::Established => 3,
        }
    }

    /// Decodes [`EvidenceLevel::to_u8`]; unknown bytes are `None`.
    pub fn from_u8(tag: u8) -> Option<Self> {
        Some(match tag {
            0 => EvidenceLevel::Theoretical,
            1 => EvidenceLevel::CaseReport,
            2 => EvidenceLevel::Study,
            3 => EvidenceLevel::Established,
            _ => return None,
        })
    }

    /// Parses a TSV evidence cell (case-insensitive, surrounding whitespace
    /// ignored).
    pub fn parse(cell: &str) -> Option<Self> {
        let cell = cell.trim();
        EvidenceLevel::ALL
            .into_iter()
            .find(|e| e.name().eq_ignore_ascii_case(cell))
    }
}

impl fmt::Display for EvidenceLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// What a prescription critique reports, decided per request.
///
/// A finding is reported when its severity reaches `min_severity`.
/// Independently of the threshold, `contraindicated_always_fires` (on by
/// default) guarantees [`Severity::Contraindicated`] findings are *never*
/// suppressed — with today's four-grade ladder the threshold alone cannot
/// hide them, but the flag keeps that clinical invariant explicit and
/// binding for any future policy knob (muting, per-ward overrides) that
/// could otherwise swallow a hard stop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AlertPolicy {
    /// Minimum severity a finding must reach to appear in the report.
    pub min_severity: Severity,
    /// Report [`Severity::Contraindicated`] findings even when another
    /// policy setting would suppress them.
    pub contraindicated_always_fires: bool,
}

impl Default for AlertPolicy {
    /// Report everything — the conservative clinical default.
    fn default() -> Self {
        AlertPolicy {
            min_severity: Severity::Minor,
            contraindicated_always_fires: true,
        }
    }
}

impl AlertPolicy {
    /// A policy reporting findings of `min_severity` and up (contraindicated
    /// findings always fire).
    pub fn at_least(min_severity: Severity) -> Self {
        AlertPolicy {
            min_severity,
            ..Default::default()
        }
    }

    /// True when a finding of this severity must appear in the report.
    pub fn reports(&self, severity: Severity) -> bool {
        if self.contraindicated_always_fires && severity == Severity::Contraindicated {
            return true;
        }
        severity >= self.min_severity
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // tests may panic freely
mod tests {
    use super::*;

    #[test]
    fn severity_orders_minor_to_contraindicated() {
        for pair in Severity::ALL.windows(2) {
            assert!(pair[0] < pair[1]);
        }
        assert!(Severity::Contraindicated > Severity::Minor);
    }

    #[test]
    fn severity_and_evidence_round_trip_names_and_bytes() {
        for s in Severity::ALL {
            assert_eq!(Severity::parse(s.name()), Some(s));
            assert_eq!(Severity::parse(&s.name().to_uppercase()), Some(s));
            assert_eq!(Severity::from_u8(s.to_u8()), Some(s));
        }
        assert_eq!(Severity::parse("catastrophic"), None);
        assert_eq!(Severity::from_u8(200), None);
        for e in EvidenceLevel::ALL {
            assert_eq!(EvidenceLevel::parse(e.name()), Some(e));
            assert_eq!(EvidenceLevel::from_u8(e.to_u8()), Some(e));
        }
        assert_eq!(EvidenceLevel::parse("vibes"), None);
        assert_eq!(EvidenceLevel::from_u8(200), None);
    }

    #[test]
    fn default_grades_follow_the_interaction_sign() {
        assert_eq!(
            Severity::default_for(Interaction::Antagonistic),
            Severity::Moderate
        );
        assert_eq!(
            Severity::default_for(Interaction::Synergistic),
            Severity::Minor
        );
        assert_eq!(Severity::default_for(Interaction::None), Severity::Minor);
    }

    #[test]
    fn alert_policy_thresholds_and_contraindicated_guarantee() {
        let default = AlertPolicy::default();
        for s in Severity::ALL {
            assert!(default.reports(s), "default policy reports everything");
        }
        let major_up = AlertPolicy::at_least(Severity::Major);
        assert!(!major_up.reports(Severity::Minor));
        assert!(!major_up.reports(Severity::Moderate));
        assert!(major_up.reports(Severity::Major));
        assert!(major_up.reports(Severity::Contraindicated));
        // Even with the guarantee flag off, the threshold still admits
        // contraindicated findings (they top the ladder) ...
        let no_guarantee = AlertPolicy {
            min_severity: Severity::Contraindicated,
            contraindicated_always_fires: false,
        };
        assert!(no_guarantee.reports(Severity::Contraindicated));
        assert!(!no_guarantee.reports(Severity::Major));
        // ... and with it on, contraindicated findings fire under every
        // threshold, which is the invariant the flag exists to pin down.
        for min in Severity::ALL {
            assert!(AlertPolicy::at_least(min).reports(Severity::Contraindicated));
        }
    }
}
