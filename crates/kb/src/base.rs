//! The versioned, registry-aware knowledge base and its `DSKB` container.

use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;

use dssddi_data::DrugRegistry;
use dssddi_graph::{Interaction, SignedGraph};
use dssddi_tensor::serde::{
    open_frame, parse_frame_header, seal_frame, ByteReader, ByteWriter, SerdeError,
};

use crate::severity::{EvidenceLevel, Severity};
use crate::KbError;

/// Magic bytes opening every knowledge-base container ("DSsddi KB").
pub const KB_MAGIC: [u8; 4] = *b"DSKB";

/// Current `DSKB` container format version.
pub const KB_FORMAT_VERSION: u16 = 1;

/// Upper bound on a `DSKB` container's declared payload length, enforced
/// before any allocation. A fully dense KB over a 10k-drug formulary with
/// generous free text is still far below this.
pub const MAX_KB_PAYLOAD: usize = 64 << 20;

/// Number of TSV columns in the source format:
/// `drug_a  drug_b  severity  evidence  mechanism  management`.
const TSV_COLUMNS: usize = 6;

/// One severity-graded interaction fact, keyed by a canonical drug pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KbFact {
    /// How severe the interaction is.
    pub severity: Severity,
    /// How well-established the fact is.
    pub evidence: EvidenceLevel,
    /// Free-text mechanism ("additive QT prolongation", ...). May be empty.
    pub mechanism: String,
    /// Free-text management hint shown to the prescriber ("monitor INR",
    /// "separate doses by 4 h", ...). May be empty.
    pub management: String,
}

impl KbFact {
    /// The management hint, with the empty string normalised to `None` —
    /// the single place deciding when a hint is worth surfacing.
    pub fn management_hint(&self) -> Option<&str> {
        (!self.management.is_empty()).then_some(self.management.as_str())
    }
}

/// Counts returned by one ingestion call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IngestSummary {
    /// Pairs the knowledge base had no fact for.
    pub added: usize,
    /// Pairs whose existing fact was overwritten.
    pub updated: usize,
}

/// A summary of one knowledge base: what a gateway advertises about a
/// shard's KB so remote callers can verify versions without pulling facts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KbInfo {
    /// The KB's monotonically increasing version.
    pub version: u64,
    /// Total number of interaction facts.
    pub n_facts: usize,
    /// Facts per severity grade, indexed by [`Severity::to_u8`].
    pub facts_by_severity: [usize; 4],
    /// FNV digest of the formulary the KB grades (see
    /// [`DrugRegistry::digest`]).
    pub registry_digest: u64,
    /// Number of drugs in that formulary.
    pub n_drugs: usize,
}

/// One entry of a [`KbDiff`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KbChange {
    /// The newer KB has a fact the older one lacked.
    Added {
        /// Canonical drug pair (`a < b`).
        pair: (usize, usize),
        /// The new fact.
        fact: KbFact,
    },
    /// The older KB had a fact the newer one dropped.
    Removed {
        /// Canonical drug pair (`a < b`).
        pair: (usize, usize),
        /// The dropped fact.
        fact: KbFact,
    },
    /// Both have a fact for the pair, with different content.
    Changed {
        /// Canonical drug pair (`a < b`).
        pair: (usize, usize),
        /// The older fact.
        old: KbFact,
        /// The newer fact.
        new: KbFact,
    },
}

/// Typed difference between two knowledge-base versions, in canonical pair
/// order — what an operator reviews before hot-reloading a gateway shard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KbDiff {
    /// Version of the older side.
    pub from_version: u64,
    /// Version of the newer side.
    pub to_version: u64,
    /// Every added, removed or changed fact, in canonical pair order.
    pub changes: Vec<KbChange>,
}

impl KbDiff {
    /// True when the two sides hold identical facts.
    pub fn is_empty(&self) -> bool {
        self.changes.is_empty()
    }

    /// `(added, removed, changed)` counts.
    pub fn counts(&self) -> (usize, usize, usize) {
        let mut counts = (0, 0, 0);
        for change in &self.changes {
            match change {
                KbChange::Added { .. } => counts.0 += 1,
                KbChange::Removed { .. } => counts.1 += 1,
                KbChange::Changed { .. } => counts.2 += 1,
            }
        }
        counts
    }
}

impl fmt::Display for KbDiff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (added, removed, changed) = self.counts();
        write!(
            f,
            "kb v{} -> v{}: {added} added, {removed} removed, {changed} changed",
            self.from_version, self.to_version
        )
    }
}

/// A versioned clinical knowledge base of severity-graded drug-drug
/// interaction facts over one formulary.
///
/// Facts are keyed by the canonical (lower DID first) drug pair. The base
/// remembers which [`DrugRegistry`] it grades — digest plus drug count — so
/// a KB built for one formulary cannot be attached to a service holding
/// another. `version` increases by one on every mutating call, giving
/// operators a monotone handle for "is the reload live yet?" checks and for
/// [`KnowledgeBase::diff`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KnowledgeBase {
    n_drugs: usize,
    registry_digest: u64,
    version: u64,
    facts: BTreeMap<(usize, usize), KbFact>,
}

impl KnowledgeBase {
    /// An empty knowledge base (version 0) over a formulary.
    pub fn new(registry: &DrugRegistry) -> Self {
        Self {
            n_drugs: registry.len(),
            registry_digest: registry.digest(),
            version: 0,
            facts: BTreeMap::new(),
        }
    }

    /// Seeds a knowledge base from the signed DDI graph: every synergistic
    /// or antagonistic edge becomes a [`EvidenceLevel::Theoretical`] fact
    /// graded by [`Severity::default_for`] — antagonistic edges of unknown
    /// severity default to [`Severity::Moderate`]. Explicit no-interaction
    /// edges are skipped. The result is version 1 (one mutation on top of
    /// the empty base).
    pub fn from_ddi_graph(graph: &SignedGraph, registry: &DrugRegistry) -> Result<Self, KbError> {
        if graph.node_count() != registry.len() {
            return Err(KbError::RegistryMismatch {
                what: format!(
                    "DDI graph has {} nodes but the registry has {} drugs",
                    graph.node_count(),
                    registry.len()
                ),
            });
        }
        let mut kb = Self::new(registry);
        for (u, v, interaction) in graph.interactions() {
            if interaction == Interaction::None {
                continue;
            }
            kb.facts.insert(
                (u.min(v), u.max(v)),
                KbFact {
                    severity: Severity::default_for(interaction),
                    evidence: EvidenceLevel::Theoretical,
                    mechanism: String::new(),
                    management: String::new(),
                },
            );
        }
        kb.version = 1;
        Ok(kb)
    }

    /// The KB's monotonically increasing version.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Number of interaction facts.
    pub fn len(&self) -> usize {
        self.facts.len()
    }

    /// True when the KB holds no fact.
    pub fn is_empty(&self) -> bool {
        self.facts.is_empty()
    }

    /// FNV digest of the formulary this KB grades.
    pub fn registry_digest(&self) -> u64 {
        self.registry_digest
    }

    /// Number of drugs in that formulary.
    pub fn n_drugs(&self) -> usize {
        self.n_drugs
    }

    /// The fact recorded for a drug pair, in either argument order.
    pub fn lookup(&self, a: usize, b: usize) -> Option<&KbFact> {
        self.facts.get(&(a.min(b), a.max(b)))
    }

    /// Grades one interaction: the recorded fact's severity and management
    /// hint when the KB has one, otherwise the sign-derived default grade
    /// ([`Severity::default_for`]) with no hint.
    pub fn grade(&self, a: usize, b: usize, interaction: Interaction) -> (Severity, Option<&str>) {
        match self.lookup(a, b) {
            Some(fact) => (fact.severity, fact.management_hint()),
            None => (Severity::default_for(interaction), None),
        }
    }

    /// Every fact, in canonical pair order.
    pub fn facts(&self) -> impl Iterator<Item = ((usize, usize), &KbFact)> + '_ {
        self.facts.iter().map(|(&pair, fact)| (pair, fact))
    }

    /// The KB's summary (version, fact counts per severity, formulary
    /// identity).
    pub fn info(&self) -> KbInfo {
        let mut facts_by_severity = [0usize; 4];
        for fact in self.facts.values() {
            facts_by_severity[fact.severity.to_u8() as usize] += 1;
        }
        KbInfo {
            version: self.version,
            n_facts: self.facts.len(),
            facts_by_severity,
            registry_digest: self.registry_digest,
            n_drugs: self.n_drugs,
        }
    }

    /// Inserts or overwrites the fact for one drug pair and bumps the
    /// version. The pair must name two distinct drugs inside the formulary.
    pub fn upsert(&mut self, a: usize, b: usize, fact: KbFact) -> Result<(), KbError> {
        if a == b {
            return Err(KbError::SelfInteraction { line: 0, drug: a });
        }
        if a >= self.n_drugs || b >= self.n_drugs {
            return Err(KbError::RegistryMismatch {
                what: format!(
                    "drug pair ({a}, {b}) falls outside the {}-drug formulary",
                    self.n_drugs
                ),
            });
        }
        self.facts.insert((a.min(b), a.max(b)), fact);
        self.version += 1;
        Ok(())
    }

    /// Ingests the TSV source format, resolving drug references through the
    /// registry and bumping the version once if any row landed.
    ///
    /// One fact per line: `drug_a<TAB>drug_b<TAB>severity<TAB>evidence<TAB>
    /// mechanism<TAB>management` (mechanism and management may be empty;
    /// trailing empty cells may be omitted entirely). Blank lines and lines
    /// starting with `#` are skipped. Drug cells take anything
    /// [`DrugRegistry::resolve`] takes — a name, `"48"` or `"DID 48"`.
    /// Within one file the last fact for a pair wins (facts are ordered
    /// corrections). Every malformed row is a typed [`KbError`] naming its
    /// 1-based line number; parsing never panics.
    pub fn ingest_tsv(
        &mut self,
        source: &str,
        registry: &DrugRegistry,
    ) -> Result<IngestSummary, KbError> {
        if registry.len() != self.n_drugs || registry.digest() != self.registry_digest {
            return Err(KbError::RegistryMismatch {
                what: "the resolving registry is not the formulary this KB was built for"
                    .to_string(),
            });
        }
        // Parse the whole file before touching `self.facts`, so a malformed
        // row cannot leave a half-applied update behind. Staging in a map
        // also collapses repeated pairs (last row wins) before counting, so
        // the summary reflects what actually changed in the KB.
        let mut parsed: BTreeMap<(usize, usize), KbFact> = BTreeMap::new();
        for (idx, raw_line) in source.lines().enumerate() {
            let line = idx + 1;
            let trimmed = raw_line.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            let cells: Vec<&str> = raw_line.split('\t').collect();
            if cells.len() < 4 || cells.len() > TSV_COLUMNS {
                return Err(KbError::Parse {
                    line,
                    what: format!(
                        "expected 4 to {TSV_COLUMNS} tab-separated cells \
                         (drug_a, drug_b, severity, evidence[, mechanism[, management]]), \
                         found {}",
                        cells.len()
                    ),
                });
            }
            let resolve = |cell: &str| -> Result<usize, KbError> {
                registry
                    .resolve(cell.trim())
                    .ok_or_else(|| KbError::UnknownDrug {
                        line,
                        query: cell.trim().to_string(),
                    })
            };
            let a = resolve(cells[0])?;
            let b = resolve(cells[1])?;
            if a == b {
                return Err(KbError::SelfInteraction { line, drug: a });
            }
            let severity = Severity::parse(cells[2]).ok_or_else(|| KbError::Parse {
                line,
                what: format!(
                    "unknown severity {:?} (expected one of: minor, moderate, major, \
                     contraindicated)",
                    cells[2].trim()
                ),
            })?;
            let evidence = EvidenceLevel::parse(cells[3]).ok_or_else(|| KbError::Parse {
                line,
                what: format!(
                    "unknown evidence level {:?} (expected one of: theoretical, case-report, \
                     study, established)",
                    cells[3].trim()
                ),
            })?;
            let mechanism = cells.get(4).map(|c| c.trim()).unwrap_or("").to_string();
            let management = cells.get(5).map(|c| c.trim()).unwrap_or("").to_string();
            parsed.insert(
                (a.min(b), a.max(b)),
                KbFact {
                    severity,
                    evidence,
                    mechanism,
                    management,
                },
            );
        }
        let mut summary = IngestSummary::default();
        for (pair, fact) in parsed {
            if self.facts.insert(pair, fact).is_some() {
                summary.updated += 1;
            } else {
                summary.added += 1;
            }
        }
        if summary.added + summary.updated > 0 {
            self.version += 1;
        }
        Ok(summary)
    }

    /// Typed difference from `self` (the older side) to `newer`, in
    /// canonical pair order. Both sides must grade the same formulary.
    pub fn diff(&self, newer: &KnowledgeBase) -> Result<KbDiff, KbError> {
        if self.registry_digest != newer.registry_digest || self.n_drugs != newer.n_drugs {
            return Err(KbError::RegistryMismatch {
                what: "cannot diff knowledge bases over different formularies".to_string(),
            });
        }
        let mut changes = Vec::new();
        let mut old_iter = self.facts.iter().peekable();
        let mut new_iter = newer.facts.iter().peekable();
        loop {
            match (old_iter.peek(), new_iter.peek()) {
                (Some((&op, old)), Some((&np, _))) if op < np => {
                    changes.push(KbChange::Removed {
                        pair: op,
                        fact: (*old).clone(),
                    });
                    old_iter.next();
                }
                (Some((&op, _)), Some((&np, new))) if np < op => {
                    changes.push(KbChange::Added {
                        pair: np,
                        fact: (*new).clone(),
                    });
                    new_iter.next();
                }
                (Some((&pair, old)), Some((_, new))) => {
                    if *old != *new {
                        changes.push(KbChange::Changed {
                            pair,
                            old: (*old).clone(),
                            new: (*new).clone(),
                        });
                    }
                    old_iter.next();
                    new_iter.next();
                }
                (Some((&pair, old)), None) => {
                    changes.push(KbChange::Removed {
                        pair,
                        fact: (*old).clone(),
                    });
                    old_iter.next();
                }
                (None, Some((&pair, new))) => {
                    changes.push(KbChange::Added {
                        pair,
                        fact: (*new).clone(),
                    });
                    new_iter.next();
                }
                (None, None) => break,
            }
        }
        Ok(KbDiff {
            from_version: self.version,
            to_version: newer.version,
            changes,
        })
    }

    /// Serializes the KB into a complete `DSKB` container (magic, format
    /// version, payload length, payload, CRC-32 — the same frame shape as
    /// `DSSD` model files and `DSWR` wire frames, under its own magic).
    pub fn to_container_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_usize(self.n_drugs);
        w.put_u64(self.registry_digest);
        w.put_u64(self.version);
        w.put_usize(self.facts.len());
        for ((a, b), fact) in &self.facts {
            w.put_usize(*a);
            w.put_usize(*b);
            w.put_u8(fact.severity.to_u8());
            w.put_u8(fact.evidence.to_u8());
            w.put_str(&fact.mechanism);
            w.put_str(&fact.management);
        }
        seal_frame(KB_MAGIC, KB_FORMAT_VERSION, w.as_bytes())
    }

    /// Decodes a container produced by [`KnowledgeBase::to_container_bytes`].
    ///
    /// Fully defensive: bad magic, version mismatches, truncation, flipped
    /// bits (CRC), oversized declared lengths, out-of-range pairs and
    /// unknown severity/evidence bytes all produce typed [`KbError`]s —
    /// never a panic, never an allocation sized from an unvalidated length.
    pub fn from_container_bytes(bytes: &[u8]) -> Result<Self, KbError> {
        // Same pre-allocation guard as the wire protocol: validate the
        // header (magic, version) and cap the declared length before
        // `open_frame` compares it against the bytes actually present.
        let declared = parse_frame_header(KB_MAGIC, KB_FORMAT_VERSION, bytes)?;
        if declared > MAX_KB_PAYLOAD {
            return Err(KbError::Serde(SerdeError::Corrupt {
                what: format!(
                    "declared KB payload of {declared} bytes exceeds the \
                     {MAX_KB_PAYLOAD}-byte limit"
                ),
            }));
        }
        let payload = open_frame(KB_MAGIC, KB_FORMAT_VERSION, bytes)?;
        let mut r = ByteReader::new(payload);
        let n_drugs = r.take_usize("kb.n_drugs")?;
        let registry_digest = r.take_u64("kb.registry_digest")?;
        let version = r.take_u64("kb.version")?;
        let n_facts = r.take_usize("kb.n_facts")?;
        let mut facts = BTreeMap::new();
        for _ in 0..n_facts {
            let a = r.take_usize("kb.fact.a")?;
            let b = r.take_usize("kb.fact.b")?;
            if a >= b || b >= n_drugs {
                return Err(KbError::Serde(SerdeError::Corrupt {
                    what: format!(
                        "fact pair ({a}, {b}) is not canonical within a {n_drugs}-drug formulary"
                    ),
                }));
            }
            let severity_byte = r.take_u8("kb.fact.severity")?;
            let severity =
                Severity::from_u8(severity_byte).ok_or(KbError::Serde(SerdeError::Corrupt {
                    what: format!("unknown severity byte {severity_byte}"),
                }))?;
            let evidence_byte = r.take_u8("kb.fact.evidence")?;
            let evidence = EvidenceLevel::from_u8(evidence_byte).ok_or(KbError::Serde(
                SerdeError::Corrupt {
                    what: format!("unknown evidence byte {evidence_byte}"),
                },
            ))?;
            let mechanism = r.take_str("kb.fact.mechanism")?;
            let management = r.take_str("kb.fact.management")?;
            if facts
                .insert(
                    (a, b),
                    KbFact {
                        severity,
                        evidence,
                        mechanism,
                        management,
                    },
                )
                .is_some()
            {
                return Err(KbError::Serde(SerdeError::Corrupt {
                    what: format!("duplicate fact for pair ({a}, {b})"),
                }));
            }
        }
        if !r.is_exhausted() {
            return Err(KbError::Serde(SerdeError::Corrupt {
                what: format!("{} trailing bytes after the last fact", r.remaining()),
            }));
        }
        Ok(Self {
            n_drugs,
            registry_digest,
            version,
            facts,
        })
    }

    /// Writes the `DSKB` container to a file crash-safely: the bytes are
    /// staged in a temporary sibling and renamed into place atomically
    /// (see [`dssddi_tensor::serde::atomic_write`]), so a writer killed
    /// mid-save leaves the previous knowledge base intact — never a torn
    /// container.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), KbError> {
        dssddi_tensor::serde::atomic_write(path, &self.to_container_bytes()).map_err(|e| match e {
            SerdeError::Io { what } => KbError::Io { what },
            other => KbError::Serde(other),
        })
    }

    /// Loads a `DSKB` container from a file.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, KbError> {
        let path = path.as_ref();
        let bytes = std::fs::read(path).map_err(|e| KbError::Io {
            what: format!("reading {}: {e}", path.display()),
        })?;
        Self::from_container_bytes(&bytes)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // tests may panic freely
mod tests {
    use super::*;
    use dssddi_data::{generate_ddi_graph, DdiConfig};
    use dssddi_tensor::serde::FRAME_HEADER_LEN;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn registry() -> DrugRegistry {
        DrugRegistry::standard()
    }

    fn fact(severity: Severity) -> KbFact {
        KbFact {
            severity,
            evidence: EvidenceLevel::Study,
            mechanism: "mechanism".to_string(),
            management: "management".to_string(),
        }
    }

    #[test]
    fn versions_increase_monotonically_per_mutation() {
        let registry = registry();
        let mut kb = KnowledgeBase::new(&registry);
        assert_eq!(kb.version(), 0);
        kb.upsert(1, 2, fact(Severity::Major)).unwrap();
        assert_eq!(kb.version(), 1);
        kb.upsert(2, 1, fact(Severity::Minor)).unwrap();
        assert_eq!(kb.version(), 2);
        assert_eq!(kb.len(), 1, "pairs are canonical in either order");
        assert_eq!(kb.lookup(1, 2).unwrap().severity, Severity::Minor);
        // An ingest that lands nothing does not bump the version.
        let before = kb.version();
        kb.ingest_tsv("# only a comment\n\n", &registry).unwrap();
        assert_eq!(kb.version(), before);
    }

    #[test]
    fn tsv_rows_resolve_names_ids_and_did_references() {
        let registry = registry();
        let mut kb = KnowledgeBase::new(&registry);
        let tsv = "Metformin\tGliclazide\tmajor\tstudy\tadditive hypoglycaemia\tmonitor glucose\n\
                   # a comment between rows\n\
                   DID 61\t59\tcontraindicated\testablished\t\tdo not combine\n";
        let summary = kb.ingest_tsv(tsv, &registry).unwrap();
        assert_eq!(
            summary,
            IngestSummary {
                added: 2,
                updated: 0
            }
        );
        let metformin = registry.resolve("Metformin").unwrap();
        let gliclazide = registry.resolve("Gliclazide").unwrap();
        let fact = kb.lookup(gliclazide, metformin).unwrap();
        assert_eq!(fact.severity, Severity::Major);
        assert_eq!(fact.management, "monitor glucose");
        let (severity, hint) = kb.grade(61, 59, Interaction::Antagonistic);
        assert_eq!(severity, Severity::Contraindicated);
        assert_eq!(hint, Some("do not combine"));
        // Unknown pairs fall back to the sign default with no hint.
        assert_eq!(
            kb.grade(0, 1, Interaction::Antagonistic),
            (Severity::Moderate, None)
        );
    }

    #[test]
    fn ingest_summary_counts_net_changes_not_rows() {
        let registry = registry();
        let mut kb = KnowledgeBase::new(&registry);
        // The same new pair twice in one file is one added fact (the later
        // row is an ordered correction, not an update of pre-existing
        // state), and the correction wins.
        let summary = kb
            .ingest_tsv(
                "Metformin\tGliclazide\tminor\tstudy\nGliclazide\tMetformin\tmajor\tstudy",
                &registry,
            )
            .unwrap();
        assert_eq!(
            summary,
            IngestSummary {
                added: 1,
                updated: 0
            }
        );
        assert_eq!(kb.len(), 1);
        let (metformin, gliclazide) = (
            registry.resolve("Metformin").unwrap(),
            registry.resolve("Gliclazide").unwrap(),
        );
        assert_eq!(
            kb.lookup(metformin, gliclazide).unwrap().severity,
            Severity::Major
        );
        // Re-ingesting a pair the KB already holds is an update.
        let summary = kb
            .ingest_tsv("Metformin\tGliclazide\tmoderate\tstudy", &registry)
            .unwrap();
        assert_eq!(
            summary,
            IngestSummary {
                added: 0,
                updated: 1
            }
        );
        assert_eq!(kb.len(), 1);
    }

    #[test]
    fn tsv_errors_name_the_line_and_leave_the_kb_untouched() {
        let registry = registry();
        let mut kb = KnowledgeBase::new(&registry);
        let cases: Vec<(&str, fn(&KbError) -> bool)> = vec![
            ("just-one-cell", |e| {
                matches!(e, KbError::Parse { line: 1, .. })
            }),
            ("Metformin\tUnobtainium\tmajor\tstudy", |e| {
                matches!(e, KbError::UnknownDrug { line: 1, .. })
            }),
            ("Metformin\tGliclazide\tcatastrophic\tstudy", |e| {
                matches!(e, KbError::Parse { line: 1, .. })
            }),
            ("Metformin\tGliclazide\tmajor\tvibes", |e| {
                matches!(e, KbError::Parse { line: 1, .. })
            }),
            ("Metformin\tMetformin\tmajor\tstudy", |e| {
                matches!(e, KbError::SelfInteraction { line: 1, .. })
            }),
            (
                // Line numbering counts skipped lines too.
                "# header\nMetformin\tGliclazide\tmajor\tstudy\tok\tok\tEXTRA",
                |e| matches!(e, KbError::Parse { line: 2, .. }),
            ),
            (
                // A good row followed by a bad one must not half-apply.
                "Metformin\tGliclazide\tmajor\tstudy\nbroken row",
                |e| matches!(e, KbError::Parse { line: 2, .. }),
            ),
        ];
        for (tsv, matches_expected) in cases {
            let error = kb.ingest_tsv(tsv, &registry).unwrap_err();
            assert!(matches_expected(&error), "tsv {tsv:?} gave {error:?}");
            assert!(kb.is_empty(), "failed ingest must not mutate: {tsv:?}");
            assert_eq!(kb.version(), 0);
        }
    }

    #[test]
    fn ddi_graph_seeding_grades_by_sign() {
        let registry = registry();
        let mut rng = StdRng::seed_from_u64(7);
        let ddi = generate_ddi_graph(&registry, &DdiConfig::default(), &mut rng).unwrap();
        let kb = KnowledgeBase::from_ddi_graph(&ddi, &registry).unwrap();
        assert_eq!(kb.version(), 1);
        assert_eq!(
            kb.len(),
            ddi.synergistic_count() + ddi.antagonistic_count(),
            "every signed edge gets a fact; explicit no-interaction edges do not"
        );
        for (u, v, interaction) in ddi.interactions() {
            if interaction == Interaction::None {
                assert!(kb.lookup(u, v).is_none());
            } else {
                let fact = kb.lookup(u, v).unwrap();
                assert_eq!(fact.severity, Severity::default_for(interaction));
                assert_eq!(fact.evidence, EvidenceLevel::Theoretical);
            }
        }
        let small = SignedGraph::new(3);
        assert!(matches!(
            KnowledgeBase::from_ddi_graph(&small, &registry),
            Err(KbError::RegistryMismatch { .. })
        ));
    }

    #[test]
    fn diff_reports_added_removed_changed_in_pair_order() {
        let registry = registry();
        let mut old = KnowledgeBase::new(&registry);
        old.upsert(1, 2, fact(Severity::Minor)).unwrap();
        old.upsert(3, 4, fact(Severity::Major)).unwrap();
        let mut new = old.clone();
        new.upsert(0, 5, fact(Severity::Contraindicated)).unwrap(); // added
        new.upsert(1, 2, fact(Severity::Moderate)).unwrap(); // changed
        let mut dropped = KnowledgeBase::new(&registry);
        dropped
            .upsert(0, 5, fact(Severity::Contraindicated))
            .unwrap();
        dropped.upsert(1, 2, fact(Severity::Moderate)).unwrap();
        // `new` vs `old`: one added, one changed.
        let diff = old.diff(&new).unwrap();
        assert_eq!(diff.from_version, old.version());
        assert_eq!(diff.to_version, new.version());
        assert_eq!(diff.counts(), (1, 0, 1));
        assert!(matches!(
            diff.changes[0],
            KbChange::Added { pair: (0, 5), .. }
        ));
        assert!(matches!(
            diff.changes[1],
            KbChange::Changed { pair: (1, 2), .. }
        ));
        // `dropped` vs `new`: (3, 4) was removed.
        let diff = new.diff(&dropped).unwrap();
        assert_eq!(diff.counts(), (0, 1, 0));
        assert!(matches!(
            diff.changes[0],
            KbChange::Removed { pair: (3, 4), .. }
        ));
        // Identical sides diff empty.
        assert!(old.diff(&old.clone()).unwrap().is_empty());
        assert_eq!(format!("{}", old.diff(&new).unwrap()), {
            format!(
                "kb v{} -> v{}: 1 added, 0 removed, 1 changed",
                old.version(),
                new.version()
            )
        });
    }

    #[test]
    fn container_round_trips_and_rejects_damage() {
        let registry = registry();
        let mut kb = KnowledgeBase::new(&registry);
        kb.ingest_tsv(
            "Metformin\tGliclazide\tmajor\tstudy\tадитивний ефект\tmonitor 血糖\n\
             Gabapentin\tIsosorbide Mononitrate\tcontraindicated\testablished\t\tstop one\n",
            &registry,
        )
        .unwrap();
        let bytes = kb.to_container_bytes();
        let back = KnowledgeBase::from_container_bytes(&bytes).unwrap();
        assert_eq!(back, kb, "containers round-trip exactly");

        // Truncation anywhere is a typed error.
        for cut in [0, 3, FRAME_HEADER_LEN - 1, bytes.len() / 2, bytes.len() - 1] {
            assert!(KnowledgeBase::from_container_bytes(&bytes[..cut]).is_err());
        }
        // A flipped payload bit is caught by the CRC.
        let mut flipped = bytes.clone();
        flipped[FRAME_HEADER_LEN + 2] ^= 0x40;
        assert!(matches!(
            KnowledgeBase::from_container_bytes(&flipped),
            Err(KbError::Serde(SerdeError::ChecksumMismatch { .. }))
        ));
        // Foreign magic (a DSSD model file is not a KB).
        let mut foreign = bytes.clone();
        foreign[..4].copy_from_slice(b"DSSD");
        assert!(matches!(
            KnowledgeBase::from_container_bytes(&foreign),
            Err(KbError::Serde(SerdeError::BadMagic))
        ));
        // Future format versions are refused.
        let mut future = bytes.clone();
        future[4..6].copy_from_slice(&(KB_FORMAT_VERSION + 1).to_le_bytes());
        assert!(matches!(
            KnowledgeBase::from_container_bytes(&future),
            Err(KbError::Serde(SerdeError::UnsupportedVersion { .. }))
        ));
        // An absurd declared length is rejected before allocation.
        let mut oversized = bytes.clone();
        oversized[6..14].copy_from_slice(&(u64::MAX / 2).to_le_bytes());
        assert!(KnowledgeBase::from_container_bytes(&oversized).is_err());
    }

    #[test]
    fn save_load_round_trips_through_files() {
        let registry = registry();
        let mut kb = KnowledgeBase::new(&registry);
        kb.upsert(10, 5, fact(Severity::Moderate)).unwrap();
        let dir = std::env::temp_dir().join("dssddi-kb-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("kb-{}.dskb", std::process::id()));
        kb.save(&path).unwrap();
        let back = KnowledgeBase::load(&path).unwrap();
        assert_eq!(back, kb);
        std::fs::remove_file(&path).ok();
        assert!(matches!(
            KnowledgeBase::load(dir.join("missing.dskb")),
            Err(KbError::Io { .. })
        ));
    }

    #[test]
    fn info_counts_facts_per_severity() {
        let registry = registry();
        let mut kb = KnowledgeBase::new(&registry);
        kb.upsert(0, 1, fact(Severity::Minor)).unwrap();
        kb.upsert(0, 2, fact(Severity::Major)).unwrap();
        kb.upsert(0, 3, fact(Severity::Major)).unwrap();
        kb.upsert(0, 4, fact(Severity::Contraindicated)).unwrap();
        let info = kb.info();
        assert_eq!(info.version, 4);
        assert_eq!(info.n_facts, 4);
        assert_eq!(info.facts_by_severity, [1, 0, 2, 1]);
        assert_eq!(info.registry_digest, registry.digest());
        assert_eq!(info.n_drugs, registry.len());
    }
}
