//! End-to-end fault injection against a live gateway.
//!
//! Every fault kind the chaos proxy can inject is driven against a real
//! `dssddi-serving` gateway over loopback TCP. The acceptance bar on both
//! ends: **typed errors, never panics** — the client surfaces each fault
//! as `ServingError::Wire`/`Io`, the gateway keeps serving direct traffic
//! afterwards, slow-loris peers are reaped and counted, the connection
//! bound sheds with a typed `Overloaded`, shutdown drains cleanly under
//! live traffic, and a two-endpoint client rides out a black-holed
//! gateway with ≥99% call success.

// Tests may panic freely; the workspace-level panic policy denies library
// and binary code only.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use dssddi_chaos::{ChaosHandle, ChaosProxy, Fault, FaultPlan, FaultSpec};
use dssddi_serving::demo::{demo_catalog, DEMO_SEED};
use dssddi_serving::{Client, ErrorCode, RetryPolicy, Router, Server, ServerConfig, ServingError};

fn spawn_gateway(
    config: ServerConfig,
) -> (
    SocketAddr,
    std::thread::JoinHandle<Result<(), ServingError>>,
) {
    let (catalog, _world) = demo_catalog(DEMO_SEED).expect("demo catalog");
    let server =
        Server::bind_with_config("127.0.0.1:0", Router::new(catalog), config).expect("bind");
    let addr = server.local_addr().expect("local addr");
    (addr, std::thread::spawn(move || server.run()))
}

fn spawn_proxy(upstream: SocketAddr, plan: FaultPlan) -> ChaosHandle {
    let listen: SocketAddr = "127.0.0.1:0".parse().expect("listen addr");
    ChaosProxy::bind(listen, upstream, plan)
        .expect("bind proxy")
        .spawn()
        .expect("spawn proxy")
}

fn stop_gateway(addr: SocketAddr, server: std::thread::JoinHandle<Result<(), ServingError>>) {
    Client::connect(addr)
        .expect("shutdown client")
        .shutdown()
        .expect("shutdown ack");
    server.join().expect("server thread").expect("clean run");
}

#[test]
fn every_fault_kind_is_a_typed_error_and_the_gateway_survives() {
    let (addr, server) = spawn_gateway(ServerConfig::default());

    struct Case {
        name: &'static str,
        spec: FaultSpec,
        expect_ok: bool,
        fired: fn(&dssddi_chaos::FaultCounts) -> u64,
    }
    let cases = [
        Case {
            // A bounded delay inside the client's timeout is survivable.
            name: "delay",
            spec: FaultSpec::response(Fault::Delay {
                ms: 30,
                jitter_ms: 20,
            }),
            expect_ok: true,
            fired: |c| c.delays,
        },
        Case {
            name: "truncate response",
            spec: FaultSpec::response(Fault::Truncate { after: 30 }),
            expect_ok: false,
            fired: |c| c.truncations,
        },
        Case {
            name: "corrupt byte (CRC)",
            spec: FaultSpec::response(Fault::CorruptByte { at: 25 }),
            expect_ok: false,
            fired: |c| c.corruptions,
        },
        Case {
            name: "reset",
            spec: FaultSpec::response(Fault::Reset),
            expect_ok: false,
            fired: |c| c.resets,
        },
        Case {
            // Each pause exceeds the client's read timeout, so the stall
            // surfaces as a mid-frame timeout. (A trickle *faster* than
            // the read timeout is the server-side slow-loris case, covered
            // by `slow_loris_request_is_reaped_with_typed_timeout_and_counted`.)
            name: "stall (slow loris)",
            spec: FaultSpec::response(Fault::Stall {
                first: 10,
                pause_ms: 1_500,
            }),
            expect_ok: false,
            fired: |c| c.stalls,
        },
        Case {
            name: "black hole",
            spec: FaultSpec::response(Fault::BlackHole),
            expect_ok: false,
            fired: |c| c.black_holes,
        },
        Case {
            name: "truncate request",
            spec: FaultSpec::request(Fault::Truncate { after: 10 }),
            expect_ok: false,
            fired: |c| c.truncations,
        },
    ];

    for case in cases {
        let handle = spawn_proxy(addr, FaultPlan::new(7, vec![case.spec]));
        let mut client = Client::connect_timeout(handle.addr(), Duration::from_millis(700))
            .expect("connect through proxy");
        let result = client.list_models();
        if case.expect_ok {
            assert!(
                result.is_ok(),
                "{}: expected success, got {result:?}",
                case.name
            );
        } else {
            let err = result.expect_err(case.name);
            assert!(
                matches!(err, ServingError::Wire(_) | ServingError::Io { .. }),
                "{}: fault must surface as a typed transport error, got {err:?}",
                case.name
            );
        }
        let counts = handle.counts();
        assert!(
            (case.fired)(&counts) >= 1,
            "{}: fault must be counted, got {counts:?}",
            case.name
        );
        handle.shutdown();

        // The gateway itself never degrades: direct traffic still works.
        let mut direct = Client::connect(addr).expect("direct connect");
        assert!(
            direct.list_models().is_ok(),
            "{}: gateway must survive the faulted connection",
            case.name
        );
    }
    stop_gateway(addr, server);
}

#[test]
fn slow_loris_request_is_reaped_with_typed_timeout_and_counted() {
    let (addr, server) = spawn_gateway(ServerConfig {
        max_connections: None,
        frame_deadline: Duration::from_millis(400),
    });
    // Trickle the *request* to the server: 6 bytes up front (enough to
    // start the frame and arm the per-frame deadline), then one byte per
    // 300 ms — each byte arrives inside the server's stall-poll budget,
    // which is exactly the attack the wall-clock deadline exists for.
    let handle = spawn_proxy(
        addr,
        FaultPlan::new(
            5,
            vec![FaultSpec::request(Fault::Stall {
                first: 6,
                pause_ms: 300,
            })],
        ),
    );
    let mut client =
        Client::connect_timeout(handle.addr(), Duration::from_secs(3)).expect("connect");
    let err = client.list_models().expect_err("stalled request must fail");
    assert!(
        matches!(err, ServingError::Wire(_) | ServingError::Io { .. }),
        "reap must surface as a typed transport error, got {err:?}"
    );
    handle.shutdown();

    let mut direct = Client::connect(addr).expect("direct connect");
    let report = direct.stats_report().expect("stats report");
    assert!(
        report.gateway.stalled_reaped >= 1,
        "the reaped slow-loris connection must be counted: {report:?}"
    );
    drop(direct);
    stop_gateway(addr, server);
}

#[test]
fn connection_bound_sheds_with_typed_overloaded() {
    let (addr, server) = spawn_gateway(ServerConfig {
        max_connections: Some(1),
        frame_deadline: Duration::from_secs(10),
    });
    let mut first = Client::connect(addr).expect("first connection");
    assert!(first.list_models().is_ok());

    let mut second = Client::connect_timeout(addr, Duration::from_secs(2))
        .expect("TCP connect succeeds even at the bound");
    let err = second.list_models().expect_err("second connection is shed");
    match err {
        ServingError::Remote {
            code: ErrorCode::Overloaded,
            ..
        } => {}
        other => panic!("shed must be a typed Overloaded, got {other:?}"),
    }
    drop(second);

    let report = first.stats_report().expect("stats report");
    assert!(
        report.gateway.connections_shed >= 1,
        "shed must be counted: {report:?}"
    );
    assert!(report.gateway.connections_accepted >= 2);
    first.shutdown().expect("shutdown ack");
    server.join().expect("server thread").expect("clean run");
}

#[test]
fn graceful_drain_under_live_traffic() {
    let (addr, server) = spawn_gateway(ServerConfig::default());
    let stop = Arc::new(AtomicBool::new(false));
    let workers: Vec<_> = (0..4)
        .map(|worker| {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || -> Result<u64, String> {
                let mut served = 0u64;
                let mut client =
                    Client::connect(addr).map_err(|e| format!("worker {worker}: connect: {e}"))?;
                while !stop.load(Ordering::Relaxed) {
                    match client.list_models() {
                        Ok(_) => served += 1,
                        // The drain closing this connection is the clean
                        // outcome; anything else (a panic would poison the
                        // join instead) is a failure.
                        Err(ServingError::Wire(_)) | Err(ServingError::Io { .. }) => break,
                        Err(other) => {
                            return Err(format!("worker {worker}: unexpected error: {other}"))
                        }
                    }
                }
                Ok(served)
            })
        })
        .collect();

    // Let real traffic flow, then shut down *under* it.
    std::thread::sleep(Duration::from_millis(150));
    Client::connect(addr)
        .expect("shutdown client")
        .shutdown()
        .expect("shutdown acknowledged under live traffic");
    let run_result = server.join().expect("server thread must not panic");
    assert!(run_result.is_ok(), "drain must be clean: {run_result:?}");
    stop.store(true, Ordering::Relaxed);
    for worker in workers {
        let served = worker
            .join()
            .expect("worker thread must not panic")
            .expect("workers see only typed errors");
        assert!(
            served > 0,
            "every worker must have been served before drain"
        );
    }
}

#[test]
fn failover_sustains_client_success_when_one_endpoint_black_holes() {
    let (addr, server) = spawn_gateway(ServerConfig::default());
    // Two proxy endpoints in front of the same gateway stand in for a
    // two-gateway replica set; black-holing one mid-run kills its live
    // connections and eats its new ones.
    let a = spawn_proxy(addr, FaultPlan::clean(1));
    let b = spawn_proxy(addr, FaultPlan::clean(2));

    let mut client = Client::connect_any(&[a.addr(), b.addr()], Duration::from_millis(400))
        .expect("connect_any");
    client.set_retry_policy(
        Some(
            RetryPolicy::new(4, Duration::from_millis(10), Duration::from_millis(50))
                .retry_connection_faults(true),
        ),
        9,
    );

    let total = 200u32;
    let mut ok = 0u32;
    for i in 0..total {
        if i == 50 {
            // Kill the first endpoint mid-run: in-flight and future
            // traffic through it goes dark.
            a.set_black_hole(true);
        }
        if client.list_models().is_ok() {
            ok += 1;
        }
    }
    assert!(
        ok * 100 >= total * 99,
        "failover must sustain >=99% success, got {ok}/{total}"
    );

    a.shutdown();
    b.shutdown();
    stop_gateway(addr, server);
}
