//! Connection-fault retry semantics of the serving client.
//!
//! Driven through the chaos proxy so the faults are real socket-level
//! events, not mocks: a reset on the first connection must be retried
//! transparently for idempotent requests when the policy arms
//! connection-fault retries; a transport fault without that arming must
//! poison the connection (the historical contract); and a non-idempotent
//! reload must **never** be retried across a transport fault — the first
//! send may have executed.

// Tests may panic freely; the workspace-level panic policy denies library
// and binary code only.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::net::SocketAddr;
use std::time::Duration;

use dssddi_chaos::{ChaosHandle, ChaosProxy, Fault, FaultPlan, FaultSpec};
use dssddi_serving::demo::{demo_catalog, demo_world, DEMO_SEED};
use dssddi_serving::{Client, ModelKey, RetryPolicy, Router, Server, ServerConfig, ServingError};

fn spawn_gateway() -> (
    SocketAddr,
    std::thread::JoinHandle<Result<(), ServingError>>,
) {
    let (catalog, _world) = demo_catalog(DEMO_SEED).expect("demo catalog");
    let server =
        Server::bind_with_config("127.0.0.1:0", Router::new(catalog), ServerConfig::default())
            .expect("bind");
    let addr = server.local_addr().expect("local addr");
    (addr, std::thread::spawn(move || server.run()))
}

fn spawn_proxy(upstream: SocketAddr, plan: FaultPlan) -> ChaosHandle {
    let listen: SocketAddr = "127.0.0.1:0".parse().expect("listen addr");
    ChaosProxy::bind(listen, upstream, plan)
        .expect("bind proxy")
        .spawn()
        .expect("spawn proxy")
}

fn stop_gateway(addr: SocketAddr, server: std::thread::JoinHandle<Result<(), ServingError>>) {
    Client::connect(addr)
        .expect("shutdown client")
        .shutdown()
        .expect("shutdown ack");
    server.join().expect("server thread").expect("clean run");
}

/// Connection 0 resets, connection 1 is clean: an armed client retries an
/// idempotent call onto the fresh connection and the caller never sees
/// the fault.
#[test]
fn idempotent_calls_retry_through_connection_faults() {
    let (addr, server) = spawn_gateway();
    let handle = spawn_proxy(
        addr,
        FaultPlan::new(
            3,
            vec![
                FaultSpec::response(Fault::Reset),
                FaultSpec::response(Fault::None),
            ],
        ),
    );
    let mut client =
        Client::connect_timeout(handle.addr(), Duration::from_secs(2)).expect("connect");
    client.set_retry_policy(
        Some(
            RetryPolicy::new(3, Duration::from_millis(5), Duration::from_millis(20))
                .retry_connection_faults(true),
        ),
        11,
    );
    let models = client
        .list_models()
        .expect("the reset is retried onto a fresh connection");
    assert!(!models.is_empty());
    assert!(handle.counts().resets >= 1, "the reset must have fired");
    handle.shutdown();
    stop_gateway(addr, server);
}

/// Without connection-fault retries armed, a transport fault keeps the
/// historical contract: typed error now, poisoned fail-fast afterwards.
#[test]
fn transport_fault_without_armed_retry_poisons_the_connection() {
    let (addr, server) = spawn_gateway();
    let handle = spawn_proxy(
        addr,
        FaultPlan::new(3, vec![FaultSpec::response(Fault::Reset)]),
    );
    let mut client =
        Client::connect_timeout(handle.addr(), Duration::from_secs(2)).expect("connect");
    let err = client.list_models().expect_err("the reset must surface");
    assert!(
        matches!(err, ServingError::Wire(_) | ServingError::Io { .. }),
        "expected a typed transport error, got {err:?}"
    );
    let err = client.list_models().expect_err("the client is poisoned");
    assert!(
        matches!(err, ServingError::Protocol { .. }),
        "poisoned clients fail fast with a protocol error, got {err:?}"
    );
    handle.shutdown();
    stop_gateway(addr, server);
}

/// Connection 0 truncates the response, connection 1 is clean. If the
/// client (incorrectly) retried the reload, the retry would land on the
/// clean connection and succeed — so an error here proves the reload was
/// sent exactly once. The client stays usable for idempotent traffic
/// afterwards: the dead socket was dropped, not poisoned.
#[test]
fn reloads_are_never_retried_across_transport_faults() {
    let (addr, server) = spawn_gateway();
    let handle = spawn_proxy(
        addr,
        FaultPlan::new(
            3,
            vec![
                FaultSpec::response(Fault::Truncate { after: 30 }),
                FaultSpec::response(Fault::None),
            ],
        ),
    );
    let world = demo_world(DEMO_SEED).expect("demo world");
    let kb = dssddi_serving::KnowledgeBase::from_ddi_graph(&world.ddi, &world.registry)
        .expect("build kb");
    let container = kb.to_container_bytes();
    let key = ModelKey::new("chronic").expect("key");

    let mut client =
        Client::connect_timeout(handle.addr(), Duration::from_secs(2)).expect("connect");
    client.set_retry_policy(
        Some(
            RetryPolicy::new(3, Duration::from_millis(5), Duration::from_millis(20))
                .retry_connection_faults(true),
        ),
        13,
    );
    let err = client
        .reload_kb(&key, &container)
        .expect_err("a reload is never retried across a transport fault");
    assert!(
        matches!(err, ServingError::Wire(_) | ServingError::Io { .. }),
        "expected a typed transport error, got {err:?}"
    );
    // The fault dropped the stream instead of poisoning: idempotent
    // traffic reconnects (onto the clean connection 1) and succeeds.
    assert!(
        client.list_models().is_ok(),
        "idempotent traffic must recover on a fresh connection"
    );
    handle.shutdown();
    stop_gateway(addr, server);
}
