//! Kill-one-replica drill: a three-gateway replica group where one
//! replica's network path runs through the chaos proxy.
//!
//! Black-holing that path mid-run is the deployment's "replica killed"
//! event as the rest of the system sees it: clinical traffic through
//! [`ReplicaClient`] fails over and sustains ≥ 99 % success, the two
//! surviving replicas keep converging reloads between themselves (the
//! dark peer costs each anti-entropy round one bounded timeout, nothing
//! else), and when the path comes back the stale replica pulls itself
//! up to the group's versions in a single round.

// Tests may panic freely; the workspace-level panic policy denies library
// and binary code only.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

use dssddi_chaos::{ChaosProxy, FaultPlan};
use dssddi_core::{CheckPrescriptionRequest, DrugId};
use dssddi_kb::{EvidenceLevel, KbFact, KnowledgeBase, Severity};
use dssddi_replica::{ReplicaAgent, ReplicaClient, ReplicaGroup, ReplicaState};
use dssddi_serving::demo::{demo_catalog, DemoWorld, DEMO_SEED};
use dssddi_serving::{Client, ModelKey, Router, Server, ServingError};

struct Gateway {
    addr: SocketAddr,
    router: Arc<Router>,
    state: Arc<ReplicaState>,
    thread: std::thread::JoinHandle<Result<(), ServingError>>,
}

fn spawn_gateway() -> Gateway {
    let (catalog, _world) = demo_catalog(DEMO_SEED).expect("demo catalog");
    let mut router = Router::new(catalog);
    let state = Arc::new(ReplicaState::default());
    router.attach_replica(Arc::clone(&state));
    let server = Server::bind("127.0.0.1:0", router).expect("bind");
    let addr = server.local_addr().expect("local addr");
    let router = server.router_arc();
    let thread = std::thread::spawn(move || server.run());
    Gateway {
        addr,
        router,
        state,
        thread,
    }
}

fn agent_for(gateway: &Gateway, peers: &[SocketAddr]) -> ReplicaAgent {
    let group = ReplicaGroup::new(peers.to_vec())
        .with_peer_timeout(Duration::from_millis(300))
        .with_sync_interval(Duration::from_millis(50));
    ReplicaAgent::new(
        group,
        Arc::clone(&gateway.router),
        Arc::clone(&gateway.state),
    )
}

fn kb_version_of(addr: SocketAddr, key: &ModelKey) -> u64 {
    let mut client = Client::connect(addr).expect("connect for stats");
    let report = client.stats_report().expect("stats report");
    report
        .replica
        .expect("replicated gateway")
        .versions
        .into_iter()
        .find(|entry| &entry.key == key)
        .expect("key present")
        .kb_version
}

fn stop_gateway(gateway: Gateway) {
    Client::connect(gateway.addr)
        .expect("shutdown client")
        .shutdown()
        .expect("shutdown ack");
    gateway.thread.join().expect("no panic").expect("clean run");
}

#[test]
fn black_holed_replica_drill_sustains_clients_and_repairs_on_recovery() {
    let key = ModelKey::new("chronic").expect("key");
    let (_catalog, world): (_, DemoWorld) = demo_catalog(DEMO_SEED).expect("demo world");

    let a = spawn_gateway();
    let b = spawn_gateway();
    let c = spawn_gateway();

    // Replica C is reachable only through the chaos proxy — by clients
    // *and* by its peers' anti-entropy agents.
    let listen: SocketAddr = "127.0.0.1:0".parse().expect("listen addr");
    let proxy = ChaosProxy::bind(listen, c.addr, FaultPlan::clean(11))
        .expect("bind proxy")
        .spawn()
        .expect("spawn proxy");
    let c_public = proxy.addr();

    let agent_a = agent_for(&a, &[b.addr, c_public]);
    let agent_b = agent_for(&b, &[a.addr, c_public]);
    let agent_c = agent_for(&c, &[a.addr, b.addr]);

    // Clinical traffic enters on the victim so the black-hole lands on a
    // live connection and fail-over has to actually happen.
    let mut client =
        ReplicaClient::connect(&[c_public, a.addr, b.addr], Duration::from_millis(400), 9)
            .expect("replica client");
    let check = CheckPrescriptionRequest::new(vec![DrugId::new(61), DrugId::new(59)]);

    let total = 200u32;
    let mut ok = 0u32;
    for frame in 0..total {
        if frame == total / 4 {
            // The drill: replica C goes dark mid-run.
            proxy.set_black_hole(true);
        }
        if client.check_prescription(&key, &check).is_ok() {
            ok += 1;
        }
    }
    assert!(
        ok * 100 >= total * 99,
        "fail-over must sustain >=99% success, got {ok}/{total}"
    );

    // With C dark, a reload shipped to A still converges on B; the dark
    // peer costs the round exactly one bounded timeout.
    let mut new_kb =
        KnowledgeBase::from_ddi_graph(&world.ddi, &world.registry).expect("kb from graph");
    new_kb
        .upsert(
            61,
            59,
            KbFact {
                severity: Severity::Contraindicated,
                evidence: EvidenceLevel::Established,
                mechanism: "nitrate potentiation".to_string(),
                management: "do not combine".to_string(),
            },
        )
        .expect("upsert");
    Client::connect(a.addr)
        .expect("ops client")
        .reload_kb(&key, &new_kb.to_container_bytes())
        .expect("reload kb");

    let round_b = agent_b.sync_round();
    assert_eq!(round_b.peers_unreachable, 1, "dark C: {round_b:?}");
    assert_eq!(round_b.pulls_applied, 1, "B pulls the new KB: {round_b:?}");
    assert_eq!(kb_version_of(b.addr, &key), new_kb.version());
    assert_eq!(
        kb_version_of(c.addr, &key),
        1,
        "dark C must still be on the seed KB"
    );

    // Recovery: the path comes back and the stale replica repairs itself
    // in one anti-entropy round.
    proxy.set_black_hole(false);
    let round_c = agent_c.sync_round();
    assert_eq!(round_c.peers_polled, 2);
    assert!(round_c.pulls_applied >= 1, "C must catch up: {round_c:?}");
    assert_eq!(kb_version_of(c.addr, &key), new_kb.version());

    // The healed group is quiet again.
    let quiet = agent_a.sync_round();
    assert_eq!(quiet.peers_unreachable, 0);
    assert_eq!(quiet.pulls_planned, 0);
    assert_eq!(quiet.max_lag, 0);

    drop((agent_a, agent_b, agent_c, client));
    proxy.shutdown();
    stop_gateway(a);
    stop_gateway(b);
    stop_gateway(c);
}
