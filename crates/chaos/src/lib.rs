//! `dssddi-chaos`: a deterministic fault-injecting TCP proxy.
//!
//! The proxy sits between any DSWR client and a gateway and injects the
//! transport failures a production deployment will eventually see — delays,
//! torn frames, corrupt bytes (which break the frame CRC), connection
//! resets, slow-loris stalls and black holes — on a reproducible, seeded
//! schedule. It is dependency-free (std only) and deliberately knows
//! nothing about the wire protocol: faults act on the byte stream, exactly
//! where a flaky network acts.
//!
//! ## Shape
//!
//! - [`Fault`] is one injectable failure; [`FaultSpec`] pairs it with the
//!   [`Direction`] it applies to (request bytes, response bytes, or both).
//! - [`FaultPlan`] is a seeded list of specs assigned round-robin to
//!   incoming connections, so connection `i` always gets the same fault
//!   for a given plan — tests can assert exactly what was injected.
//! - [`ChaosProxy::bind`] + [`ChaosProxy::spawn`] run the proxy on its own
//!   threads; [`ChaosHandle`] exposes the listen address, typed per-fault
//!   [`FaultCounts`], a global black-hole switch (for failover drills that
//!   kill an endpoint mid-run) and a bounded [`ChaosHandle::shutdown`].
//!
//! ## Spec strings
//!
//! [`FaultPlan::parse`] accepts the `--chaos` argument format of
//! `dssddi-loadgen`: `seed:spec,spec,...` where each spec is one of
//! `none`, `reset`, `blackhole`, `delay:<ms>[:<jitter_ms>]`,
//! `trunc:<bytes>`, `corrupt:<byte>`, `stall[:<bytes>:<pause_ms>]` or the
//! shorthand `mixed` (one of each fault kind). A spec may carry an
//! optional `@req`, `@resp` or `@both` direction suffix; byte-stream
//! faults default to the response direction (client-visible), `reset` and
//! `blackhole` always affect the whole connection.
//!
//! Determinism: the only randomness is delay jitter, drawn from a
//! splitmix64 stream seeded by `plan seed ^ connection index` — the same
//! plan against the same traffic injects the same faults.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// How often proxy threads wake from blocking reads/accepts to observe the
/// shutdown flag. Bounds `ChaosHandle::shutdown` latency.
const POLL_INTERVAL: Duration = Duration::from_millis(20);

/// Connect timeout for the upstream leg of each proxied connection.
const UPSTREAM_CONNECT_TIMEOUT: Duration = Duration::from_secs(2);

/// Errors produced by the chaos proxy itself (never by injected faults —
/// those surface as transport errors on the proxied peers).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ChaosError {
    /// A socket operation on the proxy's own listener failed.
    Io {
        /// Description including the underlying error.
        what: String,
    },
    /// A fault-plan spec string could not be parsed.
    Spec {
        /// What was wrong with the spec.
        what: String,
    },
}

impl std::fmt::Display for ChaosError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChaosError::Io { what } => write!(f, "chaos proxy i/o error: {what}"),
            ChaosError::Spec { what } => write!(f, "bad fault spec: {what}"),
        }
    }
}

impl std::error::Error for ChaosError {}

/// One injectable transport fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum Fault {
    /// Forward bytes unmodified (the control case).
    None,
    /// Sleep before forwarding each chunk: a fixed base plus a uniformly
    /// drawn jitter in `[0, jitter_ms]`.
    Delay {
        /// Base delay per forwarded chunk, in milliseconds.
        ms: u64,
        /// Upper bound of the added jitter, in milliseconds.
        jitter_ms: u64,
    },
    /// Forward exactly `after` bytes in the faulted direction, then sever
    /// the connection — the peer sees a torn frame.
    Truncate {
        /// Bytes forwarded before the cut.
        after: u64,
    },
    /// Flip one bit of the byte at stream offset `at` in the faulted
    /// direction — the frame passes length checks and fails its CRC.
    CorruptByte {
        /// Zero-based offset of the corrupted byte.
        at: u64,
    },
    /// Abort the connection as soon as it is accepted, with request bytes
    /// left unread so the kernel answers with RST where it can.
    Reset,
    /// Slow-loris: forward `first` bytes at full speed, then trickle one
    /// byte per `pause_ms` — each byte arrives before an idle timeout
    /// would fire, so only a per-frame deadline reaps the connection.
    Stall {
        /// Bytes forwarded at full speed before the trickle starts.
        first: u64,
        /// Pause between trickled bytes, in milliseconds.
        pause_ms: u64,
    },
    /// Accept and read both directions forever, forwarding nothing.
    BlackHole,
}

impl Fault {
    /// The counter this fault increments when it first fires.
    fn kind_name(self) -> &'static str {
        match self {
            Fault::None => "none",
            Fault::Delay { .. } => "delay",
            Fault::Truncate { .. } => "truncate",
            Fault::CorruptByte { .. } => "corrupt",
            Fault::Reset => "reset",
            Fault::Stall { .. } => "stall",
            Fault::BlackHole => "blackhole",
        }
    }
}

/// Which half of a proxied connection a byte-stream fault applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Client-to-server bytes (the request path).
    Request,
    /// Server-to-client bytes (the response path).
    Response,
    /// Both directions.
    Both,
}

impl Direction {
    fn applies_to_request(self) -> bool {
        matches!(self, Direction::Request | Direction::Both)
    }

    fn applies_to_response(self) -> bool {
        matches!(self, Direction::Response | Direction::Both)
    }
}

/// A fault plus the direction it acts on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// The fault to inject.
    pub fault: Fault,
    /// The direction the fault applies to (ignored by [`Fault::Reset`] and
    /// [`Fault::BlackHole`], which affect the whole connection).
    pub direction: Direction,
}

impl FaultSpec {
    /// A spec acting on the response (client-visible) direction — the
    /// default for byte-stream faults.
    pub fn response(fault: Fault) -> Self {
        Self {
            fault,
            direction: Direction::Response,
        }
    }

    /// A spec acting on the request (server-visible) direction.
    pub fn request(fault: Fault) -> Self {
        Self {
            fault,
            direction: Direction::Request,
        }
    }
}

/// A seeded schedule assigning one [`FaultSpec`] to each accepted
/// connection, round-robin over the spec list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    seed: u64,
    specs: Vec<FaultSpec>,
}

impl FaultPlan {
    /// A plan cycling through `specs` per connection. An empty list
    /// behaves as [`FaultPlan::clean`].
    pub fn new(seed: u64, specs: Vec<FaultSpec>) -> Self {
        Self { seed, specs }
    }

    /// A plan that injects nothing — the proxy becomes a plain relay.
    pub fn clean(seed: u64) -> Self {
        Self::new(seed, vec![FaultSpec::response(Fault::None)])
    }

    /// One of each fault kind (interleaved with clean connections), the
    /// plan CI's chaos smoke uses: every injected failure class is
    /// exercised, yet enough traffic survives to prove the gateway serves
    /// through it.
    pub fn mixed(seed: u64) -> Self {
        Self::new(
            seed,
            vec![
                FaultSpec::response(Fault::None),
                FaultSpec::response(Fault::Delay {
                    ms: 5,
                    jitter_ms: 10,
                }),
                FaultSpec::response(Fault::None),
                FaultSpec::response(Fault::Truncate { after: 40 }),
                FaultSpec::response(Fault::None),
                FaultSpec::response(Fault::CorruptByte { at: 30 }),
                FaultSpec::response(Fault::None),
                FaultSpec::response(Fault::Reset),
                FaultSpec::response(Fault::Stall {
                    first: 20,
                    pause_ms: 200,
                }),
                FaultSpec::request(Fault::Truncate { after: 25 }),
                FaultSpec::response(Fault::None),
                FaultSpec::response(Fault::BlackHole),
                FaultSpec::response(Fault::None),
            ],
        )
    }

    /// Parses the `seed:spec,spec,...` string format (see the module docs
    /// for the grammar).
    pub fn parse(arg: &str) -> Result<Self, ChaosError> {
        let (seed_str, specs_str) = arg.split_once(':').ok_or_else(|| ChaosError::Spec {
            what: format!("expected seed:spec,... got {arg:?}"),
        })?;
        let seed: u64 = seed_str.trim().parse().map_err(|_| ChaosError::Spec {
            what: format!("seed must be a u64, got {seed_str:?}"),
        })?;
        if specs_str.trim() == "mixed" {
            return Ok(Self::mixed(seed));
        }
        let mut specs = Vec::new();
        for part in specs_str.split(',') {
            specs.push(parse_spec(part.trim())?);
        }
        if specs.is_empty() {
            return Err(ChaosError::Spec {
                what: "fault list is empty".to_string(),
            });
        }
        Ok(Self::new(seed, specs))
    }

    /// The seed driving delay jitter.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The fault assigned to connection number `index` (zero-based, in
    /// accept order).
    pub fn for_connection(&self, index: u64) -> FaultSpec {
        if self.specs.is_empty() {
            return FaultSpec::response(Fault::None);
        }
        let slot = (index % self.specs.len() as u64) as usize;
        self.specs
            .get(slot)
            .copied()
            .unwrap_or(FaultSpec::response(Fault::None))
    }
}

fn parse_spec(part: &str) -> Result<FaultSpec, ChaosError> {
    let (body, direction) = match part.rsplit_once('@') {
        Some((body, "req")) => (body, Some(Direction::Request)),
        Some((body, "resp")) => (body, Some(Direction::Response)),
        Some((body, "both")) => (body, Some(Direction::Both)),
        Some((_, other)) => {
            return Err(ChaosError::Spec {
                what: format!("unknown direction suffix @{other} (want @req/@resp/@both)"),
            })
        }
        None => (part, None),
    };
    let mut fields = body.split(':');
    let name = fields.next().unwrap_or("");
    let mut num = |what: &str, default: Option<u64>| -> Result<u64, ChaosError> {
        match fields.next() {
            Some(raw) => raw.parse().map_err(|_| ChaosError::Spec {
                what: format!("{what} must be a u64, got {raw:?}"),
            }),
            None => default.ok_or_else(|| ChaosError::Spec {
                what: format!("missing {what} in {part:?}"),
            }),
        }
    };
    let fault = match name {
        "none" => Fault::None,
        "reset" => Fault::Reset,
        "blackhole" => Fault::BlackHole,
        "delay" => Fault::Delay {
            ms: num("delay ms", None)?,
            jitter_ms: num("jitter ms", Some(0))?,
        },
        "trunc" => Fault::Truncate {
            after: num("truncate offset", None)?,
        },
        "corrupt" => Fault::CorruptByte {
            at: num("corrupt offset", None)?,
        },
        "stall" => Fault::Stall {
            first: num("stall offset", Some(20))?,
            pause_ms: num("stall pause ms", Some(150))?,
        },
        other => {
            return Err(ChaosError::Spec {
                what: format!("unknown fault {other:?}"),
            })
        }
    };
    Ok(FaultSpec {
        fault,
        direction: direction.unwrap_or(Direction::Response),
    })
}

/// Typed per-fault injection counters, snapshotted from a running proxy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounts {
    /// Connections the proxy accepted.
    pub connections: u64,
    /// Connections whose upstream leg failed to connect.
    pub upstream_failures: u64,
    /// Connections that had at least one chunk delayed.
    pub delays: u64,
    /// Connections severed by [`Fault::Truncate`].
    pub truncations: u64,
    /// Connections with a byte corrupted by [`Fault::CorruptByte`].
    pub corruptions: u64,
    /// Connections aborted by [`Fault::Reset`].
    pub resets: u64,
    /// Connections degraded to a trickle by [`Fault::Stall`].
    pub stalls: u64,
    /// Connections eaten by [`Fault::BlackHole`] or the global black-hole
    /// switch.
    pub black_holes: u64,
    /// Total bytes forwarded (both directions, after faults).
    pub bytes_forwarded: u64,
}

#[derive(Default)]
struct StatsInner {
    connections: AtomicU64,
    upstream_failures: AtomicU64,
    delays: AtomicU64,
    truncations: AtomicU64,
    corruptions: AtomicU64,
    resets: AtomicU64,
    stalls: AtomicU64,
    black_holes: AtomicU64,
    bytes_forwarded: AtomicU64,
}

impl StatsInner {
    fn count_fault(&self, kind: &'static str) {
        let counter = match kind {
            "delay" => &self.delays,
            "truncate" => &self.truncations,
            "corrupt" => &self.corruptions,
            "reset" => &self.resets,
            "stall" => &self.stalls,
            "blackhole" => &self.black_holes,
            _ => return,
        };
        counter.fetch_add(1, Ordering::Relaxed);
        // Mirror into the process-wide metrics registry so a chaos-harness
        // host scraping /metrics sees injected faults next to the serving
        // families.
        dssddi_obs::global()
            .counter_with(
                "dssddi_chaos_faults_total",
                "Faults the chaos proxy injected, by kind",
                &[("kind", kind)],
            )
            .inc();
    }

    fn snapshot(&self) -> FaultCounts {
        FaultCounts {
            connections: self.connections.load(Ordering::Relaxed),
            upstream_failures: self.upstream_failures.load(Ordering::Relaxed),
            delays: self.delays.load(Ordering::Relaxed),
            truncations: self.truncations.load(Ordering::Relaxed),
            corruptions: self.corruptions.load(Ordering::Relaxed),
            resets: self.resets.load(Ordering::Relaxed),
            stalls: self.stalls.load(Ordering::Relaxed),
            black_holes: self.black_holes.load(Ordering::Relaxed),
            bytes_forwarded: self.bytes_forwarded.load(Ordering::Relaxed),
        }
    }
}

/// A bound, not-yet-running chaos proxy.
pub struct ChaosProxy {
    listener: TcpListener,
    upstream: SocketAddr,
    plan: FaultPlan,
}

impl ChaosProxy {
    /// Binds the proxy's listening socket. Use port `0` for an ephemeral
    /// port and read it back with [`ChaosProxy::local_addr`]. Traffic is
    /// relayed to `upstream` with the plan's faults applied.
    pub fn bind(
        listen: SocketAddr,
        upstream: SocketAddr,
        plan: FaultPlan,
    ) -> Result<Self, ChaosError> {
        let listener = TcpListener::bind(listen).map_err(|e| ChaosError::Io {
            what: format!("binding chaos listener: {e}"),
        })?;
        Ok(Self {
            listener,
            upstream,
            plan,
        })
    }

    /// The address clients should connect to.
    pub fn local_addr(&self) -> Result<SocketAddr, ChaosError> {
        self.listener.local_addr().map_err(|e| ChaosError::Io {
            what: format!("reading chaos listener address: {e}"),
        })
    }

    /// Starts the accept loop on its own thread and returns the handle
    /// controlling the running proxy.
    pub fn spawn(self) -> Result<ChaosHandle, ChaosError> {
        let addr = self.local_addr()?;
        self.listener
            .set_nonblocking(true)
            .map_err(|e| ChaosError::Io {
                what: format!("arming nonblocking accept: {e}"),
            })?;
        let stats = Arc::new(StatsInner::default());
        let shutdown = Arc::new(AtomicBool::new(false));
        let black_hole = Arc::new(AtomicBool::new(false));
        let accept = {
            let stats = Arc::clone(&stats);
            let shutdown = Arc::clone(&shutdown);
            let black_hole = Arc::clone(&black_hole);
            std::thread::spawn(move || {
                accept_loop(
                    self.listener,
                    self.upstream,
                    self.plan,
                    stats,
                    shutdown,
                    black_hole,
                )
            })
        };
        Ok(ChaosHandle {
            addr,
            stats,
            shutdown,
            black_hole,
            accept: Some(accept),
        })
    }
}

/// A running chaos proxy. Dropping the handle without calling
/// [`ChaosHandle::shutdown`] leaves the proxy running for the process
/// lifetime; tests should shut it down so no threads leak.
pub struct ChaosHandle {
    addr: SocketAddr,
    stats: Arc<StatsInner>,
    shutdown: Arc<AtomicBool>,
    black_hole: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl ChaosHandle {
    /// The address clients should connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A snapshot of the typed per-fault counters.
    pub fn counts(&self) -> FaultCounts {
        self.stats.snapshot()
    }

    /// Turns the global black-hole switch on or off. While on, every
    /// proxied connection — existing and new — forwards nothing in either
    /// direction, exactly as if the endpoint behind the proxy died without
    /// closing its sockets. Failover drills flip this mid-run.
    pub fn set_black_hole(&self, on: bool) {
        self.black_hole.store(on, Ordering::SeqCst);
    }

    /// Stops accepting, severs every proxied connection and joins all
    /// proxy threads. Bounded: every thread polls the shutdown flag at
    /// least every [`POLL_INTERVAL`].
    pub fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for ChaosHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChaosHandle")
            .field("addr", &self.addr)
            .field("counts", &self.stats.snapshot())
            .finish()
    }
}

fn accept_loop(
    listener: TcpListener,
    upstream: SocketAddr,
    plan: FaultPlan,
    stats: Arc<StatsInner>,
    shutdown: Arc<AtomicBool>,
    black_hole: Arc<AtomicBool>,
) {
    let mut pumps: Vec<JoinHandle<()>> = Vec::new();
    let mut index = 0u64;
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((client, _)) => {
                stats.connections.fetch_add(1, Ordering::Relaxed);
                dssddi_obs::global()
                    .counter(
                        "dssddi_chaos_connections_total",
                        "Connections the chaos proxy accepted",
                    )
                    .inc();
                let spec = plan.for_connection(index);
                let seed = plan.seed() ^ index.wrapping_mul(0x9E3779B97F4A7C15);
                index += 1;
                pumps.retain(|p| !p.is_finished());
                let stats = Arc::clone(&stats);
                let shutdown = Arc::clone(&shutdown);
                let black_hole = Arc::clone(&black_hole);
                pumps.push(std::thread::spawn(move || {
                    serve_connection(client, upstream, spec, seed, stats, shutdown, black_hole);
                }));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL_INTERVAL);
            }
            Err(_) => std::thread::sleep(POLL_INTERVAL),
        }
    }
    // Pumps poll the shutdown flag between reads, so these joins are
    // bounded — no leaked threads after `ChaosHandle::shutdown`.
    for pump in pumps {
        let _ = pump.join();
    }
}

fn serve_connection(
    client: TcpStream,
    upstream: SocketAddr,
    spec: FaultSpec,
    seed: u64,
    stats: Arc<StatsInner>,
    shutdown: Arc<AtomicBool>,
    black_hole: Arc<AtomicBool>,
) {
    client.set_nodelay(true).ok();
    if matches!(spec.fault, Fault::Reset) {
        // Give the client a moment to write its request, then drop the
        // socket with those bytes unread: the kernel answers with RST,
        // surfacing as a typed I/O error (or a closed connection if the
        // request had not been written yet) on the client.
        stats.count_fault("reset");
        std::thread::sleep(Duration::from_millis(30));
        let _ = client.shutdown(Shutdown::Both);
        return;
    }
    let server = match TcpStream::connect_timeout(&upstream, UPSTREAM_CONNECT_TIMEOUT) {
        Ok(server) => server,
        Err(_) => {
            stats.upstream_failures.fetch_add(1, Ordering::Relaxed);
            dssddi_obs::global()
                .counter(
                    "dssddi_chaos_upstream_failures_total",
                    "Connections whose upstream leg failed to connect",
                )
                .inc();
            let _ = client.shutdown(Shutdown::Both);
            return;
        }
    };
    server.set_nodelay(true).ok();
    let (Ok(client_r), Ok(server_r)) = (client.try_clone(), server.try_clone()) else {
        let _ = client.shutdown(Shutdown::Both);
        let _ = server.shutdown(Shutdown::Both);
        return;
    };
    // One flag per connection: either pump failing (or a severing fault
    // firing) tears down both halves.
    let dead = Arc::new(AtomicBool::new(false));
    // Fault-fired latch shared by both pumps so a `Both`-direction fault
    // is counted once per connection, not once per direction.
    let fired = Arc::new(AtomicBool::new(false));
    let request_pump = {
        let fault = if spec.direction.applies_to_request() {
            spec.fault
        } else {
            Fault::None
        };
        let ctx = PumpCtx {
            fault,
            rng: seed,
            stats: Arc::clone(&stats),
            shutdown: Arc::clone(&shutdown),
            black_hole: Arc::clone(&black_hole),
            dead: Arc::clone(&dead),
            fired: Arc::clone(&fired),
        };
        std::thread::spawn(move || pump(client_r, server, ctx))
    };
    let response_fault = if spec.direction.applies_to_response() {
        spec.fault
    } else {
        Fault::None
    };
    let ctx = PumpCtx {
        fault: response_fault,
        rng: seed ^ 0xD1B5_4A32_D192_ED03,
        stats,
        shutdown,
        black_hole,
        dead,
        fired,
    };
    pump(server_r, client, ctx);
    let _ = request_pump.join();
}

struct PumpCtx {
    fault: Fault,
    rng: u64,
    stats: Arc<StatsInner>,
    shutdown: Arc<AtomicBool>,
    black_hole: Arc<AtomicBool>,
    dead: Arc<AtomicBool>,
    fired: Arc<AtomicBool>,
}

impl PumpCtx {
    /// Counts this connection's fault once, no matter which pump (or how
    /// many chunks) trigger it.
    fn count_once(&self) {
        if !self.fired.swap(true, Ordering::Relaxed) {
            self.stats.count_fault(self.fault.kind_name());
        }
    }

    fn next_u64(&mut self) -> u64 {
        self.rng = self.rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Relays one direction of a proxied connection, applying `ctx.fault` to
/// the byte stream. Returns when the source side reaches EOF, either side
/// fails, a severing fault fires, or the proxy shuts down.
fn pump(mut from: TcpStream, mut to: TcpStream, mut ctx: PumpCtx) {
    from.set_read_timeout(Some(POLL_INTERVAL)).ok();
    let mut buf = vec![0u8; 16 * 1024];
    let mut forwarded = 0u64;
    let mut blackholed = false;
    loop {
        if ctx.shutdown.load(Ordering::SeqCst) || ctx.dead.load(Ordering::SeqCst) {
            sever(&from, &to, &ctx.dead);
            return;
        }
        let n = match from.read(&mut buf) {
            Ok(0) => {
                // Clean EOF: half-close the forward side so the peer sees
                // the same EOF, and let the opposite pump drain.
                let _ = to.shutdown(Shutdown::Write);
                return;
            }
            Ok(n) => n,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                continue;
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => {
                sever(&from, &to, &ctx.dead);
                return;
            }
        };
        let chunk: &[u8] = buf.get(..n).unwrap_or(&[]);
        // The global black-hole switch (failover drills) overrides the
        // scheduled fault: eat everything, both directions, all
        // connections.
        if ctx.black_hole.load(Ordering::SeqCst) || matches!(ctx.fault, Fault::BlackHole) {
            if !blackholed {
                blackholed = true;
                if matches!(ctx.fault, Fault::BlackHole) {
                    ctx.count_once();
                } else {
                    ctx.stats.black_holes.fetch_add(1, Ordering::Relaxed);
                }
            }
            forwarded += n as u64;
            continue;
        }
        match ctx.fault {
            Fault::None | Fault::BlackHole => {
                if forward(&mut to, chunk, &ctx.stats).is_err() {
                    sever(&from, &to, &ctx.dead);
                    return;
                }
            }
            Fault::Delay { ms, jitter_ms } => {
                ctx.count_once();
                let jitter = if jitter_ms == 0 {
                    0
                } else {
                    ctx.next_u64() % (jitter_ms + 1)
                };
                std::thread::sleep(Duration::from_millis(ms + jitter));
                if forward(&mut to, chunk, &ctx.stats).is_err() {
                    sever(&from, &to, &ctx.dead);
                    return;
                }
            }
            Fault::Truncate { after } => {
                let remaining = after.saturating_sub(forwarded);
                let keep = (remaining as usize).min(chunk.len());
                let kept: &[u8] = chunk.get(..keep).unwrap_or(&[]);
                let exhausted = keep < chunk.len();
                if forward(&mut to, kept, &ctx.stats).is_err() || exhausted {
                    if exhausted {
                        ctx.count_once();
                    }
                    sever(&from, &to, &ctx.dead);
                    return;
                }
            }
            Fault::CorruptByte { at } => {
                let end = forwarded + chunk.len() as u64;
                if at >= forwarded && at < end {
                    ctx.count_once();
                    let mut copy = chunk.to_vec();
                    if let Some(byte) = copy.get_mut((at - forwarded) as usize) {
                        *byte ^= 0x40;
                    }
                    if forward(&mut to, &copy, &ctx.stats).is_err() {
                        sever(&from, &to, &ctx.dead);
                        return;
                    }
                } else if forward(&mut to, chunk, &ctx.stats).is_err() {
                    sever(&from, &to, &ctx.dead);
                    return;
                }
            }
            Fault::Stall { first, pause_ms } => {
                let fast = first.saturating_sub(forwarded);
                let keep = (fast as usize).min(chunk.len());
                let (head, tail) = chunk.split_at(keep.min(chunk.len()));
                if forward(&mut to, head, &ctx.stats).is_err() {
                    sever(&from, &to, &ctx.dead);
                    return;
                }
                if !tail.is_empty() {
                    ctx.count_once();
                }
                // Trickle the remainder one byte at a time, observing the
                // shutdown flag between pauses so a hung-forever stall
                // still joins promptly.
                for byte in tail.iter() {
                    let mut slept = Duration::ZERO;
                    while slept < Duration::from_millis(pause_ms) {
                        if ctx.shutdown.load(Ordering::SeqCst) || ctx.dead.load(Ordering::SeqCst) {
                            sever(&from, &to, &ctx.dead);
                            return;
                        }
                        std::thread::sleep(POLL_INTERVAL.min(Duration::from_millis(pause_ms)));
                        slept += POLL_INTERVAL;
                    }
                    if forward(&mut to, std::slice::from_ref(byte), &ctx.stats).is_err() {
                        sever(&from, &to, &ctx.dead);
                        return;
                    }
                }
            }
            Fault::Reset => {
                // Handled at accept; unreachable here, forward as clean.
                if forward(&mut to, chunk, &ctx.stats).is_err() {
                    sever(&from, &to, &ctx.dead);
                    return;
                }
            }
        }
        forwarded += n as u64;
    }
}

fn forward(to: &mut TcpStream, chunk: &[u8], stats: &StatsInner) -> std::io::Result<()> {
    if chunk.is_empty() {
        return Ok(());
    }
    to.write_all(chunk)?;
    stats
        .bytes_forwarded
        .fetch_add(chunk.len() as u64, Ordering::Relaxed);
    Ok(())
}

/// Tears down both halves of a proxied connection and signals the sibling
/// pump via the shared `dead` flag.
fn sever(a: &TcpStream, b: &TcpStream, dead: &AtomicBool) {
    dead.store(true, Ordering::SeqCst);
    let _ = a.shutdown(Shutdown::Both);
    let _ = b.shutdown(Shutdown::Both);
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // tests may panic freely
mod tests {
    use super::*;

    #[test]
    fn plan_parses_the_loadgen_format() {
        let plan =
            FaultPlan::parse("7:none,delay:5:10,trunc:100@req,corrupt:30,reset,stall,blackhole")
                .unwrap();
        assert_eq!(plan.seed(), 7);
        assert_eq!(plan.for_connection(0).fault, Fault::None);
        assert_eq!(
            plan.for_connection(1).fault,
            Fault::Delay {
                ms: 5,
                jitter_ms: 10
            }
        );
        let trunc = plan.for_connection(2);
        assert_eq!(trunc.fault, Fault::Truncate { after: 100 });
        assert_eq!(trunc.direction, Direction::Request);
        assert_eq!(plan.for_connection(3).fault, Fault::CorruptByte { at: 30 });
        assert_eq!(plan.for_connection(4).fault, Fault::Reset);
        assert_eq!(
            plan.for_connection(5).fault,
            Fault::Stall {
                first: 20,
                pause_ms: 150
            }
        );
        assert_eq!(plan.for_connection(6).fault, Fault::BlackHole);
        // Round-robin wraps.
        assert_eq!(plan.for_connection(7).fault, Fault::None);
    }

    #[test]
    fn plan_parse_rejects_garbage() {
        assert!(FaultPlan::parse("no-seed").is_err());
        assert!(FaultPlan::parse("x:none").is_err());
        assert!(FaultPlan::parse("1:frob").is_err());
        assert!(FaultPlan::parse("1:delay").is_err());
        assert!(FaultPlan::parse("1:none@sideways").is_err());
        assert!(FaultPlan::parse("1:").is_err());
    }

    #[test]
    fn mixed_plan_covers_every_fault_kind() {
        let plan = FaultPlan::mixed(3);
        let kinds: std::collections::BTreeSet<&'static str> = (0..12)
            .map(|i| plan.for_connection(i).fault.kind_name())
            .collect();
        for kind in [
            "delay",
            "truncate",
            "corrupt",
            "reset",
            "stall",
            "blackhole",
        ] {
            assert!(kinds.contains(kind), "mixed plan misses {kind}");
        }
    }

    #[test]
    fn clean_proxy_relays_bytes_unmodified() {
        // An echo server behind a clean proxy: bytes come back identical.
        let upstream = TcpListener::bind("127.0.0.1:0").unwrap();
        let upstream_addr = upstream.local_addr().unwrap();
        let echo = std::thread::spawn(move || {
            let (mut conn, _) = upstream.accept().unwrap();
            let mut buf = [0u8; 64];
            loop {
                match conn.read(&mut buf) {
                    Ok(0) | Err(_) => return,
                    Ok(n) => conn.write_all(&buf[..n]).unwrap(),
                }
            }
        });
        let proxy = ChaosProxy::bind(
            "127.0.0.1:0".parse().unwrap(),
            upstream_addr,
            FaultPlan::clean(1),
        )
        .unwrap()
        .spawn()
        .unwrap();
        let mut client = TcpStream::connect(proxy.addr()).unwrap();
        client.write_all(b"hello chaos").unwrap();
        let mut back = [0u8; 11];
        client.read_exact(&mut back).unwrap();
        assert_eq!(&back, b"hello chaos");
        drop(client);
        echo.join().unwrap();
        let counts = proxy.counts();
        assert_eq!(counts.connections, 1);
        assert!(counts.bytes_forwarded >= 22);
        assert_eq!(counts.truncations + counts.resets + counts.black_holes, 0);
        proxy.shutdown();
    }

    #[test]
    fn truncate_severs_after_the_exact_offset() {
        let upstream = TcpListener::bind("127.0.0.1:0").unwrap();
        let upstream_addr = upstream.local_addr().unwrap();
        let echo = std::thread::spawn(move || {
            let (mut conn, _) = upstream.accept().unwrap();
            let mut buf = [0u8; 64];
            let Ok(n) = conn.read(&mut buf) else { return };
            let _ = conn.write_all(&buf[..n]);
            // Keep the socket open; the proxy severs it for us.
            let _ = conn.read(&mut buf);
        });
        let plan = FaultPlan::new(1, vec![FaultSpec::response(Fault::Truncate { after: 4 })]);
        let proxy = ChaosProxy::bind("127.0.0.1:0".parse().unwrap(), upstream_addr, plan)
            .unwrap()
            .spawn()
            .unwrap();
        let mut client = TcpStream::connect(proxy.addr()).unwrap();
        client.write_all(b"0123456789").unwrap();
        let mut got = Vec::new();
        client.read_to_end(&mut got).ok();
        assert_eq!(got, b"0123", "exactly 4 bytes must survive the cut");
        assert_eq!(proxy.counts().truncations, 1);
        proxy.shutdown();
        echo.join().unwrap();
    }

    #[test]
    fn shutdown_joins_all_threads_even_mid_stall() {
        let upstream = TcpListener::bind("127.0.0.1:0").unwrap();
        let upstream_addr = upstream.local_addr().unwrap();
        let echo = std::thread::spawn(move || {
            let (mut conn, _) = upstream.accept().unwrap();
            let mut buf = [0u8; 64];
            let Ok(n) = conn.read(&mut buf) else { return };
            let _ = conn.write_all(&buf[..n]);
            let _ = conn.read(&mut buf);
        });
        let plan = FaultPlan::new(
            1,
            vec![FaultSpec::response(Fault::Stall {
                first: 2,
                pause_ms: 10_000,
            })],
        );
        let proxy = ChaosProxy::bind("127.0.0.1:0".parse().unwrap(), upstream_addr, plan)
            .unwrap()
            .spawn()
            .unwrap();
        let mut client = TcpStream::connect(proxy.addr()).unwrap();
        client.write_all(b"0123456789").unwrap();
        client
            .set_read_timeout(Some(Duration::from_millis(100)))
            .unwrap();
        let mut buf = [0u8; 16];
        let _ = client.read(&mut buf); // first trickle bytes or timeout
        let started = std::time::Instant::now();
        proxy.shutdown(); // must not wait out the 10 s stall pause
        assert!(
            started.elapsed() < Duration::from_secs(2),
            "shutdown must interrupt a mid-stall pump"
        );
        echo.join().unwrap();
    }
}
