//! Shared harness for the experiment binaries.
//!
//! Every table and figure of the paper's evaluation section has a dedicated
//! binary under `src/bin/`; this library provides the common machinery:
//! world generation (registry, DDI graph, cohort, KG drug features, 5:3:2
//! split), method training, metric tables and Suggestion Satisfaction
//! scoring. All binaries accept:
//!
//! * `--patients <N>` — cohort size (default 1200; the paper uses 4157),
//! * `--seed <S>` — random seed (default 7),
//! * `--full` — paper-scale configuration (4157 patients, 400/1000 epochs,
//!   hidden size 64); without it a reduced configuration is used so every
//!   experiment finishes in minutes on a laptop.

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::SeedableRng;

use dssddi_baselines::{
    BiparGcnRecommender, CauseRecRecommender, EccRecommender, GcmcRecommender, LightGcnRecommender,
    Recommender, SafeDrugRecommender, SvmRecommender, UserSim,
};
use dssddi_core::{
    ms_module::explain_suggestion, Backbone, DecisionService, Dssddi, DssddiConfig, MsModuleConfig,
    ServiceBuilder,
};
use dssddi_data::{
    generate_chronic_cohort, generate_ddi_graph, pretrained_drug_embeddings, split_patients,
    ChronicCohort, ChronicConfig, DdiConfig, DrkgConfig, DrugRegistry, Split,
};
use dssddi_graph::{BipartiteGraph, SignedGraph};
use dssddi_ml::{ndcg_at_k, precision_at_k, recall_at_k, top_k_indices};
use dssddi_tensor::Matrix;

/// A failed experiment-harness stage: which stage, and the underlying
/// error's message. Experiment binaries print it and exit non-zero instead
/// of panicking mid-table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExperimentError {
    /// The stage that failed (e.g. `"DDI generation"`, `"GCMC training"`).
    pub stage: &'static str,
    /// The underlying error, rendered.
    pub message: String,
}

impl std::fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} failed: {}", self.stage, self.message)
    }
}

impl std::error::Error for ExperimentError {}

/// Maps an underlying error into an [`ExperimentError`] naming its stage.
fn stage<E: std::fmt::Display>(stage: &'static str) -> impl FnOnce(E) -> ExperimentError {
    move |error| ExperimentError {
        stage,
        message: error.to_string(),
    }
}

/// Command-line options shared by every experiment binary.
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Number of cohort patients to generate.
    pub n_patients: usize,
    /// Base random seed.
    pub seed: u64,
    /// Paper-scale configuration (slow) instead of the reduced one.
    pub full: bool,
}

impl Default for RunOptions {
    fn default() -> Self {
        Self {
            n_patients: 1200,
            seed: 7,
            full: false,
        }
    }
}

impl RunOptions {
    /// Parses `--patients`, `--seed` and `--full` from the process arguments.
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().collect();
        let mut opts = Self::default();
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--patients" if i + 1 < args.len() => {
                    opts.n_patients = args[i + 1].parse().unwrap_or(opts.n_patients);
                    i += 1;
                }
                "--seed" if i + 1 < args.len() => {
                    opts.seed = args[i + 1].parse().unwrap_or(opts.seed);
                    i += 1;
                }
                "--full" => {
                    opts.full = true;
                    opts.n_patients = 4157;
                }
                _ => {}
            }
            i += 1;
        }
        opts
    }

    /// The DSSDDI configuration matching the requested scale.
    pub fn dssddi_config(&self) -> DssddiConfig {
        if self.full {
            DssddiConfig::paper()
        } else {
            let mut config = DssddiConfig::default();
            config.ddi.hidden_dim = 32;
            config.ddi.epochs = 200;
            config.md.hidden_dim = 32;
            config.md.epochs = 400;
            config
        }
    }
}

/// The generated chronic-disease evaluation world.
pub struct ChronicWorld {
    /// The 86-drug formulary.
    pub registry: DrugRegistry,
    /// The signed DDI graph (97 synergistic + 243 antagonistic pairs).
    pub ddi: SignedGraph,
    /// The synthetic cohort.
    pub cohort: ChronicCohort,
    /// Pre-trained (TransE) drug features used as original drug features.
    pub drug_features: Matrix,
    /// The 5:3:2 patient split.
    pub split: Split,
}

impl ChronicWorld {
    /// Generates the chronic-disease world for the given options.
    pub fn generate(opts: &RunOptions) -> Result<Self, ExperimentError> {
        let registry = DrugRegistry::standard();
        let mut rng = StdRng::seed_from_u64(opts.seed);
        let ddi = generate_ddi_graph(&registry, &DdiConfig::default(), &mut rng)
            .map_err(stage("DDI generation"))?;
        let cohort = generate_chronic_cohort(
            &registry,
            &ddi,
            &ChronicConfig {
                n_patients: opts.n_patients,
                ..Default::default()
            },
            &mut rng,
        )
        .map_err(stage("cohort generation"))?;
        let kg_dim = if opts.full { 64 } else { 32 };
        let drug_features = pretrained_drug_embeddings(
            &registry,
            &DrkgConfig {
                dim: kg_dim,
                epochs: if opts.full { 60 } else { 25 },
                ..Default::default()
            },
            &mut rng,
        )
        .map_err(stage("TransE pre-training"))?;
        let split = split_patients(cohort.n_patients(), (5, 3, 2), &mut rng)
            .map_err(stage("patient split"))?;
        Ok(Self {
            registry,
            ddi,
            cohort,
            drug_features,
            split,
        })
    }

    /// Features of the observed (training) patients.
    pub fn train_features(&self) -> Matrix {
        self.cohort.features().select_rows(&self.split.train)
    }

    /// Labels of the observed (training) patients.
    pub fn train_labels(&self) -> Matrix {
        self.cohort.labels().select_rows(&self.split.train)
    }

    /// The training medication-use bipartite graph.
    pub fn train_graph(&self) -> Result<BipartiteGraph, ExperimentError> {
        self.cohort
            .bipartite_graph(&self.split.train)
            .map_err(stage("training graph construction"))
    }

    /// Features of the held-out test patients.
    pub fn test_features(&self) -> Matrix {
        self.cohort.features().select_rows(&self.split.test)
    }

    /// Labels of the held-out test patients.
    pub fn test_labels(&self) -> Matrix {
        self.cohort.labels().select_rows(&self.split.test)
    }
}

/// A named score matrix produced by one method on the test patients.
pub struct MethodScores {
    /// Method name (row label of the tables).
    pub name: String,
    /// Score matrix (test patients × drugs).
    pub scores: Matrix,
}

/// Trains and evaluates every baseline of Table I on the chronic world.
pub fn run_chronic_baselines(
    world: &ChronicWorld,
    opts: &RunOptions,
) -> Result<Vec<MethodScores>, ExperimentError> {
    let train_x = world.train_features();
    let train_y = world.train_labels();
    let train_graph = world.train_graph()?;
    let test_x = world.test_features();
    let epochs = if opts.full { 300 } else { 120 };
    let graph_cfg = dssddi_baselines::graph_models::GraphBaselineConfig {
        hidden_dim: if opts.full { 64 } else { 32 },
        epochs,
        ..Default::default()
    };
    let neural_cfg = dssddi_baselines::neural::NeuralConfig {
        hidden_dim: if opts.full { 64 } else { 32 },
        epochs,
        ..Default::default()
    };
    let mut out = Vec::new();
    let mut rng = StdRng::seed_from_u64(opts.seed + 1);

    let usersim = UserSim::fit(&train_x, &train_y).map_err(stage("UserSim training"))?;
    out.push(MethodScores {
        name: "UserSim".into(),
        scores: usersim
            .predict_scores(&test_x)
            .map_err(stage("UserSim scoring"))?,
    });

    let ecc = EccRecommender::fit(
        &train_x,
        &train_y,
        &dssddi_ml::EccConfig::default(),
        &mut rng,
    )
    .map_err(stage("ECC training"))?;
    out.push(MethodScores {
        name: "ECC".into(),
        scores: ecc.predict_scores(&test_x).map_err(stage("ECC scoring"))?,
    });

    let svm = SvmRecommender::fit(
        &train_x,
        &train_y,
        &dssddi_ml::SvmConfig {
            epochs: 40,
            ..Default::default()
        },
    )
    .map_err(stage("SVM training"))?;
    out.push(MethodScores {
        name: "SVM".into(),
        scores: svm.predict_scores(&test_x).map_err(stage("SVM scoring"))?,
    });

    let gcmc = GcmcRecommender::fit(&train_x, &train_graph, &graph_cfg, &mut rng)
        .map_err(stage("GCMC training"))?;
    out.push(MethodScores {
        name: "GCMC".into(),
        scores: gcmc
            .predict_scores(&test_x)
            .map_err(stage("GCMC scoring"))?,
    });

    let lightgcn = LightGcnRecommender::fit(&train_x, &train_graph, &graph_cfg, &mut rng)
        .map_err(stage("LightGCN training"))?;
    out.push(MethodScores {
        name: "LightGCN".into(),
        scores: lightgcn
            .predict_scores(&test_x)
            .map_err(stage("LightGCN scoring"))?,
    });

    let safedrug =
        SafeDrugRecommender::fit(&train_x, &train_y, &world.ddi, 0.05, &neural_cfg, &mut rng)
            .map_err(stage("SafeDrug training"))?;
    out.push(MethodScores {
        name: "SafeDrug".into(),
        scores: safedrug
            .predict_scores(&test_x)
            .map_err(stage("SafeDrug scoring"))?,
    });

    let bipar = BiparGcnRecommender::fit(&train_x, &train_graph, &graph_cfg, &mut rng)
        .map_err(stage("Bipar-GCN training"))?;
    out.push(MethodScores {
        name: "Bipar-GCN".into(),
        scores: bipar
            .predict_scores(&test_x)
            .map_err(stage("Bipar-GCN scoring"))?,
    });

    let causerec = CauseRecRecommender::fit(&train_x, &train_y, 0.2, &neural_cfg, &mut rng)
        .map_err(stage("CauseRec training"))?;
    out.push(MethodScores {
        name: "CauseRec".into(),
        scores: causerec
            .predict_scores(&test_x)
            .map_err(stage("CauseRec scoring"))?,
    });

    Ok(out)
}

/// Trains a DSSDDI variant with the given backbone and returns its scores on
/// the test patients, together with the fitted decision service.
pub fn run_dssddi_variant(
    world: &ChronicWorld,
    opts: &RunOptions,
    backbone: Backbone,
) -> Result<(MethodScores, DecisionService), ExperimentError> {
    let mut rng = StdRng::seed_from_u64(opts.seed + 2);
    let service = ServiceBuilder::new()
        .config(opts.dssddi_config())
        .backbone(backbone)
        .fit_chronic(
            &world.cohort,
            &world.split.train,
            &world.drug_features,
            &world.ddi,
            &mut rng,
        )
        .map_err(stage("DSSDDI training"))?;
    let scores = service
        .predict_scores(&world.test_features())
        .map_err(stage("DSSDDI scoring"))?;
    Ok((
        MethodScores {
            name: format!("DSSDDI({})", backbone.name()),
            scores,
        },
        service,
    ))
}

/// Trains the Table II ablation variants (w/o DDI, one-hot, KG, DDIGCN) and
/// returns their scores on the test patients.
pub fn run_ablation_variants(
    world: &ChronicWorld,
    opts: &RunOptions,
) -> Result<Vec<MethodScores>, ExperimentError> {
    let mut out = Vec::new();
    let hidden = opts.dssddi_config().md.hidden_dim;
    let n_drugs = world.registry.len();

    // w/o DDI: no relation embeddings at all.
    let mut config = opts.dssddi_config();
    config.md.use_ddi_embeddings = false;
    let mut rng = StdRng::seed_from_u64(opts.seed + 3);
    let service = ServiceBuilder::new()
        .config(config)
        .fit_chronic(
            &world.cohort,
            &world.split.train,
            &world.drug_features,
            &world.ddi,
            &mut rng,
        )
        .map_err(stage("w/o DDI variant training"))?;
    out.push(MethodScores {
        name: "w/o DDI".into(),
        scores: service
            .predict_scores(&world.test_features())
            .map_err(stage("w/o DDI variant scoring"))?,
    });

    // One-hot relation embeddings (identity truncated/padded to hidden dim).
    let one_hot = Matrix::from_fn(
        n_drugs,
        hidden,
        |r, c| if r % hidden == c { 1.0 } else { 0.0 },
    );
    out.push(run_override_variant(world, opts, "One-hot", &one_hot)?);

    // KG pre-trained relation embeddings (TransE, padded to hidden dim).
    let kg = pad_to_width(&world.drug_features, hidden);
    out.push(run_override_variant(world, opts, "KG", &kg)?);

    // Full DDIGCN (SGCN backbone, the best of Table I).
    let (ddigcn, _) = run_dssddi_variant(world, opts, Backbone::Sgcn)?;
    out.push(MethodScores {
        name: "DDIGCN".into(),
        scores: ddigcn.scores,
    });

    Ok(out)
}

fn run_override_variant(
    world: &ChronicWorld,
    opts: &RunOptions,
    name: &str,
    embeddings: &Matrix,
) -> Result<MethodScores, ExperimentError> {
    let config = opts.dssddi_config();
    let mut rng = StdRng::seed_from_u64(opts.seed + 4);
    let train_features = world.train_features();
    let train_graph = world.train_graph()?;
    let system = Dssddi::fit_with_relation_embeddings(
        &train_features,
        &train_graph,
        &world.drug_features,
        &world.ddi,
        Some(embeddings),
        &config,
        &mut rng,
    )
    .map_err(stage("ablation variant training"))?;
    Ok(MethodScores {
        name: name.into(),
        scores: system
            .predict_scores(&world.test_features())
            .map_err(stage("ablation variant scoring"))?,
    })
}

/// Pads (with zeros) or truncates a matrix to the requested number of columns.
pub fn pad_to_width(m: &Matrix, width: usize) -> Matrix {
    Matrix::from_fn(m.rows(), width, |r, c| {
        if c < m.cols() {
            m.get(r, c)
        } else {
            0.0
        }
    })
}

/// Prints a Table I/II/IV-style block: Precision@k, Recall@k and NDCG@k for
/// every method at every cutoff in `ks`.
pub fn print_metric_table(title: &str, methods: &[MethodScores], labels: &Matrix, ks: &[usize]) {
    println!("\n=== {title} ===");
    let mut header = format!("{:<16}", "Method");
    for &k in ks {
        header.push_str(&format!("  P@{k:<5} R@{k:<5} N@{k:<5}"));
    }
    println!("{header}");
    for method in methods {
        let mut row = format!("{:<16}", method.name);
        for &k in ks {
            let p = precision_at_k(&method.scores, labels, k).unwrap_or(0.0);
            let r = recall_at_k(&method.scores, labels, k).unwrap_or(0.0);
            let n = ndcg_at_k(&method.scores, labels, k).unwrap_or(0.0);
            row.push_str(&format!("  {p:.4} {r:.4} {n:.4}"));
        }
        println!("{row}");
    }
}

/// Mean Suggestion Satisfaction at `k` over the test patients for one score
/// matrix (the quantity reported in Table III).
pub fn mean_ss_at_k(scores: &Matrix, ddi: &SignedGraph, k: usize, alpha: f64) -> f64 {
    let ms = MsModuleConfig {
        alpha,
        ..Default::default()
    };
    let mut total = 0.0f64;
    let mut count = 0usize;
    for p in 0..scores.rows() {
        let top = top_k_indices(scores.row(p), k);
        if let Ok(explanation) = explain_suggestion(ddi, &top, &ms) {
            total += explanation.suggestion_satisfaction;
            count += 1;
        }
    }
    if count == 0 {
        0.0
    } else {
        total / count as f64
    }
}

/// Prints a Table III-style Suggestion Satisfaction block.
pub fn print_ss_table(title: &str, methods: &[MethodScores], ddi: &SignedGraph, ks: &[usize]) {
    println!("\n=== {title} ===");
    let mut header = format!("{:<16}", "Method");
    for &k in ks {
        header.push_str(&format!("  SS@{k:<6}"));
    }
    println!("{header}");
    for method in methods {
        let mut row = format!("{:<16}", method.name);
        for &k in ks {
            row.push_str(&format!(
                "  {:.4}  ",
                mean_ss_at_k(&method.scores, ddi, k, 0.5)
            ));
        }
        println!("{row}");
    }
}

/// Formats a drug list with names for the case-study figures.
pub fn format_drugs(registry: &DrugRegistry, drugs: &[usize]) -> String {
    drugs
        .iter()
        .map(|&d| {
            registry
                .drug(d)
                .map(|drug| format!("{} (DID {d})", drug.name))
                .unwrap_or_else(|| format!("DID {d}"))
        })
        .collect::<Vec<_>>()
        .join(", ")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_opts() -> RunOptions {
        RunOptions {
            n_patients: 60,
            seed: 3,
            full: false,
        }
    }

    #[test]
    fn world_generation_and_split_shapes() {
        let world = ChronicWorld::generate(&tiny_opts()).expect("world");
        assert_eq!(world.cohort.n_patients(), 60);
        assert_eq!(world.split.len(), 60);
        assert_eq!(world.train_features().rows(), world.split.train.len());
        assert_eq!(world.test_labels().rows(), world.split.test.len());
        assert_eq!(world.drug_features.rows(), 86);
    }

    #[test]
    fn pad_to_width_pads_and_truncates() {
        let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let wide = pad_to_width(&m, 4);
        assert_eq!(wide.shape(), (2, 4));
        assert_eq!(wide.get(0, 3), 0.0);
        let narrow = pad_to_width(&m, 1);
        assert_eq!(narrow.shape(), (2, 1));
        assert_eq!(narrow.get(1, 0), 3.0);
    }

    #[test]
    fn mean_ss_is_in_range() {
        let world = ChronicWorld::generate(&tiny_opts()).expect("world");
        let scores = Matrix::rand_uniform(5, 86, 0.0, 1.0, &mut StdRng::seed_from_u64(1));
        let ss = mean_ss_at_k(&scores, &world.ddi, 3, 0.5);
        assert!((0.0..=1.5).contains(&ss));
    }

    #[test]
    fn format_drugs_uses_registry_names() {
        let registry = DrugRegistry::standard();
        let s = format_drugs(&registry, &[46, 47]);
        assert!(s.contains("Simvastatin"));
        assert!(s.contains("Atorvastatin"));
    }
}
