//! Fig. 9 — four case studies showing how the DDI module changes the ranking
//! produced by the Medical Decision module:
//!
//! 1. a synergistic partner (Perindopril next to Indapamide) is promoted,
//! 2. an antagonistic pair (Theophylline / Enalapril) is pushed apart,
//! 3. drugs with many shared antagonists (Amlodipine / Felodipine) obtain
//!    similar representations and are ranked together,
//! 4. a ground-truth antagonistic co-prescription (Metformin with Isosorbide)
//!    is deliberately demoted.

use dssddi_core::Backbone;
use dssddi_experiments::{format_drugs, run_dssddi_variant, ChronicWorld, RunOptions};
use dssddi_tensor::Matrix;

/// 1-based rank of a drug in a score row (1 = highest score).
fn rank_of(scores: &Matrix, row: usize, drug: usize) -> usize {
    let r = scores.row(row);
    let better = r.iter().filter(|&&s| s > r[drug]).count();
    better + 1
}

fn main() {
    let opts = RunOptions::from_args();
    println!(
        "Fig. 9 — effect of the DDI module on individual rankings ({} patients)\n",
        opts.n_patients
    );
    let world = ChronicWorld::generate(&opts).unwrap_or_else(|error| {
        eprintln!("fig9: {error}");
        std::process::exit(1);
    });

    // With DDI (full DSSDDI) and without DDI (ablated) score matrices.
    let (with_ddi, _) = run_dssddi_variant(&world, &opts, Backbone::Sgcn).unwrap_or_else(|error| {
        eprintln!("fig9: {error}");
        std::process::exit(1);
    });
    let without_ddi = {
        let mut config = opts.dssddi_config();
        config.md.use_ddi_embeddings = false;
        let mut rng: rand::rngs::StdRng = rand::SeedableRng::seed_from_u64(opts.seed + 2);
        let service = dssddi_core::ServiceBuilder::new()
            .config(config)
            .fit_chronic(
                &world.cohort,
                &world.split.train,
                &world.drug_features,
                &world.ddi,
                &mut rng,
            )
            .expect("w/o DDI system");
        service
            .predict_scores(&world.test_features())
            .expect("scores")
    };
    let test_labels = world.test_labels();

    // Case 1: synergy promotion — a patient taking Indapamide (10) and
    // Perindopril (5), which interact synergistically.
    report_case(
        &world, &with_ddi.scores, &without_ddi, &test_labels,
        "Case 1 — drug-drug synergistic interaction",
        &[10, 5],
        5,
        "Perindopril (DID 5) should be ranked higher when DDI is used, because of its synergy with Indapamide (DID 10).",
    );

    // Case 2: antagonism demotion — Theophylline (83) vs Enalapril (3).
    report_case(
        &world, &with_ddi.scores, &without_ddi, &test_labels,
        "Case 2 — drug-drug antagonistic interaction",
        &[3],
        83,
        "Theophylline (DID 83) is antagonistic to Enalapril (DID 3) and should be demoted when DDI is used.",
    );

    // Case 3: indirect interaction — Amlodipine (8) and Felodipine (32)
    // share four antagonists and should be ranked similarly with DDI.
    report_case(
        &world, &with_ddi.scores, &without_ddi, &test_labels,
        "Case 3 — indirect drug-drug interaction",
        &[32],
        8,
        "Amlodipine (DID 8) shares its antagonists with Felodipine (DID 32); message passing should pull their ranks together.",
    );

    // Case 4: deviation from ground truth — Metformin (48) with Isosorbide
    // Dinitrate (58) is an antagonistic co-prescription the system demotes.
    report_case(
        &world, &with_ddi.scores, &without_ddi, &test_labels,
        "Case 4 — deviation from the ground truth",
        &[48, 58],
        48,
        "Metformin (DID 48) is taken together with Isosorbide Dinitrate (DID 58) in the ground truth, but the DDI-aware model demotes it because the pair is antagonistic.",
    );
}

/// Finds a test patient whose ground-truth medications include all of
/// `required`, then prints how the rank of `focus` changes with/without DDI.
fn report_case(
    world: &ChronicWorld,
    with_ddi: &Matrix,
    without_ddi: &Matrix,
    test_labels: &Matrix,
    title: &str,
    required: &[usize],
    focus: usize,
    narrative: &str,
) {
    println!("== {title} ==");
    println!("   {narrative}");
    let row =
        (0..test_labels.rows()).find(|&r| required.iter().all(|&d| test_labels.get(r, d) > 0.5));
    match row {
        None => {
            println!(
                "   (no test patient takes {} in this synthetic draw; rerun with --patients 4157 or another --seed)\n",
                format_drugs(&world.registry, required)
            );
        }
        Some(r) => {
            let patient = world.split.test[r];
            println!(
                "   Patient #{patient} takes {}",
                format_drugs(&world.registry, &world.cohort.drugs_of(patient))
            );
            let rank_with = rank_of(with_ddi, r, focus);
            let rank_without = rank_of(without_ddi, r, focus);
            let direction = if rank_with < rank_without {
                "promoted"
            } else if rank_with > rank_without {
                "demoted"
            } else {
                "unchanged"
            };
            println!(
                "   Rank of {}: w/o DDI = {rank_without}, with DDI = {rank_with} ({direction})\n",
                format_drugs(&world.registry, &[focus])
            );
        }
    }
}
