//! Serving performance report: runs a fixed suggestion/critique workload
//! against a freshly fitted `DecisionService` and writes the measurements
//! to `BENCH_serving.json`, so the serving-path performance trajectory is
//! tracked across PRs in version control.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p dssddi-experiments --bin bench_report
//!     [--smoke] [--out PATH] [--patients N] [--seed S]
//! ```
//!
//! `--smoke` shrinks the workload to a few seconds for CI; the checked-in
//! `BENCH_serving.json` at the repository root is produced by the default
//! (full) workload. Latencies are wall-clock per batch; `p50`/`p99` are
//! percentiles over the recorded batch latencies and `throughput_rps` is
//! total requests served divided by total serving time.

use std::time::{Duration, Instant};

use dssddi_bench::BenchWorld;
use dssddi_core::{CheckPrescriptionRequest, DecisionService, DrugId};
use dssddi_loadgen::{LoadgenConfig, WorkloadMix};
use dssddi_serving::wire::{
    decode_request, decode_response, encode_request, encode_response, open_wire_frame,
};
use dssddi_serving::{
    AdmissionConfig, Client, ModelCatalog, ModelKey, RateLimit, Request, Router, Server,
};

struct Workload {
    n_patients: usize,
    n_observed: usize,
    batch_sizes: Vec<usize>,
    /// Batch sizes for the network-path benches (wire codec + loopback
    /// gateway end-to-end).
    gateway_batch_sizes: Vec<usize>,
    /// Connection counts for the open-loop traffic sweep against an
    /// admission-enabled gateway.
    loadgen_connections: Vec<usize>,
    /// Length of each open-loop run.
    loadgen_duration: Duration,
    /// Timed repetitions per batch size.
    iterations: usize,
    seed: u64,
    smoke: bool,
}

struct BenchResult {
    name: String,
    batch_size: usize,
    iterations: usize,
    throughput_rps: f64,
    p50_ms: f64,
    p99_ms: f64,
}

fn percentile(sorted_ms: &[f64], pct: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let rank = ((pct / 100.0) * (sorted_ms.len() - 1) as f64).round() as usize;
    sorted_ms[rank.min(sorted_ms.len() - 1)]
}

/// Times `routine` `iterations` times serving `batch_size` requests per
/// call, returning throughput and latency percentiles. `setup` runs before
/// each iteration *outside* the timed region (mirroring criterion's
/// `iter_batched`), so e.g. clearing the explanation cache is not billed to
/// the cold path.
fn measure(
    name: &str,
    batch_size: usize,
    iterations: usize,
    mut setup: impl FnMut(),
    mut routine: impl FnMut() -> Result<(), String>,
) -> Result<BenchResult, String> {
    let mut latencies_ms = Vec::with_capacity(iterations);
    let mut total_s = 0.0f64;
    for _ in 0..iterations {
        setup();
        let start = Instant::now();
        routine().map_err(|e| format!("{name}: {e}"))?;
        let elapsed = start.elapsed().as_secs_f64();
        total_s += elapsed;
        latencies_ms.push(elapsed * 1e3);
    }
    let mut sorted = latencies_ms.clone();
    sorted.sort_by(|a, b| a.total_cmp(b));
    Ok(BenchResult {
        name: name.to_string(),
        batch_size,
        iterations,
        throughput_rps: (batch_size * iterations) as f64 / total_s.max(1e-9),
        p50_ms: percentile(&sorted, 50.0),
        p99_ms: percentile(&sorted, 99.0),
    })
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn write_report(path: &str, workload: &Workload, results: &[BenchResult]) -> Result<(), String> {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"generated_by\": \"bench_report (dssddi-experiments)\",\n");
    out.push_str("  \"schema_version\": 1,\n");
    out.push_str("  \"workload\": {\n");
    out.push_str(&format!("    \"smoke\": {},\n", workload.smoke));
    out.push_str(&format!("    \"seed\": {},\n", workload.seed));
    out.push_str(&format!(
        "    \"cohort_patients\": {},\n",
        workload.n_patients
    ));
    out.push_str(&format!(
        "    \"observed_patients\": {},\n",
        workload.n_observed
    ));
    out.push_str(&format!(
        "    \"iterations_per_batch_size\": {},\n",
        workload.iterations
    ));
    out.push_str(&format!(
        "    \"batch_sizes\": [{}],\n",
        workload
            .batch_sizes
            .iter()
            .map(|b| b.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    ));
    out.push_str(&format!(
        "    \"gateway_batch_sizes\": [{}],\n",
        workload
            .gateway_batch_sizes
            .iter()
            .map(|b| b.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    ));
    out.push_str(&format!(
        "    \"loadgen_connections\": [{}]\n",
        workload
            .loadgen_connections
            .iter()
            .map(|b| b.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    ));
    out.push_str("  },\n");
    out.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"name\": \"{}\",\n", json_escape(&r.name)));
        out.push_str(&format!("      \"batch_size\": {},\n", r.batch_size));
        out.push_str(&format!("      \"iterations\": {},\n", r.iterations));
        out.push_str(&format!(
            "      \"throughput_rps\": {:.2},\n",
            r.throughput_rps
        ));
        out.push_str(&format!("      \"p50_ms\": {:.4},\n", r.p50_ms));
        out.push_str(&format!("      \"p99_ms\": {:.4}\n", r.p99_ms));
        out.push_str(if i + 1 == results.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, &out).map_err(|e| format!("cannot write {path}: {e}"))
}

fn serving_results(
    world: &BenchWorld,
    service: &DecisionService,
    w: &Workload,
) -> Result<Vec<BenchResult>, String> {
    let mut results = Vec::new();
    let engine = service
        .engine()
        .ok_or_else(|| "fitted service must have an engine".to_string())?;
    let held_out_pool: Vec<usize> = (w.n_observed..w.n_patients).collect();

    for &batch in &w.batch_sizes {
        let patients: Vec<usize> = (0..batch)
            .map(|i| held_out_pool[i % held_out_pool.len()])
            .collect();
        let requests = world.suggest_requests(&patients);
        let features = world.cohort.features().select_rows(&patients);

        // Cold explanations: clear the memo (untimed) before every batch.
        results.push(measure(
            "suggest_batch_cold",
            batch,
            w.iterations,
            || service.clear_explanation_cache(),
            || {
                service
                    .suggest_batch(&requests)
                    .map(|_| ())
                    .map_err(|e| format!("suggest_batch: {e}"))
            },
        )?);
        // Pre-PR execution shape: one thread, cold explanations.
        results.push(measure(
            "suggest_batch_cold_serial_1shard",
            batch,
            w.iterations,
            || service.clear_explanation_cache(),
            || {
                service
                    .suggest_batch_sharded(&requests, 1)
                    .map(|_| ())
                    .map_err(|e| format!("suggest_batch_sharded: {e}"))
            },
        )?);
        // Warm memo: the steady state of a homogeneous cohort.
        service
            .suggest_batch(&requests)
            .map_err(|e| format!("warm-up: {e}"))?;
        results.push(measure(
            "suggest_batch_memoized",
            batch,
            w.iterations,
            || {},
            || {
                service
                    .suggest_batch(&requests)
                    .map(|_| ())
                    .map_err(|e| format!("suggest_batch: {e}"))
            },
        )?);
        // Score prediction alone: taped reference vs tape-free fast path.
        results.push(measure(
            "predict_scores_taped",
            batch,
            w.iterations,
            || {},
            || {
                engine
                    .predict_scores_taped(&features)
                    .map(|_| ())
                    .map_err(|e| format!("predict_scores_taped: {e}"))
            },
        )?);
        results.push(measure(
            "predict_scores_tape_free",
            batch,
            w.iterations,
            || {},
            || {
                engine
                    .predict_scores(&features)
                    .map(|_| ())
                    .map_err(|e| format!("predict_scores: {e}"))
            },
        )?);
    }

    // Prescription critique (model-free serving path).
    let check = CheckPrescriptionRequest::new(vec![
        DrugId::new(61),
        DrugId::new(59),
        DrugId::new(10),
        DrugId::new(5),
    ]);
    results.push(measure(
        "check_prescription",
        1,
        w.iterations,
        || {},
        || {
            service
                .check_prescription(&check)
                .map(|_| ())
                .map_err(|e| format!("check: {e}"))
        },
    )?);

    // Knowledge-base lookups: the per-pair cost the severity-graded
    // critique path adds on top of the graph walk. One "request" here is a
    // full sweep over every drug pair of the formulary.
    let kb = dssddi_kb::KnowledgeBase::from_ddi_graph(&world.ddi, &world.registry)
        .map_err(|e| format!("kb from ddi graph: {e}"))?;
    let n_drugs = world.registry.len();
    results.push(measure(
        "kb_lookup",
        1,
        w.iterations,
        || {},
        || {
            let mut graded = 0usize;
            for a in 0..n_drugs {
                for b in (a + 1)..n_drugs {
                    if kb.lookup(a, b).is_some() {
                        graded += 1;
                    }
                }
            }
            if graded == kb.len() {
                Ok(())
            } else {
                Err(format!(
                    "kb sweep graded {graded} pairs, expected {}",
                    kb.len()
                ))
            }
        },
    )?);

    // Persistence throughput.
    let dir = std::env::temp_dir().join("dssddi_bench_report");
    std::fs::create_dir_all(&dir).map_err(|e| format!("temp dir: {e}"))?;
    let path = dir.join("service.dssd");
    results.push(measure(
        "save_fitted_service",
        1,
        w.iterations,
        || {},
        || service.save(&path).map_err(|e| format!("save: {e}")),
    )?);
    let registry = world.registry.clone();
    results.push(measure(
        "load_fitted_service",
        1,
        w.iterations,
        || {},
        || {
            DecisionService::load(&path, registry.clone())
                .map(|_| ())
                .map_err(|e| format!("load: {e}"))
        },
    )?);
    let _ = std::fs::remove_file(&path);
    Ok(results)
}

/// Network-path results: wire-protocol encode/decode round-trip cost and
/// end-to-end gateway throughput over loopback TCP, per batch size —
/// `BENCH_serving.json` tracks the serving trajectory *including* the
/// network layer, not just the in-process core.
fn gateway_results(world: &BenchWorld, w: &Workload) -> Result<Vec<BenchResult>, String> {
    let mut results = Vec::new();
    let key = ModelKey::new("chronic").map_err(|e| format!("model key: {e}"))?;
    let held_out_pool: Vec<usize> = (w.n_observed..w.n_patients).collect();

    // A gateway-owned service, fitted exactly like the in-process one.
    let mut catalog = ModelCatalog::new();
    catalog
        .insert(key.clone(), world.fitted_service(w.n_observed, w.seed + 2))
        .map_err(|e| format!("catalog insert: {e}"))?;
    let server = Server::bind("127.0.0.1:0", Router::new(catalog))
        .map_err(|e| format!("bind gateway: {e}"))?;
    let addr = server
        .local_addr()
        .map_err(|e| format!("gateway addr: {e}"))?;
    let server_thread = std::thread::spawn(move || server.run());
    let mut client = Client::connect(addr).map_err(|e| format!("connect gateway: {e}"))?;

    for &batch in &w.gateway_batch_sizes {
        let patients: Vec<usize> = (0..batch)
            .map(|i| held_out_pool[i % held_out_pool.len()])
            .collect();
        let requests = world.suggest_requests(&patients);

        // Pure codec cost: request encode→validate→decode round trip
        // (no sockets, no model).
        let wire_request = Request::SuggestBatch {
            model: key.clone(),
            requests: requests.clone(),
        };
        results.push(measure(
            "wire_request_roundtrip",
            batch,
            w.iterations,
            || {},
            || {
                let frame = encode_request(&wire_request);
                let payload =
                    open_wire_frame(&frame).map_err(|e| format!("frame validates: {e}"))?;
                decode_request(payload)
                    .map(|_| ())
                    .map_err(|e| format!("payload decodes: {e}"))
            },
        )?);
        // Response frames are much larger (explanation subgraphs); measure
        // them separately from a real served response.
        let response_frame = {
            let responses = client
                .suggest_batch(&key, &requests)
                .map_err(|e| format!("gateway warm-up: {e}"))?;
            encode_response(&dssddi_serving::Response::SuggestBatch(responses))
        };
        results.push(measure(
            "wire_response_roundtrip",
            batch,
            w.iterations,
            || {},
            || {
                let payload = open_wire_frame(&response_frame)
                    .map_err(|e| format!("frame validates: {e}"))?;
                decode_response(payload)
                    .map(|_| ())
                    .map_err(|e| format!("payload decodes: {e}"))
            },
        )?);
        // End-to-end: client → loopback TCP → router → sharded
        // suggest_batch → response frame → client (warm explanation memo,
        // the steady state of a homogeneous cohort).
        results.push(measure(
            "gateway_suggest_batch_loopback",
            batch,
            w.iterations,
            || {},
            || {
                client
                    .suggest_batch(&key, &requests)
                    .map(|_| ())
                    .map_err(|e| format!("gateway suggest_batch: {e}"))
            },
        )?);
    }

    // End-to-end severity-graded critique over the wire: client → loopback
    // TCP → router → KB-graded check_prescription → framed report → client.
    let check = CheckPrescriptionRequest::new(vec![
        DrugId::new(61),
        DrugId::new(59),
        DrugId::new(10),
        DrugId::new(5),
    ]);
    results.push(measure(
        "gateway_check_prescription_loopback",
        1,
        w.iterations,
        || {},
        || {
            client
                .check_prescription(&key, &check)
                .map(|_| ())
                .map_err(|e| format!("gateway check_prescription: {e}"))
        },
    )?);

    client
        .shutdown()
        .map_err(|e| format!("gateway shutdown: {e}"))?;
    server_thread
        .join()
        .map_err(|_| "gateway run loop panicked".to_string())?
        .map_err(|e| format!("gateway run loop: {e}"))?;
    Ok(results)
}

/// Open-loop traffic results: `dssddi-loadgen` drives an
/// admission-enabled gateway at roughly 2x its configured rate capacity,
/// per connection count. Each `loadgen_c{N}` entry records what the
/// gateway actually *delivered* while shedding the excess with typed
/// `Overloaded` frames — answered-request throughput and admitted-frame
/// latency percentiles measured from scheduled (not actual) send times,
/// so server-side queueing cannot hide in generator back-pressure.
fn loadgen_results(world: &BenchWorld, w: &Workload) -> Result<Vec<BenchResult>, String> {
    let mut catalog = ModelCatalog::new();
    let fitted_key = ModelKey::new("chronic").map_err(|e| format!("model key: {e}"))?;
    let support_key = ModelKey::new("critique").map_err(|e| format!("model key: {e}"))?;
    catalog
        .insert(fitted_key, world.fitted_service(w.n_observed, w.seed + 2))
        .map_err(|e| format!("catalog insert: {e}"))?;
    let support = dssddi_core::ServiceBuilder::fast()
        .build_support(&world.ddi)
        .map_err(|e| format!("support shard: {e}"))?;
    catalog
        .insert(support_key, support)
        .map_err(|e| format!("catalog insert: {e}"))?;

    // Capacity 400 requests/s (burst 100) against an offered 800
    // frames/s: a sustained ~2x overload, so the entries document
    // load-shed-before-collapse, not a clear-sky benchmark.
    let admission = AdmissionConfig {
        default_rate: Some(RateLimit::new(400.0, 100.0).map_err(|e| format!("rate: {e}"))?),
        ..AdmissionConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", Router::with_admission(catalog, admission))
        .map_err(|e| format!("bind gateway: {e}"))?;
    let addr = server
        .local_addr()
        .map_err(|e| format!("gateway addr: {e}"))?;
    let server_thread = std::thread::spawn(move || server.run());

    let mut results = Vec::new();
    // The gateway's counters are cumulative across the sweep, so the
    // shed cross-check accumulates the client-side tallies.
    let mut expected_shed = 0u64;
    for &connections in &w.loadgen_connections {
        let mut config = LoadgenConfig::new(addr.to_string());
        config.connections = connections;
        config.rate = 800.0;
        config.duration = w.loadgen_duration;
        config.seed = w.seed;
        let report = dssddi_loadgen::run(&config)
            .map_err(|e| format!("loadgen run ({connections} connections): {e}"))?;
        expected_shed += report.shed_requests;
        if report.server_shed_requests != expected_shed {
            return Err(format!(
                "gateway shed accounting must match the client tally: \
                 server says {}, clients tallied {expected_shed}",
                report.server_shed_requests
            ));
        }
        eprintln!(
            "bench_report: loadgen {} connection(s): {} ok / {} shed, p99 {:.2} ms",
            connections,
            report.ok_requests,
            report.shed_requests,
            report.p99_ms()
        );
        results.push(BenchResult {
            name: format!("loadgen_c{connections}"),
            batch_size: connections,
            iterations: report.frames as usize,
            throughput_rps: report.achieved_rps(),
            p50_ms: report.p50_ms(),
            p99_ms: report.p99_ms(),
        });
    }

    let client = Client::connect(addr).map_err(|e| format!("connect gateway: {e}"))?;
    client
        .shutdown()
        .map_err(|e| format!("gateway shutdown: {e}"))?;
    server_thread
        .join()
        .map_err(|_| "gateway run loop panicked".to_string())?
        .map_err(|e| format!("gateway run loop: {e}"))?;
    Ok(results)
}

/// Read fan-out results: the same open-loop, read-only clinical mix
/// against a single replica and against a three-replica group whose
/// anti-entropy agents gossip in the background. The `replica_fanout_r1`
/// vs `replica_fanout_r3` pair documents what adding replicas buys reads
/// (workers spread round-robin across the group) and what the sync loop
/// costs; the largest anti-entropy lag any replica observed during the
/// run is reported on stderr and must stay bounded.
fn replica_fanout_results(world: &BenchWorld, w: &Workload) -> Result<Vec<BenchResult>, String> {
    use dssddi_replica::{ReplicaAgent, ReplicaGroup, ReplicaState};
    use std::sync::Arc;

    let mut results = Vec::new();
    for replicas in [1usize, 3] {
        // Each replica gets its own identically-built catalog — separate
        // processes in production, separate routers here.
        let mut servers = Vec::new();
        for _ in 0..replicas {
            let mut catalog = ModelCatalog::new();
            let fitted_key = ModelKey::new("chronic").map_err(|e| format!("model key: {e}"))?;
            let support_key = ModelKey::new("critique").map_err(|e| format!("model key: {e}"))?;
            catalog
                .insert(fitted_key, world.fitted_service(w.n_observed, w.seed + 2))
                .map_err(|e| format!("catalog insert: {e}"))?;
            let support = dssddi_core::ServiceBuilder::fast()
                .build_support(&world.ddi)
                .map_err(|e| format!("support shard: {e}"))?;
            catalog
                .insert(support_key, support)
                .map_err(|e| format!("catalog insert: {e}"))?;
            let mut router = Router::new(catalog);
            let state = Arc::new(ReplicaState::default());
            router.attach_replica(Arc::clone(&state));
            let server =
                Server::bind("127.0.0.1:0", router).map_err(|e| format!("bind replica: {e}"))?;
            let addr = server
                .local_addr()
                .map_err(|e| format!("replica addr: {e}"))?;
            let router = server.router_arc();
            let thread = std::thread::spawn(move || server.run());
            servers.push((addr, router, state, thread));
        }
        let addrs: Vec<_> = servers.iter().map(|(addr, ..)| *addr).collect();

        // Arm one anti-entropy agent per replica (a single replica runs
        // none — there is no peer to gossip with).
        let mut agents = Vec::new();
        for (index, (_, router, state, _)) in servers.iter().enumerate() {
            let peers: Vec<_> = addrs
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != index)
                .map(|(_, addr)| *addr)
                .collect();
            if peers.is_empty() {
                continue;
            }
            let group = ReplicaGroup::new(peers)
                .with_sync_interval(Duration::from_millis(100))
                .with_seed(w.seed ^ index as u64);
            agents.push(ReplicaAgent::new(group, Arc::clone(router), Arc::clone(state)).spawn());
        }

        let first = addrs
            .first()
            .ok_or_else(|| "no replicas bound".to_string())?;
        let mut config = LoadgenConfig::new(first.to_string());
        config.targets = addrs.iter().map(ToString::to_string).collect();
        config.connections = if w.smoke { 2 } else { 12 };
        config.rate = 800.0;
        config.duration = w.loadgen_duration;
        config.seed = w.seed;
        // Reads only: fan-out is a read property, writes forward to one
        // replica and would measure anti-entropy instead.
        config.mix = WorkloadMix::new(55.0, 20.0, 25.0, 0.0)?;
        let report = dssddi_loadgen::run(&config)
            .map_err(|e| format!("replica fan-out run (r{replicas}): {e}"))?;

        // The largest per-key version gap any replica sat behind a peer
        // during the run — reads stay fast because this stays near zero.
        let mut max_lag = 0u64;
        for (addr, ..) in &servers {
            let mut client = Client::connect(*addr).map_err(|e| format!("connect replica: {e}"))?;
            let stats = client
                .stats_report()
                .map_err(|e| format!("replica stats: {e}"))?;
            if let Some(replica) = stats.replica {
                max_lag = max_lag.max(replica.max_lag);
            }
        }
        for agent in agents {
            agent.stop();
        }
        eprintln!(
            "bench_report: replica fan-out r{replicas}: {} ok / {} frames, p99 {:.2} ms, \
             max sync lag {max_lag}",
            report.ok_requests,
            report.frames,
            report.p99_ms()
        );
        results.push(BenchResult {
            name: format!("replica_fanout_r{replicas}"),
            batch_size: replicas,
            iterations: report.frames as usize,
            throughput_rps: report.achieved_rps(),
            p50_ms: report.p50_ms(),
            p99_ms: report.p99_ms(),
        });

        for (addr, _, _, thread) in servers {
            let client = Client::connect(addr).map_err(|e| format!("connect replica: {e}"))?;
            client
                .shutdown()
                .map_err(|e| format!("replica shutdown: {e}"))?;
            thread
                .join()
                .map_err(|_| "replica run loop panicked".to_string())?
                .map_err(|e| format!("replica run loop: {e}"))?;
        }
    }
    Ok(results)
}

fn main() {
    if let Err(message) = run() {
        eprintln!("bench_report: {message}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().collect();
    let mut smoke = false;
    let mut out_path = "BENCH_serving.json".to_string();
    let mut n_patients = 200usize;
    let mut seed = 11u64;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => smoke = true,
            "--out" if i + 1 < args.len() => {
                out_path = args[i + 1].clone();
                i += 1;
            }
            "--patients" if i + 1 < args.len() => {
                n_patients = args[i + 1].parse().unwrap_or(n_patients);
                i += 1;
            }
            "--seed" if i + 1 < args.len() => {
                seed = args[i + 1].parse().unwrap_or(seed);
                i += 1;
            }
            other => eprintln!("ignoring unknown argument {other:?}"),
        }
        i += 1;
    }
    let workload = if smoke {
        Workload {
            n_patients: 60,
            n_observed: 45,
            batch_sizes: vec![1, 8],
            gateway_batch_sizes: vec![1, 16],
            loadgen_connections: vec![1, 4],
            loadgen_duration: Duration::from_secs(1),
            iterations: 2,
            seed,
            smoke,
        }
    } else {
        Workload {
            n_patients,
            n_observed: n_patients * 3 / 5,
            batch_sizes: vec![1, 8, 64],
            gateway_batch_sizes: vec![1, 16, 64],
            loadgen_connections: vec![1, 64, 256],
            loadgen_duration: Duration::from_secs(2),
            iterations: 10,
            seed,
            smoke,
        }
    };

    eprintln!(
        "bench_report: fitting service on {} observed / {} total patients (seed {}) ...",
        workload.n_observed, workload.n_patients, workload.seed
    );
    let world = BenchWorld::new(workload.n_patients, workload.seed);
    let service = world.fitted_service(workload.n_observed, workload.seed + 2);

    eprintln!("bench_report: running serving workload ...");
    let mut results = serving_results(&world, &service, &workload)?;
    eprintln!("bench_report: running gateway/network workload ...");
    results.extend(gateway_results(&world, &workload)?);
    eprintln!("bench_report: running open-loop overload traffic (dssddi-loadgen) ...");
    results.extend(loadgen_results(&world, &workload)?);
    eprintln!("bench_report: running replica fan-out (1 vs 3 replicas) ...");
    results.extend(replica_fanout_results(&world, &workload)?);
    write_report(&out_path, &workload, &results)?;
    for r in &results {
        println!(
            "{:<34} batch {:>3}  {:>12.1} req/s  p50 {:>9.3} ms  p99 {:>9.3} ms",
            r.name, r.batch_size, r.throughput_rps, r.p50_ms, r.p99_ms
        );
    }
    println!("wrote {out_path}");
    Ok(())
}
