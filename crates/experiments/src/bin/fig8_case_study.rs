//! Fig. 8 — explanation case study for a cardiovascular patient: the
//! Medical Support subgraphs (closest truss communities) behind the top-3
//! suggestions of DSSDDI, LightGCN, GCMC, SVM and ECC.

use dssddi_core::{
    ms_module::explain_suggestion, Backbone, MsModuleConfig, PatientId, SuggestRequest,
};
use dssddi_data::Disease;
use dssddi_experiments::{
    format_drugs, run_chronic_baselines, run_dssddi_variant, ChronicWorld, RunOptions,
};
use dssddi_ml::top_k_indices;

fn main() {
    let opts = RunOptions::from_args();
    println!("Fig. 8 — medication-suggestion case study for a cardiovascular patient\n");
    let world = ChronicWorld::generate(&opts).unwrap_or_else(|error| {
        eprintln!("fig8: {error}");
        std::process::exit(1);
    });

    // Pick the first test patient suffering from cardiovascular disease.
    let patient = world
        .split
        .test
        .iter()
        .copied()
        .find(|&p| world.cohort.diseases()[p].contains(&Disease::CardiovascularEvents))
        .unwrap_or(world.split.test[0]);
    println!(
        "Patient #{patient}: diseases = {:?}, actually taking: {}",
        world.cohort.diseases()[patient]
            .iter()
            .map(|d| d.name())
            .collect::<Vec<_>>(),
        format_drugs(&world.registry, &world.cohort.drugs_of(patient))
    );

    let ms = MsModuleConfig::default();
    let k = 3;

    // DSSDDI, through the typed decision service.
    let (_, service) = run_dssddi_variant(&world, &opts, Backbone::Sgcn).unwrap_or_else(|error| {
        eprintln!("fig8: {error}");
        std::process::exit(1);
    });
    let request = SuggestRequest::new(
        PatientId::new(patient),
        world.cohort.features().row(patient).to_vec(),
        k,
    );
    let response = service.suggest(&request).expect("DSSDDI suggestion");
    print_case(
        "DSSDDI",
        &world,
        &response.explanation.suggested,
        &response.explanation,
    );

    // Baselines (LightGCN, GCMC, SVM, ECC as in the figure).
    let baselines = run_chronic_baselines(&world, &opts).unwrap_or_else(|error| {
        eprintln!("fig8: {error}");
        std::process::exit(1);
    });
    // The test feature matrix row index of this patient.
    let row = world
        .split
        .test
        .iter()
        .position(|&p| p == patient)
        .unwrap_or(0);
    for wanted in ["LightGCN", "GCMC", "SVM", "ECC"] {
        if let Some(method) = baselines.iter().find(|m| m.name == wanted) {
            let top = top_k_indices(method.scores.row(row), k);
            let explanation = explain_suggestion(&world.ddi, &top, &ms).expect("explanation");
            print_case(wanted, &world, &top, &explanation);
        }
    }
    println!("\nPaper reference: DSSDDI suggests Simvastatin+Atorvastatin (synergistic) and");
    println!("avoids Gabapentin because of its antagonism with Isosorbide; the baselines'");
    println!("suggestions have no synergistic interactions (ECC even contains antagonism).");
}

fn print_case(
    name: &str,
    world: &ChronicWorld,
    suggested: &[usize],
    exp: &dssddi_core::Explanation,
) {
    println!("\n--- {name} ---");
    println!("Suggested: {}", format_drugs(&world.registry, suggested));
    println!(
        "Explanation subgraph: {} drugs, {} interactions (trussness {}), SS = {:.4}",
        exp.community.node_count(),
        exp.edges.len(),
        exp.community.trussness,
        exp.suggestion_satisfaction
    );
    let synergy = exp.synergy_pairs();
    if synergy.is_empty() {
        println!("  Synergism among suggested drugs: none");
    } else {
        for (u, v) in synergy {
            println!("  Synergism: {}", format_drugs(&world.registry, &[u, v]));
        }
    }
    let antagonism = exp.antagonism_pairs();
    if antagonism.is_empty() {
        println!("  Antagonism touching suggested drugs: none");
    } else {
        for (u, v) in antagonism {
            println!("  Antagonism: {}", format_drugs(&world.registry, &[u, v]));
        }
    }
}
