//! Fig. 3 — the number of medications available for the common chronic
//! diseases (the per-disease formulary sizes, 86 drugs in total).

use dssddi_experiments::RunOptions;

use dssddi_data::DrugRegistry;

fn main() {
    let _opts = RunOptions::from_args();
    let registry = DrugRegistry::standard();
    println!("Fig. 3 — number of medications per chronic disease (86-drug formulary)\n");
    let mut counts = registry.medications_per_disease();
    counts.sort_by_key(|&(_, count)| std::cmp::Reverse(count));
    println!("{:<28} {:>6}", "Disease", "#Drugs");
    for (disease, count) in &counts {
        let bar = "#".repeat(*count);
        println!("{:<28} {:>6}  {}", disease.name(), count, bar);
    }
    let total: usize = registry.len();
    println!("\nTotal formulary size: {total} drugs (paper: 86)");
}
