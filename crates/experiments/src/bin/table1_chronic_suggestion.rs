//! Table I — medication suggestion performance on the chronic data set:
//! Precision@k, Recall@k and NDCG@k for k = 1..6, comparing the traditional
//! baselines, the graph-learning baselines and the four DSSDDI backbone
//! variants.

use dssddi_core::Backbone;
use dssddi_experiments::{
    print_metric_table, run_chronic_baselines, run_dssddi_variant, ChronicWorld, RunOptions,
};

fn main() {
    let opts = RunOptions::from_args();
    println!(
        "Table I — chronic data set, {} patients (5:3:2 split), {} configuration",
        opts.n_patients,
        if opts.full { "paper" } else { "reduced" }
    );
    let world = ChronicWorld::generate(&opts).unwrap_or_else(|error| {
        eprintln!("table1: {error}");
        std::process::exit(1);
    });
    let test_labels = world.test_labels();

    let mut methods = run_chronic_baselines(&world, &opts).unwrap_or_else(|error| {
        eprintln!("table1: {error}");
        std::process::exit(1);
    });
    for backbone in Backbone::ALL {
        let (scores, _) = run_dssddi_variant(&world, &opts, backbone).unwrap_or_else(|error| {
            eprintln!("table1: {error}");
            std::process::exit(1);
        });
        methods.push(scores);
    }

    print_metric_table("Table I (k = 4, 5, 6)", &methods, &test_labels, &[4, 5, 6]);
    print_metric_table("Table I (k = 1, 2, 3)", &methods, &test_labels, &[1, 2, 3]);
    println!("\nPaper reference (chronic data): DSSDDI(SGCN) is best on almost all k,");
    println!("graph methods > traditional methods, LightGCN is the strongest baseline.");
}
