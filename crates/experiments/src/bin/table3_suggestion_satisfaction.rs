//! Table III — Suggestion Satisfaction (Eq. 19) at k = 2..6 for every
//! method: how synergistic the suggested drug sets are, and how well they
//! push antagonistic interactions outside the suggestion.

use dssddi_core::Backbone;
use dssddi_experiments::{
    print_ss_table, run_chronic_baselines, run_dssddi_variant, ChronicWorld, RunOptions,
};

fn main() {
    let opts = RunOptions::from_args();
    println!(
        "Table III — Suggestion Satisfaction on the chronic data set ({} patients)",
        opts.n_patients
    );
    let world = ChronicWorld::generate(&opts).unwrap_or_else(|error| {
        eprintln!("table3: {error}");
        std::process::exit(1);
    });

    let mut methods = run_chronic_baselines(&world, &opts).unwrap_or_else(|error| {
        eprintln!("table3: {error}");
        std::process::exit(1);
    });
    for backbone in Backbone::ALL {
        let (scores, _) = run_dssddi_variant(&world, &opts, backbone).unwrap_or_else(|error| {
            eprintln!("table3: {error}");
            std::process::exit(1);
        });
        methods.push(scores);
    }
    print_ss_table(
        "Table III (SS@k, α = 0.5)",
        &methods,
        &world.ddi,
        &[2, 3, 4, 5, 6],
    );
    println!("\nPaper reference: DSSDDI improves SS@4..6 by ~24-25% over the best baseline");
    println!("(Bipar-GCN / LightGCN); traditional methods are lowest.");
}
