//! Table II — ablation over the drug relation embeddings added to the final
//! drug representations: w/o DDI, one-hot, KG (TransE pre-trained) and the
//! full DDIGCN (SGCN backbone).

use dssddi_experiments::{print_metric_table, run_ablation_variants, ChronicWorld, RunOptions};

fn main() {
    let opts = RunOptions::from_args();
    println!(
        "Table II — drug-embedding ablation on the chronic data set ({} patients, {})",
        opts.n_patients,
        if opts.full {
            "paper configuration"
        } else {
            "reduced configuration"
        }
    );
    let world = ChronicWorld::generate(&opts).unwrap_or_else(|error| {
        eprintln!("table2: {error}");
        std::process::exit(1);
    });
    let test_labels = world.test_labels();
    let methods = run_ablation_variants(&world, &opts).unwrap_or_else(|error| {
        eprintln!("table2: {error}");
        std::process::exit(1);
    });
    print_metric_table("Table II (k = 4, 5, 6)", &methods, &test_labels, &[4, 5, 6]);
    print_metric_table("Table II (k = 1, 2, 3)", &methods, &test_labels, &[1, 2, 3]);
    println!("\nPaper reference: DDIGCN > KG ≈ w/o DDI > One-hot on every metric.");
}
