//! Fig. 7 — cosine-similarity structure of the patient and drug
//! representations learned by DSSDDI vs. LightGCN.
//!
//! The paper samples 100 test patients and shows that LightGCN's patient
//! representations are nearly identical to one another (over-smoothing)
//! while DSSDDI's stay distinguishable, and that DSSDDI's drug
//! representations group drugs that treat the same disease while LightGCN's
//! are mutually dissimilar. This binary reports the same quantities as
//! summary statistics and coarse text heatmaps.

use dssddi_baselines::{LightGcnRecommender, Recommender};
use dssddi_core::Backbone;
use dssddi_experiments::{run_dssddi_variant, ChronicWorld, RunOptions};
use dssddi_tensor::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn mean_offdiagonal_cosine(reprs: &Matrix) -> f64 {
    let sim = reprs.cosine_similarity_matrix(reprs).expect("similarity");
    let n = sim.rows();
    let mut total = 0.0f64;
    let mut count = 0usize;
    for i in 0..n {
        for j in 0..n {
            if i != j {
                total += sim.get(i, j) as f64;
                count += 1;
            }
        }
    }
    total / count.max(1) as f64
}

fn coarse_heatmap(reprs: &Matrix, cells: usize) -> Vec<String> {
    let sim = reprs.cosine_similarity_matrix(reprs).expect("similarity");
    let n = sim.rows();
    let step = (n / cells).max(1);
    let mut rows = Vec::new();
    for bi in 0..cells.min(n) {
        let mut line = String::new();
        for bj in 0..cells.min(n) {
            let mut total = 0.0f32;
            let mut count = 0usize;
            for i in (bi * step)..((bi + 1) * step).min(n) {
                for j in (bj * step)..((bj + 1) * step).min(n) {
                    total += sim.get(i, j);
                    count += 1;
                }
            }
            let avg = total / count.max(1) as f32;
            let symbol = match avg {
                a if a > 0.8 => '█',
                a if a > 0.6 => '▓',
                a if a > 0.4 => '▒',
                a if a > 0.2 => '░',
                _ => ' ',
            };
            line.push(symbol);
        }
        rows.push(line);
    }
    rows
}

fn main() {
    let opts = RunOptions::from_args();
    println!(
        "Fig. 7 — representation similarity: DSSDDI vs LightGCN ({} patients)",
        opts.n_patients
    );
    let world = ChronicWorld::generate(&opts).unwrap_or_else(|error| {
        eprintln!("fig7: {error}");
        std::process::exit(1);
    });

    let (_, dssddi) = run_dssddi_variant(&world, &opts, Backbone::Sgcn).unwrap_or_else(|error| {
        eprintln!("fig7: {error}");
        std::process::exit(1);
    });
    let graph_cfg = dssddi_baselines::graph_models::GraphBaselineConfig {
        hidden_dim: if opts.full { 64 } else { 32 },
        epochs: if opts.full { 300 } else { 120 },
        ..Default::default()
    };
    let mut rng = StdRng::seed_from_u64(opts.seed + 11);
    let lightgcn = LightGcnRecommender::fit(
        &world.train_features(),
        &world.train_graph().unwrap_or_else(|error| {
            eprintln!("fig7: {error}");
            std::process::exit(1);
        }),
        &graph_cfg,
        &mut rng,
    )
    .expect("LightGCN");
    let _ = lightgcn
        .predict_scores(&world.test_features())
        .expect("scores");

    // 100 sampled test patients (or all of them if fewer).
    let sample: Vec<usize> = world.split.test.iter().copied().take(100).collect();
    let sample_features = world.cohort.features().select_rows(&sample);

    let engine = dssddi.engine().expect("fitted service");
    let dssddi_patients = engine
        .md_module()
        .patient_representations(&sample_features)
        .expect("DSSDDI patient representations");
    let lightgcn_patients = lightgcn
        .patient_representations(&sample_features)
        .expect("LightGCN patient representations");

    println!("\n(a) Patient representations — mean pairwise cosine similarity");
    println!(
        "    DSSDDI   : {:.3}  (paper: low, patients stay distinguishable)",
        mean_offdiagonal_cosine(&dssddi_patients)
    );
    println!(
        "    LightGCN : {:.3}  (paper: close to 1.0, over-smoothed)",
        mean_offdiagonal_cosine(&lightgcn_patients)
    );
    println!("\n    DSSDDI patient similarity (10x10 block heatmap)");
    for row in coarse_heatmap(&dssddi_patients, 10) {
        println!("      {row}");
    }
    println!("    LightGCN patient similarity (10x10 block heatmap)");
    for row in coarse_heatmap(&lightgcn_patients, 10) {
        println!("      {row}");
    }

    let dssddi_drugs = engine.md_module().drug_representations();
    let lightgcn_drugs = lightgcn.drug_representations();
    println!("\n(b) Drug representations (86 drugs) — mean pairwise cosine similarity");
    println!(
        "    DSSDDI   : {:.3}  (paper: block structure by treated disease)",
        mean_offdiagonal_cosine(dssddi_drugs)
    );
    println!(
        "    LightGCN : {:.3}  (paper: uniformly low similarity)",
        mean_offdiagonal_cosine(lightgcn_drugs)
    );

    // Within-class vs cross-class similarity for DSSDDI's drug embeddings.
    let statins = [46usize, 47, 49, 50, 51];
    let mut within = 0.0f64;
    let mut wcount = 0usize;
    for (a, &u) in statins.iter().enumerate() {
        for &v in statins.iter().skip(a + 1) {
            within += dssddi_drugs.row_cosine(u, dssddi_drugs, v) as f64;
            wcount += 1;
        }
    }
    let cross_pairs = [(46usize, 61usize), (47, 83), (49, 40), (50, 72)];
    let mut cross = 0.0f64;
    for &(u, v) in &cross_pairs {
        cross += dssddi_drugs.row_cosine(u, dssddi_drugs, v) as f64;
    }
    println!(
        "    DSSDDI statin-statin similarity {:.3} vs statin-unrelated {:.3}",
        within / wcount as f64,
        cross / cross_pairs.len() as f64
    );
}
