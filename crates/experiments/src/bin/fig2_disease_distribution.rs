//! Fig. 2 — the proportion of patients with various diseases.
//!
//! Regenerates the disease-prevalence pie chart of the paper as a text
//! table/bar chart over the synthetic cohort.

use dssddi_experiments::{ChronicWorld, RunOptions};

fn main() {
    let opts = RunOptions::from_args();
    let world = ChronicWorld::generate(&opts).unwrap_or_else(|error| {
        eprintln!("fig2: {error}");
        std::process::exit(1);
    });
    println!("Fig. 2 — proportion of patients with various diseases");
    println!(
        "(cohort of {} interview records, seed {})\n",
        opts.n_patients, opts.seed
    );
    let mut prevalence = world.cohort.disease_prevalence();
    prevalence.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    println!(
        "{:<28} {:>8}  {:<40} {:>8}",
        "Disease", "Measured", "", "Paper"
    );
    let paper: &[(&str, f64)] = &[
        ("Hypertension", 0.49),
        ("Cardiovascular Events", 0.22),
        ("Type 2 Diabetes Mellitus", 0.11),
        ("Gastric or Duodenal Ulcer", 0.06),
        ("Arthritis", 0.03),
        ("Prostatic Hyperplasia", 0.02),
        ("Diabetic Nephropathy", 0.02),
        ("Myocardial Infarction", 0.01),
        ("Asthma", 0.01),
        ("Other Diseases", 0.03),
    ];
    for (disease, measured) in prevalence {
        let bar = "#".repeat((measured * 80.0).round() as usize);
        let paper_value = paper
            .iter()
            .find(|(name, _)| *name == disease.name())
            .map(|(_, v)| format!("{:.2}", v))
            .unwrap_or_else(|| "-".into());
        println!(
            "{:<28} {:>7.1}%  {:<40} {:>8}",
            disease.name(),
            measured * 100.0,
            bar,
            paper_value
        );
    }
}
