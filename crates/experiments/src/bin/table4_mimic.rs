//! Table IV — medication suggestion on the MIMIC-III-like data set:
//! Precision/Recall/NDCG at k = 4, 6, 8 for every baseline and DSSDDI(GIN)
//! (only the GIN backbone applies, because the public MIMIC DDI pairs are
//! antagonistic-only).

use dssddi_baselines::{
    BiparGcnRecommender, CauseRecRecommender, EccRecommender, GcmcRecommender, LightGcnRecommender,
    Recommender, SafeDrugRecommender, SvmRecommender, UserSim,
};
use dssddi_core::{config::DrugFeatureSource, Backbone, Dssddi};
use dssddi_experiments::{print_metric_table, MethodScores, RunOptions};
use dssddi_graph::BipartiteGraph;
use dssddi_tensor::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    if let Err(message) = run() {
        eprintln!("table4_mimic: {message}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), String> {
    let opts = RunOptions::from_args();
    let n_patients = if opts.full {
        6350
    } else {
        opts.n_patients.min(1500)
    };
    println!(
        "Table IV — MIMIC-III-like data set, {} patients ({} configuration)",
        n_patients,
        if opts.full { "paper" } else { "reduced" }
    );

    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mimic = dssddi_data::generate_mimic_dataset(
        &dssddi_data::MimicConfig {
            n_patients,
            ..Default::default()
        },
        &mut rng,
    )
    .map_err(|e| format!("MIMIC-like generation: {e}"))?;
    let split = dssddi_data::split_patients(mimic.n_patients(), (5, 3, 2), &mut rng)
        .map_err(|e| format!("split: {e}"))?;

    let train_x = mimic.features().select_rows(&split.train);
    let train_y = mimic.labels().select_rows(&split.train);
    let test_x = mimic.features().select_rows(&split.test);
    let test_y = mimic.labels().select_rows(&split.test);
    let train_pairs: Vec<(usize, usize)> = (0..split.train.len())
        .flat_map(|row| {
            let patient = split.train[row];
            mimic
                .drugs_of(patient)
                .into_iter()
                .map(move |d| (row, d))
                .collect::<Vec<_>>()
        })
        .collect();
    let train_graph = BipartiteGraph::from_pairs(split.train.len(), mimic.n_drugs(), &train_pairs)
        .map_err(|e| format!("train graph: {e}"))?;

    let epochs = if opts.full { 300 } else { 100 };
    let graph_cfg = dssddi_baselines::graph_models::GraphBaselineConfig {
        hidden_dim: if opts.full { 64 } else { 32 },
        epochs,
        ..Default::default()
    };
    let neural_cfg = dssddi_baselines::neural::NeuralConfig {
        hidden_dim: if opts.full { 64 } else { 32 },
        epochs,
        ..Default::default()
    };

    let mut methods: Vec<MethodScores> = Vec::new();
    let usersim = UserSim::fit(&train_x, &train_y).map_err(|e| format!("UserSim fit: {e}"))?;
    methods.push(MethodScores {
        name: "UserSim".into(),
        scores: usersim
            .predict_scores(&test_x)
            .map_err(|e| format!("UserSim predict: {e}"))?,
    });
    let ecc = EccRecommender::fit(
        &train_x,
        &train_y,
        &dssddi_ml::EccConfig {
            n_chains: 2,
            ..Default::default()
        },
        &mut rng,
    )
    .map_err(|e| format!("ECC fit: {e}"))?;
    methods.push(MethodScores {
        name: "ECC".into(),
        scores: ecc
            .predict_scores(&test_x)
            .map_err(|e| format!("ECC predict: {e}"))?,
    });
    let svm = SvmRecommender::fit(
        &train_x,
        &train_y,
        &dssddi_ml::SvmConfig {
            epochs: 30,
            ..Default::default()
        },
    )
    .map_err(|e| format!("SVM fit: {e}"))?;
    methods.push(MethodScores {
        name: "SVM".into(),
        scores: svm
            .predict_scores(&test_x)
            .map_err(|e| format!("SVM predict: {e}"))?,
    });
    let gcmc = GcmcRecommender::fit(&train_x, &train_graph, &graph_cfg, &mut rng)
        .map_err(|e| format!("GCMC fit: {e}"))?;
    methods.push(MethodScores {
        name: "GCMC".into(),
        scores: gcmc
            .predict_scores(&test_x)
            .map_err(|e| format!("GCMC predict: {e}"))?,
    });
    let lightgcn = LightGcnRecommender::fit(&train_x, &train_graph, &graph_cfg, &mut rng)
        .map_err(|e| format!("LightGCN fit: {e}"))?;
    methods.push(MethodScores {
        name: "LightGCN".into(),
        scores: lightgcn
            .predict_scores(&test_x)
            .map_err(|e| format!("LightGCN predict: {e}"))?,
    });
    let safedrug =
        SafeDrugRecommender::fit(&train_x, &train_y, mimic.ddi(), 0.05, &neural_cfg, &mut rng)
            .map_err(|e| format!("SafeDrug fit: {e}"))?;
    methods.push(MethodScores {
        name: "SafeDrug".into(),
        scores: safedrug
            .predict_scores(&test_x)
            .map_err(|e| format!("SafeDrug predict: {e}"))?,
    });
    let bipar = BiparGcnRecommender::fit(&train_x, &train_graph, &graph_cfg, &mut rng)
        .map_err(|e| format!("Bipar-GCN fit: {e}"))?;
    methods.push(MethodScores {
        name: "Bipar-GCN".into(),
        scores: bipar
            .predict_scores(&test_x)
            .map_err(|e| format!("Bipar-GCN predict: {e}"))?,
    });
    let causerec = CauseRecRecommender::fit(&train_x, &train_y, 0.2, &neural_cfg, &mut rng)
        .map_err(|e| format!("CauseRec fit: {e}"))?;
    methods.push(MethodScores {
        name: "CauseRec".into(),
        scores: causerec
            .predict_scores(&test_x)
            .map_err(|e| format!("CauseRec predict: {e}"))?,
    });

    // DSSDDI(GIN): antagonism-only DDI graph, one-hot drug features.
    let mut config = opts.dssddi_config();
    config.ddi.backbone = Backbone::Gin;
    config.md.drug_features = DrugFeatureSource::OneHot;
    let placeholder_drug_features = Matrix::identity(mimic.n_drugs());
    let system = Dssddi::fit(
        &train_x,
        &train_graph,
        &placeholder_drug_features,
        mimic.ddi(),
        &config,
        &mut rng,
    )
    .map_err(|e| format!("DSSDDI(GIN) fit on MIMIC: {e}"))?;
    methods.push(MethodScores {
        name: "DSSDDI(GIN)".into(),
        scores: system
            .predict_scores(&test_x)
            .map_err(|e| format!("DSSDDI(GIN) predict: {e}"))?,
    });

    print_metric_table("Table IV (k = 4, 6, 8)", &methods, &test_y, &[4, 6, 8]);
    println!("\nPaper reference: all methods score much higher than on the chronic data");
    println!("(8-15 drugs per patient); DSSDDI(GIN) is best, LightGCN/SafeDrug follow.");
    Ok(())
}
