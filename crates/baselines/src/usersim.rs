//! The UserSim baseline (Eq. 20 of the paper): suggestion scores for an
//! unobserved patient are the medication-use rows of the observed patients,
//! weighted by cosine feature similarity.

use dssddi_core::CoreError;
use dssddi_tensor::Matrix;

use crate::Recommender;

/// Feature-similarity weighted medication use.
pub struct UserSim {
    observed_features: Matrix,
    observed_labels: Matrix,
}

impl UserSim {
    /// Stores the observed patients' features and medication use.
    pub fn fit(observed_features: &Matrix, observed_labels: &Matrix) -> Result<Self, CoreError> {
        if observed_features.rows() != observed_labels.rows() {
            return Err(CoreError::invalid_input(
                "UserSim needs one label row per observed patient",
            ));
        }
        if observed_features.rows() == 0 {
            return Err(CoreError::invalid_input(
                "UserSim needs at least one observed patient",
            ));
        }
        Ok(Self {
            observed_features: observed_features.clone(),
            observed_labels: observed_labels.clone(),
        })
    }
}

impl Recommender for UserSim {
    fn name(&self) -> &'static str {
        "UserSim"
    }

    fn predict_scores(&self, features: &Matrix) -> Result<Matrix, CoreError> {
        if features.cols() != self.observed_features.cols() {
            return Err(CoreError::invalid_input(
                "feature dimension differs from the observed patients",
            ));
        }
        // Y_U = cosine_similarity(X_U, X_O) · Y_O  (Eq. 20).
        let similarity = features.cosine_similarity_matrix(&self.observed_features)?;
        Ok(similarity.matmul(&self.observed_labels)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn similar_patients_inherit_medications() {
        let observed_features = Matrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]).unwrap();
        let observed_labels = Matrix::from_vec(2, 3, vec![1.0, 0.0, 0.0, 0.0, 1.0, 1.0]).unwrap();
        let model = UserSim::fit(&observed_features, &observed_labels).unwrap();
        // A patient identical to observed patient 0.
        let new = Matrix::from_vec(1, 2, vec![1.0, 0.0]).unwrap();
        let scores = model.predict_scores(&new).unwrap();
        assert!(scores.get(0, 0) > scores.get(0, 1));
        assert!(scores.get(0, 0) > scores.get(0, 2));
        assert_eq!(model.name(), "UserSim");
    }

    #[test]
    fn dimension_mismatches_error() {
        let x = Matrix::ones(2, 2);
        let y = Matrix::ones(3, 4);
        assert!(UserSim::fit(&x, &y).is_err());
        let model = UserSim::fit(&x, &Matrix::ones(2, 4)).unwrap();
        assert!(model.predict_scores(&Matrix::ones(1, 5)).is_err());
    }

    #[test]
    fn empty_observed_set_is_rejected() {
        assert!(UserSim::fit(&Matrix::zeros(0, 2), &Matrix::zeros(0, 3)).is_err());
    }
}
