//! Classical multi-label baselines: Ensemble Classifier Chains and
//! one-vs-rest linear SVMs (Section V-A1).

use rand::Rng;

use dssddi_core::CoreError;
use dssddi_ml::{EccConfig, EnsembleClassifierChain, LinearSvm, MlError, SvmConfig};
use dssddi_tensor::Matrix;

use crate::Recommender;

/// Ensemble Classifier Chains over logistic regression (the "ECC" rows).
pub struct EccRecommender {
    model: EnsembleClassifierChain,
}

impl EccRecommender {
    /// Fits the classifier-chain ensemble on the observed patients.
    pub fn fit(
        observed_features: &Matrix,
        observed_labels: &Matrix,
        config: &EccConfig,
        rng: &mut impl Rng,
    ) -> Result<Self, CoreError> {
        let model = EnsembleClassifierChain::fit(observed_features, observed_labels, config, rng)
            .map_err(CoreError::Ml)?;
        Ok(Self { model })
    }
}

impl Recommender for EccRecommender {
    fn name(&self) -> &'static str {
        "ECC"
    }

    fn predict_scores(&self, features: &Matrix) -> Result<Matrix, CoreError> {
        Ok(self.model.predict_scores(features))
    }
}

/// One-vs-rest linear SVMs, one per drug (the "SVM" rows).
pub struct SvmRecommender {
    models: Vec<LinearSvm>,
}

impl SvmRecommender {
    /// Fits one linear SVM per drug on the observed patients. Drugs that no
    /// observed patient takes get a constant, strongly negative scorer.
    pub fn fit(
        observed_features: &Matrix,
        observed_labels: &Matrix,
        config: &SvmConfig,
    ) -> Result<Self, CoreError> {
        if observed_features.rows() != observed_labels.rows() {
            return Err(CoreError::Ml(MlError::DimensionMismatch {
                expected: observed_features.rows(),
                found: observed_labels.rows(),
                what: "label matrix rows",
            }));
        }
        let mut models = Vec::with_capacity(observed_labels.cols());
        for drug in 0..observed_labels.cols() {
            let targets = observed_labels.col_to_vec(drug);
            let svm = LinearSvm::fit(observed_features, &targets, config).map_err(CoreError::Ml)?;
            models.push(svm);
        }
        Ok(Self { models })
    }
}

impl Recommender for SvmRecommender {
    fn name(&self) -> &'static str {
        "SVM"
    }

    fn predict_scores(&self, features: &Matrix) -> Result<Matrix, CoreError> {
        let mut scores = Matrix::zeros(features.rows(), self.models.len());
        for (drug, model) in self.models.iter().enumerate() {
            for (p, value) in model.decision_function(features).into_iter().enumerate() {
                scores.set(p, drug, value);
            }
        }
        Ok(scores)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Patients with feature 0 take drug 0; patients with feature 1 take drug 1.
    fn toy() -> (Matrix, Matrix) {
        let x = Matrix::from_fn(40, 2, |r, c| if (r < 20) == (c == 0) { 1.0 } else { 0.0 });
        let y = Matrix::from_fn(40, 2, |r, c| if (r < 20) == (c == 0) { 1.0 } else { 0.0 });
        (x, y)
    }

    #[test]
    fn ecc_learns_feature_label_association() {
        let (x, y) = toy();
        let mut rng = StdRng::seed_from_u64(0);
        let model = EccRecommender::fit(&x, &y, &EccConfig::default(), &mut rng).unwrap();
        let new = Matrix::from_vec(1, 2, vec![1.0, 0.0]).unwrap();
        let scores = model.predict_scores(&new).unwrap();
        assert!(scores.get(0, 0) > scores.get(0, 1));
        assert_eq!(model.name(), "ECC");
    }

    #[test]
    fn svm_learns_feature_label_association() {
        let (x, y) = toy();
        let model = SvmRecommender::fit(&x, &y, &SvmConfig::default()).unwrap();
        let new = Matrix::from_vec(1, 2, vec![0.0, 1.0]).unwrap();
        let scores = model.predict_scores(&new).unwrap();
        assert!(scores.get(0, 1) > scores.get(0, 0));
        assert_eq!(model.name(), "SVM");
    }

    #[test]
    fn svm_rejects_mismatched_labels() {
        let x = Matrix::ones(4, 2);
        let y = Matrix::ones(3, 2);
        assert!(SvmRecommender::fit(&x, &y, &SvmConfig::default()).is_err());
    }
}
