//! Graph-learning baselines: GCMC, LightGCN and Bipar-GCN.
//!
//! All three operate on the observed patient–drug bipartite graph. To match
//! the paper's evaluation protocol (scores for *unobserved* patients who have
//! no links), every model keeps an inductive patient branch:
//!
//! * **GCMC** and **Bipar-GCN** encode patients from their features with a
//!   fully connected layer followed by graph convolutions over the observed
//!   graph; unobserved patients use the feature branch directly.
//! * **LightGCN** is transductive (free ID embeddings propagated over the
//!   graph); unobserved patients are represented by the similarity-weighted
//!   average of the observed patients' final embeddings, which is exactly
//!   the over-smoothed behaviour the paper analyses in Fig. 7.

use std::rc::Rc;

use rand::Rng;

use dssddi_core::CoreError;
use dssddi_gnn::{sample_link_batch, Activation, GcnLayer, Mlp};
use dssddi_graph::BipartiteGraph;
use dssddi_tensor::{init, Adam, Binder, CsrMatrix, Matrix, Optimizer, ParamSet, Tape, Var};

use crate::Recommender;

/// Hyperparameters shared by the graph baselines.
#[derive(Debug, Clone)]
pub struct GraphBaselineConfig {
    /// Embedding / hidden dimension.
    pub hidden_dim: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// Number of propagation layers.
    pub layers: usize,
}

impl Default for GraphBaselineConfig {
    fn default() -> Self {
        Self {
            hidden_dim: 64,
            epochs: 200,
            learning_rate: 0.01,
            layers: 2,
        }
    }
}

/// Bipartite propagation operators (patients→drugs, drugs→patients).
struct Operators {
    patient_from_drug: Rc<CsrMatrix>,
    drug_from_patient: Rc<CsrMatrix>,
}

fn build_operators(graph: &BipartiteGraph) -> Result<Operators, CoreError> {
    let m = graph.left_count();
    let n = graph.right_count();
    let mut pd = Vec::new();
    let mut dp = Vec::new();
    for (p, d) in graph.edges() {
        let norm = 1.0
            / ((graph.left_degree(p).max(1) as f32).sqrt()
                * (graph.right_degree(d).max(1) as f32).sqrt());
        pd.push((p, d, norm));
        dp.push((d, p, norm));
    }
    Ok(Operators {
        patient_from_drug: Rc::new(CsrMatrix::from_triplets(m, n, &pd)?),
        drug_from_patient: Rc::new(CsrMatrix::from_triplets(n, m, &dp)?),
    })
}

fn validate(features: &Matrix, graph: &BipartiteGraph) -> Result<(), CoreError> {
    if graph.left_count() == 0 || graph.right_count() == 0 {
        return Err(CoreError::invalid_input("training graph is empty"));
    }
    if features.rows() != graph.left_count() {
        return Err(CoreError::invalid_input(
            "feature rows must equal the number of observed patients",
        ));
    }
    Ok(())
}

/// Decodes patient/drug representation pairs into logits via inner products.
fn inner_product_logits(
    tape: &mut Tape,
    hp: Var,
    hd: Var,
    patients: &[usize],
    drugs: &[usize],
) -> Result<Var, CoreError> {
    let hi = tape.select_rows(hp, patients)?;
    let hv = tape.select_rows(hd, drugs)?;
    let prod = tape.mul(hi, hv)?;
    Ok(tape.sum_cols(prod))
}

// ---------------------------------------------------------------------------
// GCMC
// ---------------------------------------------------------------------------

/// Graph Convolutional Matrix Completion (Berg et al., 2017), adapted to the
/// inductive medication-suggestion protocol.
pub struct GcmcRecommender {
    params: ParamSet,
    patient_encoder: Mlp,
    drug_repr: Matrix,
}

impl GcmcRecommender {
    /// Fits GCMC on the observed patients.
    pub fn fit(
        observed_features: &Matrix,
        graph: &BipartiteGraph,
        config: &GraphBaselineConfig,
        rng: &mut impl Rng,
    ) -> Result<Self, CoreError> {
        validate(observed_features, graph)?;
        let n_drugs = graph.right_count();
        let h = config.hidden_dim;
        let mut params = ParamSet::new();
        let patient_encoder = Mlp::new(
            "gcmc.patient",
            &[observed_features.cols(), h],
            Activation::Relu,
            Activation::Relu,
            &mut params,
            rng,
        );
        let drug_embedding =
            params.add("gcmc.drug_embedding", init::xavier_uniform(n_drugs, h, rng));
        let drug_conv = GcnLayer::new("gcmc.drug_conv", h, h, Activation::Relu, &mut params, rng);
        let operators = build_operators(graph)?;
        let mut optimizer = Adam::new(config.learning_rate);

        for _ in 0..config.epochs {
            let batch = sample_link_batch(graph, 1, rng);
            let mut tape = Tape::new();
            let mut binder = Binder::new();
            let x = tape.constant(observed_features.clone());
            let hp = patient_encoder.forward(&mut tape, &params, &mut binder, x)?;
            let hd0 = binder.bind(&mut tape, &params, drug_embedding);
            // Drug representations aggregate the connected patients' encodings.
            let hd = drug_conv.forward_with_input(
                &mut tape,
                &params,
                &mut binder,
                &operators.drug_from_patient,
                hp,
                hd0,
            )?;
            let logits = inner_product_logits(&mut tape, hp, hd, &batch.patients, &batch.drugs)?;
            let targets = Matrix::from_vec(batch.targets.len(), 1, batch.targets.clone())?;
            let loss = tape.bce_with_logits(logits, &targets)?;
            tape.backward(loss)?;
            let grads = binder.grads(&tape, &params);
            optimizer.step(&mut params, &grads)?;
        }

        // Cache the final drug representations.
        let mut tape = Tape::new();
        let mut binder = Binder::new();
        let x = tape.constant(observed_features.clone());
        let hp = patient_encoder.forward(&mut tape, &params, &mut binder, x)?;
        let hd0 = binder.bind(&mut tape, &params, drug_embedding);
        let hd = drug_conv.forward_with_input(
            &mut tape,
            &params,
            &mut binder,
            &operators.drug_from_patient,
            hp,
            hd0,
        )?;
        let drug_repr = tape.value(hd).clone();
        Ok(Self {
            params,
            patient_encoder,
            drug_repr,
        })
    }
}

/// Helper extension: a GCN layer whose propagation input differs from the
/// self-features it is combined with (`act((Â x) W + x_self W + b)`),
/// used to aggregate patient encodings into drug representations.
trait GcnLayerExt {
    #[allow(clippy::too_many_arguments)]
    fn forward_with_input(
        &self,
        tape: &mut Tape,
        params: &ParamSet,
        binder: &mut Binder,
        adjacency: &Rc<CsrMatrix>,
        propagated_input: Var,
        self_input: Var,
    ) -> Result<Var, CoreError>;
}

impl GcnLayerExt for GcnLayer {
    fn forward_with_input(
        &self,
        tape: &mut Tape,
        params: &ParamSet,
        binder: &mut Binder,
        adjacency: &Rc<CsrMatrix>,
        propagated_input: Var,
        self_input: Var,
    ) -> Result<Var, CoreError> {
        let aggregated = self.forward(tape, params, binder, adjacency, propagated_input)?;
        Ok(tape.add(aggregated, self_input)?)
    }
}

impl Recommender for GcmcRecommender {
    fn name(&self) -> &'static str {
        "GCMC"
    }

    fn predict_scores(&self, features: &Matrix) -> Result<Matrix, CoreError> {
        let mut tape = Tape::new();
        let mut binder = Binder::new();
        let x = tape.constant(features.clone());
        let hp = self
            .patient_encoder
            .forward(&mut tape, &self.params, &mut binder, x)?;
        let hp = tape.value(hp).clone();
        Ok(hp.matmul(&self.drug_repr.transpose())?)
    }
}

// ---------------------------------------------------------------------------
// LightGCN
// ---------------------------------------------------------------------------

/// LightGCN (He et al., SIGIR 2020): free patient/drug ID embeddings
/// propagated over the bipartite graph without transformations.
pub struct LightGcnRecommender {
    observed_features: Matrix,
    patient_repr: Matrix,
    drug_repr: Matrix,
}

impl LightGcnRecommender {
    /// Fits LightGCN on the observed patients.
    pub fn fit(
        observed_features: &Matrix,
        graph: &BipartiteGraph,
        config: &GraphBaselineConfig,
        rng: &mut impl Rng,
    ) -> Result<Self, CoreError> {
        validate(observed_features, graph)?;
        let m = graph.left_count();
        let n = graph.right_count();
        let h = config.hidden_dim;
        let mut params = ParamSet::new();
        let patient_embedding = params.add("lightgcn.patients", init::xavier_uniform(m, h, rng));
        let drug_embedding = params.add("lightgcn.drugs", init::xavier_uniform(n, h, rng));
        let operators = build_operators(graph)?;
        let betas: Vec<f32> = (0..=config.layers)
            .map(|t| 1.0 / (t as f32 + 2.0))
            .collect();
        let mut optimizer = Adam::new(config.learning_rate);

        let propagate = |tape: &mut Tape, p0: Var, d0: Var| -> Result<(Var, Var), CoreError> {
            let mut cur_p = p0;
            let mut cur_d = d0;
            let mut comb_p = tape.scale(p0, betas[0]);
            let mut comb_d = tape.scale(d0, betas[0]);
            for &beta in betas.iter().skip(1) {
                let next_p = tape.spmm(&operators.patient_from_drug, cur_d)?;
                let next_d = tape.spmm(&operators.drug_from_patient, cur_p)?;
                cur_p = next_p;
                cur_d = next_d;
                let wp = tape.scale(cur_p, beta);
                let wd = tape.scale(cur_d, beta);
                comb_p = tape.add(comb_p, wp)?;
                comb_d = tape.add(comb_d, wd)?;
            }
            Ok((comb_p, comb_d))
        };

        for _ in 0..config.epochs {
            let batch = sample_link_batch(graph, 1, rng);
            let mut tape = Tape::new();
            let mut binder = Binder::new();
            let p0 = binder.bind(&mut tape, &params, patient_embedding);
            let d0 = binder.bind(&mut tape, &params, drug_embedding);
            let (hp, hd) = propagate(&mut tape, p0, d0)?;
            let logits = inner_product_logits(&mut tape, hp, hd, &batch.patients, &batch.drugs)?;
            let targets = Matrix::from_vec(batch.targets.len(), 1, batch.targets.clone())?;
            let loss = tape.bce_with_logits(logits, &targets)?;
            tape.backward(loss)?;
            let grads = binder.grads(&tape, &params);
            optimizer.step(&mut params, &grads)?;
        }

        let mut tape = Tape::new();
        let mut binder = Binder::new();
        let p0 = binder.bind(&mut tape, &params, patient_embedding);
        let d0 = binder.bind(&mut tape, &params, drug_embedding);
        let (hp, hd) = propagate(&mut tape, p0, d0)?;
        let patient_repr = tape.value(hp).clone();
        let drug_repr = tape.value(hd).clone();
        Ok(Self {
            observed_features: observed_features.clone(),
            patient_repr,
            drug_repr,
        })
    }

    /// Final (propagated) representations of unobserved patients: the cosine
    /// similarity-weighted average of the observed patients' embeddings.
    /// This is the quantity compared against DSSDDI in Fig. 7(a).
    pub fn patient_representations(&self, features: &Matrix) -> Result<Matrix, CoreError> {
        let similarity = features.cosine_similarity_matrix(&self.observed_features)?;
        // Row-normalise the similarity so each new patient is a convex-ish
        // combination of observed patients.
        let mut weights = similarity;
        for r in 0..weights.rows() {
            let sum: f32 = weights.row(r).iter().map(|v| v.max(0.0)).sum();
            if sum > 1e-6 {
                for v in weights.row_mut(r) {
                    *v = v.max(0.0) / sum;
                }
            }
        }
        Ok(weights.matmul(&self.patient_repr)?)
    }

    /// Final (propagated) drug representations, compared in Fig. 7(b).
    pub fn drug_representations(&self) -> &Matrix {
        &self.drug_repr
    }
}

impl Recommender for LightGcnRecommender {
    fn name(&self) -> &'static str {
        "LightGCN"
    }

    fn predict_scores(&self, features: &Matrix) -> Result<Matrix, CoreError> {
        let hp = self.patient_representations(features)?;
        Ok(hp.matmul(&self.drug_repr.transpose())?)
    }
}

// ---------------------------------------------------------------------------
// Bipar-GCN
// ---------------------------------------------------------------------------

/// Bipar-GCN (Jin et al., ICDE 2020): two structurally identical towers —
/// a patient-oriented network and a drug-oriented network — trained jointly
/// with a link-prediction objective.
pub struct BiparGcnRecommender {
    params: ParamSet,
    patient_tower: Mlp,
    drug_repr: Matrix,
}

impl BiparGcnRecommender {
    /// Fits Bipar-GCN on the observed patients.
    pub fn fit(
        observed_features: &Matrix,
        graph: &BipartiteGraph,
        config: &GraphBaselineConfig,
        rng: &mut impl Rng,
    ) -> Result<Self, CoreError> {
        validate(observed_features, graph)?;
        let n_drugs = graph.right_count();
        let h = config.hidden_dim;
        let mut params = ParamSet::new();
        // Patient-oriented tower: features -> hidden -> hidden.
        let patient_tower = Mlp::new(
            "bipar.patient",
            &[observed_features.cols(), h, h],
            Activation::LeakyRelu,
            Activation::Identity,
            &mut params,
            rng,
        );
        // Drug-oriented tower: free embeddings refined by aggregating the
        // patient-tower outputs of connected patients.
        let drug_embedding = params.add(
            "bipar.drug_embedding",
            init::xavier_uniform(n_drugs, h, rng),
        );
        let drug_conv = GcnLayer::new(
            "bipar.drug_conv",
            h,
            h,
            Activation::LeakyRelu,
            &mut params,
            rng,
        );
        let operators = build_operators(graph)?;
        let mut optimizer = Adam::new(config.learning_rate);

        let forward = |tape: &mut Tape,
                       binder: &mut Binder,
                       params: &ParamSet|
         -> Result<(Var, Var), CoreError> {
            let x = tape.constant(observed_features.clone());
            let hp = patient_tower.forward(tape, params, binder, x)?;
            let hd0 = binder.bind(tape, params, drug_embedding);
            let aggregated =
                drug_conv.forward(tape, params, binder, &operators.drug_from_patient, hp)?;
            let hd = tape.add(aggregated, hd0)?;
            Ok((hp, hd))
        };

        for _ in 0..config.epochs {
            let batch = sample_link_batch(graph, 1, rng);
            let mut tape = Tape::new();
            let mut binder = Binder::new();
            let (hp, hd) = forward(&mut tape, &mut binder, &params)?;
            let logits = inner_product_logits(&mut tape, hp, hd, &batch.patients, &batch.drugs)?;
            let targets = Matrix::from_vec(batch.targets.len(), 1, batch.targets.clone())?;
            let loss = tape.bce_with_logits(logits, &targets)?;
            tape.backward(loss)?;
            let grads = binder.grads(&tape, &params);
            optimizer.step(&mut params, &grads)?;
        }

        let mut tape = Tape::new();
        let mut binder = Binder::new();
        let (_, hd) = forward(&mut tape, &mut binder, &params)?;
        let drug_repr = tape.value(hd).clone();
        Ok(Self {
            params,
            patient_tower,
            drug_repr,
        })
    }
}

impl Recommender for BiparGcnRecommender {
    fn name(&self) -> &'static str {
        "Bipar-GCN"
    }

    fn predict_scores(&self, features: &Matrix) -> Result<Matrix, CoreError> {
        let mut tape = Tape::new();
        let mut binder = Binder::new();
        let x = tape.constant(features.clone());
        let hp = self
            .patient_tower
            .forward(&mut tape, &self.params, &mut binder, x)?;
        let hp = tape.value(hp).clone();
        Ok(hp.matmul(&self.drug_repr.transpose())?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Two groups of patients with distinct features and distinct drugs.
    fn toy() -> (Matrix, BipartiteGraph) {
        let features = Matrix::from_fn(30, 4, |r, c| {
            let group = r / 15;
            if (c < 2) == (group == 0) {
                1.0
            } else {
                0.0
            }
        });
        let mut pairs = Vec::new();
        for p in 0..30 {
            if p / 15 == 0 {
                pairs.push((p, 0));
                pairs.push((p, 1));
            } else {
                pairs.push((p, 3));
                pairs.push((p, 4));
            }
        }
        (features, BipartiteGraph::from_pairs(30, 5, &pairs).unwrap())
    }

    fn quick() -> GraphBaselineConfig {
        GraphBaselineConfig {
            hidden_dim: 8,
            epochs: 60,
            learning_rate: 0.05,
            layers: 2,
        }
    }

    fn group0_probe() -> Matrix {
        Matrix::from_vec(1, 4, vec![1.0, 1.0, 0.0, 0.0]).unwrap()
    }

    #[test]
    fn gcmc_ranks_group_drugs_higher() {
        let (x, g) = toy();
        let mut rng = StdRng::seed_from_u64(0);
        let model = GcmcRecommender::fit(&x, &g, &quick(), &mut rng).unwrap();
        let scores = model.predict_scores(&group0_probe()).unwrap();
        assert!(scores.get(0, 0) > scores.get(0, 3));
        assert_eq!(model.name(), "GCMC");
    }

    #[test]
    fn lightgcn_ranks_group_drugs_higher_and_oversmooths_patients() {
        let (x, g) = toy();
        let mut rng = StdRng::seed_from_u64(1);
        let model = LightGcnRecommender::fit(&x, &g, &quick(), &mut rng).unwrap();
        let scores = model.predict_scores(&group0_probe()).unwrap();
        assert!(scores.get(0, 0) > scores.get(0, 3));
        // Representations of two different unseen patients are highly similar
        // (the over-smoothing phenomenon of Fig. 7a): both are averages of
        // the same pool of observed embeddings.
        let probes = Matrix::from_vec(2, 4, vec![1.0, 1.0, 0.0, 0.0, 1.0, 0.9, 0.0, 0.1]).unwrap();
        let reprs = model.patient_representations(&probes).unwrap();
        assert!(reprs.row_cosine(0, &reprs, 1) > 0.9);
        assert_eq!(model.drug_representations().rows(), 5);
        assert_eq!(model.name(), "LightGCN");
    }

    #[test]
    fn bipar_gcn_ranks_group_drugs_higher() {
        let (x, g) = toy();
        let mut rng = StdRng::seed_from_u64(2);
        let model = BiparGcnRecommender::fit(&x, &g, &quick(), &mut rng).unwrap();
        let scores = model.predict_scores(&group0_probe()).unwrap();
        assert!(scores.get(0, 1) > scores.get(0, 4));
        assert_eq!(model.name(), "Bipar-GCN");
    }

    #[test]
    fn invalid_inputs_are_rejected() {
        let (x, g) = toy();
        let mut rng = StdRng::seed_from_u64(3);
        let bad_features = Matrix::zeros(5, 4);
        assert!(GcmcRecommender::fit(&bad_features, &g, &quick(), &mut rng).is_err());
        assert!(LightGcnRecommender::fit(&bad_features, &g, &quick(), &mut rng).is_err());
        assert!(BiparGcnRecommender::fit(&bad_features, &g, &quick(), &mut rng).is_err());
        let _ = x;
    }
}
