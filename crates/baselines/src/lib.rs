//! # dssddi-baselines
//!
//! The comparison methods of the paper's evaluation (Section V-A1):
//!
//! * **Traditional**: [`UserSim`] (feature-similarity weighted medication
//!   use), [`EccRecommender`] (Ensemble Classifier Chains over logistic
//!   regression) and [`SvmRecommender`] (one-vs-rest linear SVMs).
//! * **Graph-learning**: [`GcmcRecommender`], [`LightGcnRecommender`],
//!   [`SafeDrugRecommender`], [`BiparGcnRecommender`] and
//!   [`CauseRecRecommender`].
//!
//! All baselines expose the same [`Recommender`] interface used by the
//! experiment harness: fit on the observed patients, then produce a score
//! matrix (patients × drugs) for unobserved patients from their features —
//! the same inductive protocol DSSDDI is evaluated under.

#![warn(missing_docs)]

pub mod classical;
pub mod graph_models;
pub mod neural;
pub mod usersim;

pub use classical::{EccRecommender, SvmRecommender};
pub use graph_models::{BiparGcnRecommender, GcmcRecommender, LightGcnRecommender};
pub use neural::{CauseRecRecommender, SafeDrugRecommender};
pub use usersim::{ConditionMix, PopulationIter, PopulationSpec, SimPatient, UserSim};

use dssddi_core::CoreError;
use dssddi_tensor::Matrix;

/// A fitted medication recommender that scores every drug for new patients.
pub trait Recommender {
    /// Name used in the experiment tables.
    fn name(&self) -> &'static str;

    /// Scores (higher = more recommended) for every patient row of
    /// `features`, one column per drug.
    fn predict_scores(&self, features: &Matrix) -> Result<Matrix, CoreError>;
}
