//! Neural multi-label baselines: SafeDrug and CauseRec.
//!
//! Both originals consume multi-visit patient histories (GRU encoders over
//! past visits). The chronic cohort has a single interview record per
//! patient, so — as discussed in DESIGN.md — the sequence encoders reduce to
//! feed-forward encoders over the patient features while the components that
//! define each method are kept: SafeDrug's DDI-controlled loss that
//! penalises co-recommending antagonistic drugs, and CauseRec's
//! counterfactual sequence (here: feature) perturbation with a consistency
//! objective.

use rand::Rng;

use dssddi_core::CoreError;
use dssddi_gnn::{Activation, Mlp};
use dssddi_graph::{Interaction, SignedGraph};
use dssddi_tensor::{Adam, Binder, Matrix, Optimizer, ParamSet, Tape};

use crate::Recommender;

/// Hyperparameters shared by the neural baselines.
#[derive(Debug, Clone)]
pub struct NeuralConfig {
    /// Hidden dimension of the MLP encoder.
    pub hidden_dim: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Adam learning rate.
    pub learning_rate: f32,
}

impl Default for NeuralConfig {
    fn default() -> Self {
        Self {
            hidden_dim: 64,
            epochs: 150,
            learning_rate: 0.01,
        }
    }
}

/// A feature → drugs multi-label MLP used as the shared encoder.
struct MultiLabelMlp {
    params: ParamSet,
    mlp: Mlp,
}

impl MultiLabelMlp {
    fn new(in_dim: usize, hidden: usize, n_drugs: usize, rng: &mut impl Rng) -> Self {
        let mut params = ParamSet::new();
        let mlp = Mlp::new(
            "baseline.mlp",
            &[in_dim, hidden, n_drugs],
            Activation::Relu,
            Activation::Identity,
            &mut params,
            rng,
        );
        Self { params, mlp }
    }

    fn scores(&self, features: &Matrix) -> Result<Matrix, CoreError> {
        let mut tape = Tape::new();
        let mut binder = Binder::new();
        let x = tape.constant(features.clone());
        let logits = self.mlp.forward(&mut tape, &self.params, &mut binder, x)?;
        let probs = tape.sigmoid(logits);
        Ok(tape.value(probs).clone())
    }
}

/// SafeDrug (Yang et al., IJCAI 2021), simplified to the single-visit
/// setting: an MLP recommender trained with binary cross-entropy plus a DDI
/// loss that penalises jointly recommending antagonistic drug pairs.
pub struct SafeDrugRecommender {
    model: MultiLabelMlp,
    losses: Vec<f32>,
}

impl SafeDrugRecommender {
    /// Fits the model on the observed patients.
    ///
    /// `ddi_weight` controls the strength of the antagonistic-pair penalty
    /// (0.05 is a reasonable default).
    pub fn fit(
        observed_features: &Matrix,
        observed_labels: &Matrix,
        ddi: &SignedGraph,
        ddi_weight: f32,
        config: &NeuralConfig,
        rng: &mut impl Rng,
    ) -> Result<Self, CoreError> {
        validate(observed_features, observed_labels)?;
        let n_drugs = observed_labels.cols();
        let mut model =
            MultiLabelMlp::new(observed_features.cols(), config.hidden_dim, n_drugs, rng);
        let antagonistic: Vec<(usize, usize)> = ddi
            .edges_of(Interaction::Antagonistic)
            .into_iter()
            .filter(|&(u, v)| u < n_drugs && v < n_drugs)
            .collect();
        let mut optimizer = Adam::new(config.learning_rate);
        let mut losses = Vec::with_capacity(config.epochs);
        for _ in 0..config.epochs {
            let mut tape = Tape::new();
            let mut binder = Binder::new();
            let x = tape.constant(observed_features.clone());
            let logits = model
                .mlp
                .forward(&mut tape, &model.params, &mut binder, x)?;
            let bce = tape.bce_with_logits(logits, observed_labels)?;
            // DDI loss: mean over antagonistic pairs of the product of the
            // predicted probabilities (both high => penalty).
            let loss = if antagonistic.is_empty() || ddi_weight == 0.0 {
                bce
            } else {
                let probs = tape.sigmoid(logits);
                // Select the two columns of every antagonistic pair via a
                // constant selection matrix: P_u = probs · S_u.
                let mut select_u = Matrix::zeros(n_drugs, antagonistic.len());
                let mut select_v = Matrix::zeros(n_drugs, antagonistic.len());
                for (idx, &(u, v)) in antagonistic.iter().enumerate() {
                    select_u.set(u, idx, 1.0);
                    select_v.set(v, idx, 1.0);
                }
                let su = tape.constant(select_u);
                let sv = tape.constant(select_v);
                let pu = tape.matmul(probs, su)?;
                let pv = tape.matmul(probs, sv)?;
                let joint = tape.mul(pu, pv)?;
                let ddi_loss = tape.mean_all(joint);
                let weighted = tape.scale(ddi_loss, ddi_weight);
                tape.add(bce, weighted)?
            };
            tape.backward(loss)?;
            let grads = binder.grads(&tape, &model.params);
            optimizer.step(&mut model.params, &grads)?;
            losses.push(tape.value(loss).get(0, 0));
        }
        Ok(Self { model, losses })
    }

    /// Per-epoch training loss.
    pub fn training_losses(&self) -> &[f32] {
        &self.losses
    }
}

impl Recommender for SafeDrugRecommender {
    fn name(&self) -> &'static str {
        "SafeDrug"
    }

    fn predict_scores(&self, features: &Matrix) -> Result<Matrix, CoreError> {
        self.model.scores(features)
    }
}

/// CauseRec (Zhang et al., SIGIR 2021), simplified to the single-visit
/// setting: the patient encoder is trained on both the original features and
/// counterfactual feature perturbations (random replacement of feature
/// blocks), with the perturbed views trained toward the same outcomes.
pub struct CauseRecRecommender {
    model: MultiLabelMlp,
    losses: Vec<f32>,
}

impl CauseRecRecommender {
    /// Fits the model; `perturbation` is the fraction of feature columns
    /// replaced when constructing each counterfactual view.
    pub fn fit(
        observed_features: &Matrix,
        observed_labels: &Matrix,
        perturbation: f32,
        config: &NeuralConfig,
        rng: &mut impl Rng,
    ) -> Result<Self, CoreError> {
        validate(observed_features, observed_labels)?;
        let mut model = MultiLabelMlp::new(
            observed_features.cols(),
            config.hidden_dim,
            observed_labels.cols(),
            rng,
        );
        let mut optimizer = Adam::new(config.learning_rate);
        let mut losses = Vec::with_capacity(config.epochs);
        for _ in 0..config.epochs {
            // Counterfactual view: replace a random subset of columns with
            // the values of a randomly chosen other patient.
            let mut counterfactual = observed_features.clone();
            for c in 0..counterfactual.cols() {
                if rng.gen::<f32>() < perturbation {
                    let donor_shift = rng.gen_range(1..counterfactual.rows().max(2));
                    for r in 0..counterfactual.rows() {
                        let donor = (r + donor_shift) % counterfactual.rows();
                        counterfactual.set(r, c, observed_features.get(donor, c));
                    }
                }
            }
            let mut tape = Tape::new();
            let mut binder = Binder::new();
            let x = tape.constant(observed_features.clone());
            let logits = model
                .mlp
                .forward(&mut tape, &model.params, &mut binder, x)?;
            let factual_loss = tape.bce_with_logits(logits, observed_labels)?;
            let x_cf = tape.constant(counterfactual);
            let logits_cf = model
                .mlp
                .forward(&mut tape, &model.params, &mut binder, x_cf)?;
            let cf_loss = tape.bce_with_logits(logits_cf, observed_labels)?;
            let cf_weighted = tape.scale(cf_loss, 0.5);
            let loss = tape.add(factual_loss, cf_weighted)?;
            tape.backward(loss)?;
            let grads = binder.grads(&tape, &model.params);
            optimizer.step(&mut model.params, &grads)?;
            losses.push(tape.value(loss).get(0, 0));
        }
        Ok(Self { model, losses })
    }

    /// Per-epoch training loss.
    pub fn training_losses(&self) -> &[f32] {
        &self.losses
    }
}

impl Recommender for CauseRecRecommender {
    fn name(&self) -> &'static str {
        "CauseRec"
    }

    fn predict_scores(&self, features: &Matrix) -> Result<Matrix, CoreError> {
        self.model.scores(features)
    }
}

fn validate(features: &Matrix, labels: &Matrix) -> Result<(), CoreError> {
    if features.rows() == 0 {
        return Err(CoreError::invalid_input(
            "baseline requires observed patients",
        ));
    }
    if features.rows() != labels.rows() {
        return Err(CoreError::invalid_input(
            "labels must have one row per observed patient",
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy() -> (Matrix, Matrix, SignedGraph) {
        let x = Matrix::from_fn(60, 3, |r, c| if (r % 3) == c { 1.0 } else { 0.0 });
        let y = Matrix::from_fn(60, 4, |r, c| if (r % 3) == c { 1.0 } else { 0.0 });
        let mut ddi = SignedGraph::new(4);
        ddi.add_interaction(0, 3, Interaction::Antagonistic)
            .unwrap();
        (x, y, ddi)
    }

    fn quick() -> NeuralConfig {
        NeuralConfig {
            hidden_dim: 16,
            epochs: 80,
            learning_rate: 0.05,
        }
    }

    #[test]
    fn safedrug_learns_and_loss_decreases() {
        let (x, y, ddi) = toy();
        let mut rng = StdRng::seed_from_u64(0);
        let model = SafeDrugRecommender::fit(&x, &y, &ddi, 0.05, &quick(), &mut rng).unwrap();
        assert!(model.training_losses().last().unwrap() < model.training_losses().first().unwrap());
        let new = Matrix::from_vec(1, 3, vec![1.0, 0.0, 0.0]).unwrap();
        let scores = model.predict_scores(&new).unwrap();
        assert!(scores.get(0, 0) > scores.get(0, 1));
        assert_eq!(model.name(), "SafeDrug");
    }

    #[test]
    fn safedrug_ddi_penalty_lowers_antagonistic_joint_probability() {
        let (x, mut y, ddi) = toy();
        // Force drug 3 to be taken together with drug 0 in the labels so the
        // unconstrained model would recommend both.
        for r in 0..y.rows() {
            if y.get(r, 0) > 0.5 {
                y.set(r, 3, 1.0);
            }
        }
        let mut rng = StdRng::seed_from_u64(1);
        let unconstrained =
            SafeDrugRecommender::fit(&x, &y, &ddi, 0.0, &quick(), &mut rng).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let constrained = SafeDrugRecommender::fit(&x, &y, &ddi, 5.0, &quick(), &mut rng).unwrap();
        let probe = Matrix::from_vec(1, 3, vec![1.0, 0.0, 0.0]).unwrap();
        let joint = |m: &SafeDrugRecommender| {
            let s = m.predict_scores(&probe).unwrap();
            s.get(0, 0) * s.get(0, 3)
        };
        assert!(joint(&constrained) < joint(&unconstrained));
    }

    #[test]
    fn causerec_learns_under_perturbation() {
        let (x, y, _) = toy();
        let mut rng = StdRng::seed_from_u64(2);
        let model = CauseRecRecommender::fit(&x, &y, 0.2, &quick(), &mut rng).unwrap();
        let new = Matrix::from_vec(1, 3, vec![0.0, 1.0, 0.0]).unwrap();
        let scores = model.predict_scores(&new).unwrap();
        assert!(scores.get(0, 1) > scores.get(0, 2));
        assert_eq!(model.name(), "CauseRec");
        assert!(model.training_losses().len() == 80);
    }

    #[test]
    fn invalid_inputs_are_rejected() {
        let (x, y, ddi) = toy();
        let mut rng = StdRng::seed_from_u64(3);
        assert!(SafeDrugRecommender::fit(
            &Matrix::zeros(0, 3),
            &Matrix::zeros(0, 4),
            &ddi,
            0.1,
            &quick(),
            &mut rng
        )
        .is_err());
        assert!(
            CauseRecRecommender::fit(&x, &Matrix::zeros(10, 4), 0.2, &quick(), &mut rng).is_err()
        );
        let _ = y;
    }
}
