//! Ranking metrics for medication suggestion: Precision@k, Recall@k and
//! NDCG@k exactly as defined in Section V-A2 (Eq. 21–24) of the paper.

use dssddi_tensor::Matrix;

use crate::MlError;

/// Top-k drug indices for one patient, given a score row.
pub fn top_k_indices(scores: &[f32], k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    idx.sort_by(|&a, &b| {
        scores[b]
            .partial_cmp(&scores[a])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    idx.truncate(k);
    idx
}

/// Aggregate Precision@k over all patients (Eq. 21): the total number of
/// suggested-and-taken drugs divided by the total number of suggestions.
pub fn precision_at_k(scores: &Matrix, labels: &Matrix, k: usize) -> Result<f64, MlError> {
    validate(scores, labels, k)?;
    let mut hit = 0usize;
    let mut suggested = 0usize;
    for p in 0..scores.rows() {
        let top = top_k_indices(scores.row(p), k);
        suggested += top.len();
        hit += top.iter().filter(|&&d| labels.get(p, d) > 0.5).count();
    }
    Ok(hit as f64 / suggested.max(1) as f64)
}

/// Aggregate Recall@k over all patients (Eq. 22): the total number of
/// suggested-and-taken drugs divided by the total number of drugs taken.
pub fn recall_at_k(scores: &Matrix, labels: &Matrix, k: usize) -> Result<f64, MlError> {
    validate(scores, labels, k)?;
    let mut hit = 0usize;
    let mut relevant = 0usize;
    for p in 0..scores.rows() {
        let top = top_k_indices(scores.row(p), k);
        hit += top.iter().filter(|&&d| labels.get(p, d) > 0.5).count();
        relevant += labels.row(p).iter().filter(|&&v| v > 0.5).count();
    }
    Ok(hit as f64 / relevant.max(1) as f64)
}

/// Mean NDCG@k over patients (Eq. 23–24) with binary graded relevance.
pub fn ndcg_at_k(scores: &Matrix, labels: &Matrix, k: usize) -> Result<f64, MlError> {
    validate(scores, labels, k)?;
    let mut total = 0.0f64;
    let mut counted = 0usize;
    for p in 0..scores.rows() {
        let relevant = labels.row(p).iter().filter(|&&v| v > 0.5).count();
        if relevant == 0 {
            continue;
        }
        counted += 1;
        let top = top_k_indices(scores.row(p), k);
        let mut dcg = 0.0f64;
        for (pos, &d) in top.iter().enumerate() {
            let rel = if labels.get(p, d) > 0.5 { 1.0 } else { 0.0 };
            dcg += (2f64.powf(rel) - 1.0) / ((pos as f64 + 2.0).log2());
        }
        let ideal_hits = relevant.min(k);
        let mut idcg = 0.0f64;
        for pos in 0..ideal_hits {
            idcg += 1.0 / ((pos as f64 + 2.0).log2());
        }
        if idcg > 0.0 {
            total += dcg / idcg;
        }
    }
    Ok(total / counted.max(1) as f64)
}

/// Precision, recall and NDCG at one cutoff, bundled for the experiment tables.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankingMetrics {
    /// Precision@k.
    pub precision: f64,
    /// Recall@k.
    pub recall: f64,
    /// NDCG@k.
    pub ndcg: f64,
}

/// Computes all three ranking metrics at a cutoff.
pub fn ranking_metrics(
    scores: &Matrix,
    labels: &Matrix,
    k: usize,
) -> Result<RankingMetrics, MlError> {
    Ok(RankingMetrics {
        precision: precision_at_k(scores, labels, k)?,
        recall: recall_at_k(scores, labels, k)?,
        ndcg: ndcg_at_k(scores, labels, k)?,
    })
}

fn validate(scores: &Matrix, labels: &Matrix, k: usize) -> Result<(), MlError> {
    if scores.shape() != labels.shape() {
        return Err(MlError::DimensionMismatch {
            expected: scores.rows(),
            found: labels.rows(),
            what: "scores vs labels shape",
        });
    }
    if k == 0 {
        return Err(MlError::InvalidArgument {
            what: "k must be positive",
        });
    }
    if scores.rows() == 0 {
        return Err(MlError::EmptyInput {
            what: "metrics require at least one patient",
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two patients, four drugs. Patient 0 takes drugs {0, 1}; patient 1
    /// takes drug {3}.
    fn toy() -> (Matrix, Matrix) {
        let labels = Matrix::from_vec(2, 4, vec![1.0, 1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 1.0]).unwrap();
        let scores = Matrix::from_vec(
            2,
            4,
            vec![
                0.9, 0.8, 0.1, 0.2, // perfect ordering for patient 0
                0.9, 0.1, 0.2, 0.8, // drug 3 ranked second for patient 1
            ],
        )
        .unwrap();
        (scores, labels)
    }

    #[test]
    fn perfect_and_partial_rankings() {
        let (scores, labels) = toy();
        // k=2: patient 0 hits 2/2, patient 1 hits 1/2 => precision 3/4.
        assert!((precision_at_k(&scores, &labels, 2).unwrap() - 0.75).abs() < 1e-9);
        // Recall: hits 3 of 3 relevant drugs.
        assert!((recall_at_k(&scores, &labels, 2).unwrap() - 1.0).abs() < 1e-9);
        let ndcg = ndcg_at_k(&scores, &labels, 2).unwrap();
        assert!(ndcg > 0.8 && ndcg <= 1.0);
    }

    #[test]
    fn perfect_scores_reach_one() {
        let labels = Matrix::from_vec(1, 3, vec![0.0, 1.0, 0.0]).unwrap();
        let scores = Matrix::from_vec(1, 3, vec![0.0, 1.0, 0.0]).unwrap();
        assert!((ndcg_at_k(&scores, &labels, 1).unwrap() - 1.0).abs() < 1e-9);
        assert!((precision_at_k(&scores, &labels, 1).unwrap() - 1.0).abs() < 1e-9);
        assert!((recall_at_k(&scores, &labels, 1).unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn worst_case_scores_are_zero() {
        let labels = Matrix::from_vec(1, 4, vec![1.0, 0.0, 0.0, 0.0]).unwrap();
        let scores = Matrix::from_vec(1, 4, vec![0.0, 0.9, 0.8, 0.7]).unwrap();
        assert_eq!(precision_at_k(&scores, &labels, 2).unwrap(), 0.0);
        assert_eq!(recall_at_k(&scores, &labels, 2).unwrap(), 0.0);
        assert_eq!(ndcg_at_k(&scores, &labels, 2).unwrap(), 0.0);
    }

    #[test]
    fn metrics_are_bounded() {
        let (scores, labels) = toy();
        for k in 1..=4 {
            let m = ranking_metrics(&scores, &labels, k).unwrap();
            assert!((0.0..=1.0).contains(&m.precision));
            assert!((0.0..=1.0).contains(&m.recall));
            assert!((0.0..=1.0).contains(&m.ndcg));
        }
    }

    #[test]
    fn recall_is_monotone_in_k() {
        let (scores, labels) = toy();
        let mut prev = 0.0;
        for k in 1..=4 {
            let r = recall_at_k(&scores, &labels, k).unwrap();
            assert!(r + 1e-12 >= prev);
            prev = r;
        }
    }

    #[test]
    fn patients_without_labels_are_skipped_by_ndcg() {
        let labels = Matrix::from_vec(2, 3, vec![0.0, 0.0, 0.0, 1.0, 0.0, 0.0]).unwrap();
        let scores = Matrix::from_vec(2, 3, vec![0.5, 0.4, 0.3, 0.9, 0.1, 0.0]).unwrap();
        assert!((ndcg_at_k(&scores, &labels, 1).unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn invalid_arguments_error() {
        let (scores, labels) = toy();
        assert!(precision_at_k(&scores, &labels, 0).is_err());
        assert!(precision_at_k(&scores, &Matrix::zeros(2, 3), 1).is_err());
        assert!(ndcg_at_k(&Matrix::zeros(0, 4), &Matrix::zeros(0, 4), 1).is_err());
    }

    #[test]
    fn top_k_handles_k_larger_than_items() {
        let top = top_k_indices(&[0.1, 0.5], 10);
        assert_eq!(top, vec![1, 0]);
    }
}
