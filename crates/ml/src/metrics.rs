//! Ranking metrics for medication suggestion: Precision@k, Recall@k and
//! NDCG@k exactly as defined in Section V-A2 (Eq. 21–24) of the paper.

use dssddi_tensor::Matrix;

use crate::MlError;

/// Top-k drug indices for one patient, given a score row.
///
/// `k` larger than the row is truncated to the row length, and NaN scores
/// always rank *below* every real score (a drug whose prediction is
/// undefined must never displace one with a genuine score).
pub fn top_k_indices(scores: &[f32], k: usize) -> Vec<usize> {
    let rank = |x: f32| if x.is_nan() { f32::NEG_INFINITY } else { x };
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    idx.sort_by(|&a, &b| rank(scores[b]).total_cmp(&rank(scores[a])));
    idx.truncate(k);
    idx
}

/// Aggregate Precision@k over all patients (Eq. 21): the total number of
/// suggested-and-taken drugs divided by the total number of suggestions.
///
/// Edge cases are defined, not NaN: `k = 0`, mismatched shapes and an empty
/// score matrix return an [`MlError`]; `k` larger than the number of drugs
/// counts only the `n_drugs` suggestions that can actually be made; a
/// patient with an all-zero label row simply contributes no hits, and a
/// batch with no relevant labels at all scores 0.0.
pub fn precision_at_k(scores: &Matrix, labels: &Matrix, k: usize) -> Result<f64, MlError> {
    validate(scores, labels, k)?;
    let mut hit = 0usize;
    let mut suggested = 0usize;
    for p in 0..scores.rows() {
        let top = top_k_indices(scores.row(p), k);
        suggested += top.len();
        hit += top.iter().filter(|&&d| labels.get(p, d) > 0.5).count();
    }
    Ok(hit as f64 / suggested.max(1) as f64)
}

/// Aggregate Recall@k over all patients (Eq. 22): the total number of
/// suggested-and-taken drugs divided by the total number of drugs taken.
///
/// Same defined edge cases as [`precision_at_k`]; when no patient takes any
/// drug the denominator would be zero and the recall is defined as 0.0.
pub fn recall_at_k(scores: &Matrix, labels: &Matrix, k: usize) -> Result<f64, MlError> {
    validate(scores, labels, k)?;
    let mut hit = 0usize;
    let mut relevant = 0usize;
    for p in 0..scores.rows() {
        let top = top_k_indices(scores.row(p), k);
        hit += top.iter().filter(|&&d| labels.get(p, d) > 0.5).count();
        relevant += labels.row(p).iter().filter(|&&v| v > 0.5).count();
    }
    Ok(hit as f64 / relevant.max(1) as f64)
}

/// Mean NDCG@k over patients (Eq. 23–24) with binary graded relevance.
///
/// Patients with an all-zero label row have no defined ideal ranking and are
/// skipped (the mean runs over patients with at least one relevant drug); a
/// batch where *every* row is all-zero returns 0.0. `k = 0` is an
/// [`MlError`]; `k` beyond the number of drugs uses the full ranking.
pub fn ndcg_at_k(scores: &Matrix, labels: &Matrix, k: usize) -> Result<f64, MlError> {
    validate(scores, labels, k)?;
    let mut total = 0.0f64;
    let mut counted = 0usize;
    for p in 0..scores.rows() {
        let relevant = labels.row(p).iter().filter(|&&v| v > 0.5).count();
        if relevant == 0 {
            continue;
        }
        counted += 1;
        let top = top_k_indices(scores.row(p), k);
        let mut dcg = 0.0f64;
        for (pos, &d) in top.iter().enumerate() {
            let rel = if labels.get(p, d) > 0.5 { 1.0 } else { 0.0 };
            dcg += (2f64.powf(rel) - 1.0) / ((pos as f64 + 2.0).log2());
        }
        let ideal_hits = relevant.min(k);
        let mut idcg = 0.0f64;
        for pos in 0..ideal_hits {
            idcg += 1.0 / ((pos as f64 + 2.0).log2());
        }
        if idcg > 0.0 {
            total += dcg / idcg;
        }
    }
    Ok(total / counted.max(1) as f64)
}

/// Precision, recall and NDCG at one cutoff, bundled for the experiment tables.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankingMetrics {
    /// Precision@k.
    pub precision: f64,
    /// Recall@k.
    pub recall: f64,
    /// NDCG@k.
    pub ndcg: f64,
}

/// Computes all three ranking metrics at a cutoff.
pub fn ranking_metrics(
    scores: &Matrix,
    labels: &Matrix,
    k: usize,
) -> Result<RankingMetrics, MlError> {
    Ok(RankingMetrics {
        precision: precision_at_k(scores, labels, k)?,
        recall: recall_at_k(scores, labels, k)?,
        ndcg: ndcg_at_k(scores, labels, k)?,
    })
}

/// Shared argument validation: the same shape, a positive `k` and at least
/// one patient. `k = 0` is rejected here (rather than silently scoring 0.0)
/// because it is always a caller bug, never a data condition.
fn validate(scores: &Matrix, labels: &Matrix, k: usize) -> Result<(), MlError> {
    if scores.shape() != labels.shape() {
        return Err(MlError::DimensionMismatch {
            expected: scores.rows(),
            found: labels.rows(),
            what: "scores vs labels shape",
        });
    }
    if k == 0 {
        return Err(MlError::InvalidArgument {
            what: "k must be positive",
        });
    }
    if scores.rows() == 0 {
        return Err(MlError::EmptyInput {
            what: "metrics require at least one patient",
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two patients, four drugs. Patient 0 takes drugs {0, 1}; patient 1
    /// takes drug {3}.
    fn toy() -> (Matrix, Matrix) {
        let labels = Matrix::from_vec(2, 4, vec![1.0, 1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 1.0]).unwrap();
        let scores = Matrix::from_vec(
            2,
            4,
            vec![
                0.9, 0.8, 0.1, 0.2, // perfect ordering for patient 0
                0.9, 0.1, 0.2, 0.8, // drug 3 ranked second for patient 1
            ],
        )
        .unwrap();
        (scores, labels)
    }

    #[test]
    fn perfect_and_partial_rankings() {
        let (scores, labels) = toy();
        // k=2: patient 0 hits 2/2, patient 1 hits 1/2 => precision 3/4.
        assert!((precision_at_k(&scores, &labels, 2).unwrap() - 0.75).abs() < 1e-9);
        // Recall: hits 3 of 3 relevant drugs.
        assert!((recall_at_k(&scores, &labels, 2).unwrap() - 1.0).abs() < 1e-9);
        let ndcg = ndcg_at_k(&scores, &labels, 2).unwrap();
        assert!(ndcg > 0.8 && ndcg <= 1.0);
    }

    #[test]
    fn perfect_scores_reach_one() {
        let labels = Matrix::from_vec(1, 3, vec![0.0, 1.0, 0.0]).unwrap();
        let scores = Matrix::from_vec(1, 3, vec![0.0, 1.0, 0.0]).unwrap();
        assert!((ndcg_at_k(&scores, &labels, 1).unwrap() - 1.0).abs() < 1e-9);
        assert!((precision_at_k(&scores, &labels, 1).unwrap() - 1.0).abs() < 1e-9);
        assert!((recall_at_k(&scores, &labels, 1).unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn worst_case_scores_are_zero() {
        let labels = Matrix::from_vec(1, 4, vec![1.0, 0.0, 0.0, 0.0]).unwrap();
        let scores = Matrix::from_vec(1, 4, vec![0.0, 0.9, 0.8, 0.7]).unwrap();
        assert_eq!(precision_at_k(&scores, &labels, 2).unwrap(), 0.0);
        assert_eq!(recall_at_k(&scores, &labels, 2).unwrap(), 0.0);
        assert_eq!(ndcg_at_k(&scores, &labels, 2).unwrap(), 0.0);
    }

    #[test]
    fn metrics_are_bounded() {
        let (scores, labels) = toy();
        for k in 1..=4 {
            let m = ranking_metrics(&scores, &labels, k).unwrap();
            assert!((0.0..=1.0).contains(&m.precision));
            assert!((0.0..=1.0).contains(&m.recall));
            assert!((0.0..=1.0).contains(&m.ndcg));
        }
    }

    #[test]
    fn recall_is_monotone_in_k() {
        let (scores, labels) = toy();
        let mut prev = 0.0;
        for k in 1..=4 {
            let r = recall_at_k(&scores, &labels, k).unwrap();
            assert!(r + 1e-12 >= prev);
            prev = r;
        }
    }

    #[test]
    fn patients_without_labels_are_skipped_by_ndcg() {
        let labels = Matrix::from_vec(2, 3, vec![0.0, 0.0, 0.0, 1.0, 0.0, 0.0]).unwrap();
        let scores = Matrix::from_vec(2, 3, vec![0.5, 0.4, 0.3, 0.9, 0.1, 0.0]).unwrap();
        assert!((ndcg_at_k(&scores, &labels, 1).unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn invalid_arguments_error() {
        let (scores, labels) = toy();
        assert!(precision_at_k(&scores, &labels, 0).is_err());
        assert!(precision_at_k(&scores, &Matrix::zeros(2, 3), 1).is_err());
        assert!(ndcg_at_k(&Matrix::zeros(0, 4), &Matrix::zeros(0, 4), 1).is_err());
    }

    #[test]
    fn top_k_handles_k_larger_than_items() {
        let top = top_k_indices(&[0.1, 0.5], 10);
        assert_eq!(top, vec![1, 0]);
        assert!(top_k_indices(&[], 3).is_empty());
    }

    #[test]
    fn nan_scores_rank_below_every_real_score() {
        let top = top_k_indices(&[f32::NAN, 0.1, f32::NAN, 0.9, -5.0], 5);
        assert_eq!(&top[..3], &[3, 1, 4], "real scores must come first");
        // With k = 2 the NaN entries never make the cut.
        assert_eq!(
            top_k_indices(&[f32::NAN, 0.1, f32::NAN, 0.9, -5.0], 2),
            [3, 1]
        );
    }

    #[test]
    fn k_beyond_the_formulary_is_well_defined() {
        let (scores, labels) = toy();
        // k = 100 >> 4 drugs: every drug is suggested, so precision is the
        // label density over the 8 actually-possible suggestions and recall
        // and NDCG reach 1.0. Nothing divides by k itself.
        let p = precision_at_k(&scores, &labels, 100).unwrap();
        assert!((p - 3.0 / 8.0).abs() < 1e-12);
        assert!((recall_at_k(&scores, &labels, 100).unwrap() - 1.0).abs() < 1e-12);
        let n = ndcg_at_k(&scores, &labels, 100).unwrap();
        assert!(n.is_finite() && n > 0.0 && n <= 1.0);
    }

    #[test]
    fn all_zero_label_rows_yield_zero_not_nan() {
        let labels = Matrix::zeros(3, 4);
        let scores = Matrix::from_fn(3, 4, |r, c| (r * 4 + c) as f32 / 12.0);
        for k in 1..=6 {
            let m = ranking_metrics(&scores, &labels, k).unwrap();
            assert_eq!(m.precision, 0.0);
            assert_eq!(m.recall, 0.0);
            assert_eq!(m.ndcg, 0.0);
            assert!(m.precision.is_finite() && m.recall.is_finite() && m.ndcg.is_finite());
        }
    }
}
