//! Binary logistic regression trained with mini-batch-free SGD.
//!
//! Used as the base classifier of the Ensemble Classifier Chain baseline
//! (Section V-A1) and as a simple per-drug scorer in tests.

use dssddi_tensor::{stable_sigmoid, Matrix};

use crate::MlError;

/// Training hyperparameters for logistic regression.
#[derive(Debug, Clone)]
pub struct LogisticConfig {
    /// Number of passes over the data.
    pub epochs: usize,
    /// SGD learning rate.
    pub learning_rate: f32,
    /// L2 regularisation strength.
    pub l2: f32,
}

impl Default for LogisticConfig {
    fn default() -> Self {
        Self {
            epochs: 100,
            learning_rate: 0.1,
            l2: 1e-4,
        }
    }
}

/// A fitted binary logistic regression model.
#[derive(Debug, Clone)]
pub struct LogisticRegression {
    weights: Vec<f32>,
    bias: f32,
}

impl LogisticRegression {
    /// Fits the model on features `x` and binary targets `y` (values in {0, 1}).
    pub fn fit(x: &Matrix, y: &[f32], config: &LogisticConfig) -> Result<Self, MlError> {
        if x.rows() == 0 {
            return Err(MlError::EmptyInput {
                what: "logistic regression requires samples",
            });
        }
        if x.rows() != y.len() {
            return Err(MlError::DimensionMismatch {
                expected: x.rows(),
                found: y.len(),
                what: "number of targets",
            });
        }
        let n = x.rows();
        let d = x.cols();
        let mut weights = vec![0.0f32; d];
        let mut bias = 0.0f32;
        for _ in 0..config.epochs {
            for i in 0..n {
                let row = x.row(i);
                let z: f32 = row
                    .iter()
                    .zip(weights.iter())
                    .map(|(a, b)| a * b)
                    .sum::<f32>()
                    + bias;
                let p = stable_sigmoid(z);
                let err = p - y[i];
                for (w, &xv) in weights.iter_mut().zip(row.iter()) {
                    *w -= config.learning_rate * (err * xv + config.l2 * *w);
                }
                bias -= config.learning_rate * err;
            }
        }
        Ok(Self { weights, bias })
    }

    /// Probability that the sample belongs to the positive class.
    pub fn predict_proba_row(&self, row: &[f32]) -> f32 {
        let z: f32 = row
            .iter()
            .zip(self.weights.iter())
            .map(|(a, b)| a * b)
            .sum::<f32>()
            + self.bias;
        stable_sigmoid(z)
    }

    /// Positive-class probabilities for every row of `x`.
    pub fn predict_proba(&self, x: &Matrix) -> Vec<f32> {
        (0..x.rows())
            .map(|r| self.predict_proba_row(x.row(r)))
            .collect()
    }

    /// Hard 0/1 predictions at threshold 0.5.
    pub fn predict(&self, x: &Matrix) -> Vec<f32> {
        self.predict_proba(x)
            .into_iter()
            .map(|p| if p >= 0.5 { 1.0 } else { 0.0 })
            .collect()
    }

    /// Learned weight vector.
    pub fn weights(&self) -> &[f32] {
        &self.weights
    }

    /// Learned bias.
    pub fn bias(&self) -> f32 {
        self.bias
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn linearly_separable(n: usize, seed: u64) -> (Matrix, Vec<f32>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x = Matrix::from_fn(n, 2, |_, _| rng.gen_range(-1.0..1.0f32));
        let y: Vec<f32> = (0..n)
            .map(|i| {
                if x.get(i, 0) + 0.5 * x.get(i, 1) > 0.0 {
                    1.0
                } else {
                    0.0
                }
            })
            .collect();
        (x, y)
    }

    #[test]
    fn learns_a_separable_problem() {
        let (x, y) = linearly_separable(200, 0);
        let model = LogisticRegression::fit(&x, &y, &LogisticConfig::default()).unwrap();
        let pred = model.predict(&x);
        let acc = pred.iter().zip(y.iter()).filter(|(a, b)| a == b).count() as f32 / y.len() as f32;
        assert!(acc > 0.95, "accuracy {acc} too low");
    }

    #[test]
    fn probabilities_are_in_unit_interval() {
        let (x, y) = linearly_separable(50, 1);
        let model = LogisticRegression::fit(&x, &y, &LogisticConfig::default()).unwrap();
        for p in model.predict_proba(&x) {
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn mismatched_targets_error() {
        let x = Matrix::ones(4, 2);
        assert!(LogisticRegression::fit(&x, &[1.0, 0.0], &LogisticConfig::default()).is_err());
        assert!(
            LogisticRegression::fit(&Matrix::zeros(0, 2), &[], &LogisticConfig::default()).is_err()
        );
    }

    #[test]
    fn constant_labels_predict_constant() {
        let x = Matrix::ones(20, 3);
        let y = vec![1.0; 20];
        let model = LogisticRegression::fit(&x, &y, &LogisticConfig::default()).unwrap();
        for p in model.predict_proba(&x) {
            assert!(p > 0.8);
        }
    }

    #[test]
    fn l2_regularisation_shrinks_weights() {
        let (x, y) = linearly_separable(100, 2);
        let free = LogisticRegression::fit(
            &x,
            &y,
            &LogisticConfig {
                l2: 0.0,
                ..Default::default()
            },
        )
        .unwrap();
        let reg = LogisticRegression::fit(
            &x,
            &y,
            &LogisticConfig {
                l2: 0.5,
                ..Default::default()
            },
        )
        .unwrap();
        let norm = |w: &[f32]| w.iter().map(|v| v * v).sum::<f32>();
        assert!(norm(reg.weights()) < norm(free.weights()));
    }
}
