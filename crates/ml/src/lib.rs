//! # dssddi-ml
//!
//! Classical machine-learning substrate for the DSSDDI reproduction:
//! k-means clustering (used by the Medical Decision module to define
//! treatments), logistic regression and linear SVMs (baselines), Ensemble
//! Classifier Chains (the ECC baseline) and the ranking metrics of the
//! paper's evaluation (Precision@k, Recall@k, NDCG@k).

#![warn(missing_docs)]

pub mod ecc;
pub mod kmeans;
pub mod logistic;
pub mod metrics;
pub mod svm;

pub use ecc::{EccConfig, EnsembleClassifierChain};
pub use kmeans::{fit_kmeans, KMeans};
pub use logistic::{LogisticConfig, LogisticRegression};
pub use metrics::{
    ndcg_at_k, precision_at_k, ranking_metrics, recall_at_k, top_k_indices, RankingMetrics,
};
pub use svm::{LinearSvm, SvmConfig};

/// Errors produced by the classical ML models and metrics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MlError {
    /// The input collection was empty.
    EmptyInput {
        /// Description of the missing input.
        what: &'static str,
    },
    /// Two inputs that must agree in size do not.
    DimensionMismatch {
        /// Expected size.
        expected: usize,
        /// Size found.
        found: usize,
        /// Description of the mismatching quantity.
        what: &'static str,
    },
    /// A hyperparameter or argument was invalid.
    InvalidArgument {
        /// Description of the invalid argument.
        what: &'static str,
    },
}

impl std::fmt::Display for MlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MlError::EmptyInput { what } => write!(f, "empty input: {what}"),
            MlError::DimensionMismatch {
                expected,
                found,
                what,
            } => {
                write!(
                    f,
                    "dimension mismatch for {what}: expected {expected}, found {found}"
                )
            }
            MlError::InvalidArgument { what } => write!(f, "invalid argument: {what}"),
        }
    }
}

impl std::error::Error for MlError {}
