//! Ensemble Classifier Chains for multi-label classification
//! (Read et al., ECML-PKDD 2009).
//!
//! The "ECC" baseline of the paper feeds each binary classifier both the
//! patient features and the predictions of the previous classifiers in the
//! chain, and averages several chains with different label orders. Logistic
//! regression is used as the base classifier, as in Section V-A1.

use rand::seq::SliceRandom;
use rand::Rng;

use dssddi_tensor::Matrix;

use crate::logistic::{LogisticConfig, LogisticRegression};
use crate::MlError;

/// Configuration of the classifier-chain ensemble.
#[derive(Debug, Clone)]
pub struct EccConfig {
    /// Number of chains in the ensemble.
    pub n_chains: usize,
    /// Configuration of each logistic-regression base classifier.
    pub base: LogisticConfig,
}

impl Default for EccConfig {
    fn default() -> Self {
        Self {
            n_chains: 3,
            base: LogisticConfig {
                epochs: 40,
                ..Default::default()
            },
        }
    }
}

/// One chain: a label order and one classifier per label.
struct Chain {
    order: Vec<usize>,
    classifiers: Vec<LogisticRegression>,
}

/// A fitted ensemble of classifier chains.
pub struct EnsembleClassifierChain {
    chains: Vec<Chain>,
    n_labels: usize,
}

impl EnsembleClassifierChain {
    /// Fits the ensemble on features `x` and a multi-label matrix `y`
    /// (`n x n_labels`, entries in {0, 1}).
    pub fn fit(
        x: &Matrix,
        y: &Matrix,
        config: &EccConfig,
        rng: &mut impl Rng,
    ) -> Result<Self, MlError> {
        if x.rows() == 0 {
            return Err(MlError::EmptyInput {
                what: "ECC requires samples",
            });
        }
        if x.rows() != y.rows() {
            return Err(MlError::DimensionMismatch {
                expected: x.rows(),
                found: y.rows(),
                what: "label matrix rows",
            });
        }
        if config.n_chains == 0 {
            return Err(MlError::InvalidArgument {
                what: "n_chains must be positive",
            });
        }
        let n_labels = y.cols();
        let mut chains = Vec::with_capacity(config.n_chains);
        for _ in 0..config.n_chains {
            let mut order: Vec<usize> = (0..n_labels).collect();
            order.shuffle(rng);
            let mut classifiers = Vec::with_capacity(n_labels);
            // Augmented feature matrix grows by one column per chained label.
            let mut augmented = x.clone();
            for &label in &order {
                let targets = y.col_to_vec(label);
                let clf = LogisticRegression::fit(&augmented, &targets, &config.base)?;
                // Chain the *true* labels during training (teacher forcing),
                // as in the original ECC formulation.
                let label_col = Matrix::col_vector(&targets);
                augmented =
                    augmented
                        .concat_cols(&label_col)
                        .map_err(|_| MlError::InvalidArgument {
                            what: "failed to chain label column",
                        })?;
                classifiers.push(clf);
            }
            chains.push(Chain { order, classifiers });
        }
        Ok(Self { chains, n_labels })
    }

    /// Predicts per-label scores for every row of `x`, averaged over chains.
    pub fn predict_scores(&self, x: &Matrix) -> Matrix {
        let mut scores = Matrix::zeros(x.rows(), self.n_labels);
        for chain in &self.chains {
            let mut augmented = x.clone();
            let mut chain_scores = Matrix::zeros(x.rows(), self.n_labels);
            for (pos, &label) in chain.order.iter().enumerate() {
                let probs = chain.classifiers[pos].predict_proba(&augmented);
                for (r, &p) in probs.iter().enumerate() {
                    chain_scores.set(r, label, p);
                }
                let col = Matrix::col_vector(&probs);
                augmented = augmented
                    .concat_cols(&col)
                    .expect("augmented feature width is consistent by construction");
            }
            for i in 0..scores.len() {
                scores.data_mut()[i] += chain_scores.data()[i];
            }
        }
        scores.scale(1.0 / self.chains.len() as f32)
    }

    /// Number of labels the ensemble was trained on.
    pub fn n_labels(&self) -> usize {
        self.n_labels
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Two features decide two correlated labels; the third label equals the
    /// logical AND of the first two, which a chain can exploit.
    fn multilabel_data(n: usize, seed: u64) -> (Matrix, Matrix) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x = Matrix::from_fn(n, 2, |_, _| rng.gen_range(-1.0..1.0f32));
        let y = Matrix::from_fn(n, 3, |r, c| {
            let a = x.get(r, 0) > 0.0;
            let b = x.get(r, 1) > 0.0;
            match c {
                0 => a as u8 as f32,
                1 => b as u8 as f32,
                _ => (a && b) as u8 as f32,
            }
        });
        (x, y)
    }

    #[test]
    fn fits_and_ranks_correlated_labels() {
        let (x, y) = multilabel_data(300, 0);
        let mut rng = StdRng::seed_from_u64(1);
        let ecc = EnsembleClassifierChain::fit(&x, &y, &EccConfig::default(), &mut rng).unwrap();
        let scores = ecc.predict_scores(&x);
        assert_eq!(scores.shape(), (300, 3));
        // Average score of true labels must beat false labels.
        let mut pos = 0.0f32;
        let mut npos = 0;
        let mut neg = 0.0f32;
        let mut nneg = 0;
        for r in 0..300 {
            for c in 0..3 {
                if y.get(r, c) > 0.5 {
                    pos += scores.get(r, c);
                    npos += 1;
                } else {
                    neg += scores.get(r, c);
                    nneg += 1;
                }
            }
        }
        assert!(pos / npos as f32 > neg / nneg as f32 + 0.2);
    }

    #[test]
    fn scores_are_probabilities() {
        let (x, y) = multilabel_data(100, 2);
        let mut rng = StdRng::seed_from_u64(3);
        let ecc = EnsembleClassifierChain::fit(&x, &y, &EccConfig::default(), &mut rng).unwrap();
        for &s in ecc.predict_scores(&x).data() {
            assert!((0.0..=1.0).contains(&s));
        }
        assert_eq!(ecc.n_labels(), 3);
    }

    #[test]
    fn invalid_inputs_error() {
        let mut rng = StdRng::seed_from_u64(4);
        let x = Matrix::ones(5, 2);
        let y = Matrix::ones(4, 3);
        assert!(EnsembleClassifierChain::fit(&x, &y, &EccConfig::default(), &mut rng).is_err());
        assert!(EnsembleClassifierChain::fit(
            &Matrix::zeros(0, 2),
            &Matrix::zeros(0, 3),
            &EccConfig::default(),
            &mut rng
        )
        .is_err());
        let zero_chains = EccConfig {
            n_chains: 0,
            ..Default::default()
        };
        assert!(
            EnsembleClassifierChain::fit(&x, &Matrix::ones(5, 3), &zero_chains, &mut rng).is_err()
        );
    }
}
