//! Linear support vector machine trained with SGD on the hinge loss
//! (Pegasos-style updates).
//!
//! Bao & Jiang's medicine recommender baseline (the "SVM" rows of Tables I,
//! III and IV) scores every drug with an independent one-vs-rest linear SVM
//! over the patient features.

use dssddi_tensor::Matrix;

use crate::MlError;

/// Training hyperparameters of the linear SVM.
#[derive(Debug, Clone)]
pub struct SvmConfig {
    /// Number of passes over the data.
    pub epochs: usize,
    /// SGD learning rate.
    pub learning_rate: f32,
    /// L2 regularisation strength.
    pub l2: f32,
}

impl Default for SvmConfig {
    fn default() -> Self {
        Self {
            epochs: 100,
            learning_rate: 0.05,
            l2: 1e-3,
        }
    }
}

/// A fitted linear SVM (binary, one-vs-rest).
#[derive(Debug, Clone)]
pub struct LinearSvm {
    weights: Vec<f32>,
    bias: f32,
}

impl LinearSvm {
    /// Fits the SVM on features `x` and targets `y` given in {0, 1}
    /// (internally mapped to {−1, +1}).
    pub fn fit(x: &Matrix, y: &[f32], config: &SvmConfig) -> Result<Self, MlError> {
        if x.rows() == 0 {
            return Err(MlError::EmptyInput {
                what: "SVM requires samples",
            });
        }
        if x.rows() != y.len() {
            return Err(MlError::DimensionMismatch {
                expected: x.rows(),
                found: y.len(),
                what: "number of targets",
            });
        }
        let n = x.rows();
        let d = x.cols();
        let mut weights = vec![0.0f32; d];
        let mut bias = 0.0f32;
        for _ in 0..config.epochs {
            for i in 0..n {
                let target = if y[i] > 0.5 { 1.0 } else { -1.0 };
                let row = x.row(i);
                let margin: f32 = target
                    * (row
                        .iter()
                        .zip(weights.iter())
                        .map(|(a, b)| a * b)
                        .sum::<f32>()
                        + bias);
                if margin < 1.0 {
                    for (w, &xv) in weights.iter_mut().zip(row.iter()) {
                        *w -= config.learning_rate * (config.l2 * *w - target * xv);
                    }
                    bias += config.learning_rate * target;
                } else {
                    for w in weights.iter_mut() {
                        *w -= config.learning_rate * config.l2 * *w;
                    }
                }
            }
        }
        Ok(Self { weights, bias })
    }

    /// Signed distance to the separating hyperplane (the drug score).
    pub fn decision_function_row(&self, row: &[f32]) -> f32 {
        row.iter()
            .zip(self.weights.iter())
            .map(|(a, b)| a * b)
            .sum::<f32>()
            + self.bias
    }

    /// Decision values for every row of `x`.
    pub fn decision_function(&self, x: &Matrix) -> Vec<f32> {
        (0..x.rows())
            .map(|r| self.decision_function_row(x.row(r)))
            .collect()
    }

    /// Hard 0/1 predictions.
    pub fn predict(&self, x: &Matrix) -> Vec<f32> {
        self.decision_function(x)
            .into_iter()
            .map(|v| if v >= 0.0 { 1.0 } else { 0.0 })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn separable(n: usize, seed: u64) -> (Matrix, Vec<f32>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x = Matrix::from_fn(n, 3, |_, _| rng.gen_range(-1.0..1.0f32));
        let y: Vec<f32> = (0..n)
            .map(|i| {
                if 2.0 * x.get(i, 0) - x.get(i, 2) > 0.1 {
                    1.0
                } else {
                    0.0
                }
            })
            .collect();
        (x, y)
    }

    #[test]
    fn separable_problem_is_learned() {
        let (x, y) = separable(300, 0);
        let svm = LinearSvm::fit(&x, &y, &SvmConfig::default()).unwrap();
        let pred = svm.predict(&x);
        let acc = pred.iter().zip(y.iter()).filter(|(a, b)| a == b).count() as f32 / y.len() as f32;
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn decision_values_rank_positives_above_negatives() {
        let (x, y) = separable(200, 1);
        let svm = LinearSvm::fit(&x, &y, &SvmConfig::default()).unwrap();
        let scores = svm.decision_function(&x);
        let mean_pos: f32 = scores
            .iter()
            .zip(y.iter())
            .filter(|(_, &t)| t > 0.5)
            .map(|(s, _)| *s)
            .sum::<f32>()
            / y.iter().filter(|&&t| t > 0.5).count().max(1) as f32;
        let mean_neg: f32 = scores
            .iter()
            .zip(y.iter())
            .filter(|(_, &t)| t < 0.5)
            .map(|(s, _)| *s)
            .sum::<f32>()
            / y.iter().filter(|&&t| t < 0.5).count().max(1) as f32;
        assert!(mean_pos > mean_neg);
    }

    #[test]
    fn invalid_inputs_error() {
        assert!(LinearSvm::fit(&Matrix::zeros(0, 2), &[], &SvmConfig::default()).is_err());
        assert!(LinearSvm::fit(&Matrix::ones(3, 2), &[1.0], &SvmConfig::default()).is_err());
    }

    #[test]
    fn all_negative_labels_yield_negative_scores() {
        let x = Matrix::ones(30, 2);
        let y = vec![0.0; 30];
        let svm = LinearSvm::fit(&x, &y, &SvmConfig::default()).unwrap();
        assert!(svm.decision_function_row(&[1.0, 1.0]) <= 0.0);
    }
}
