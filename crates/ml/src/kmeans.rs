//! K-means clustering (Hartigan & Wong style Lloyd iterations, k-means++
//! initialisation).
//!
//! The Medical Decision module clusters patients by their features to define
//! the treatment variable: patients in the same cluster as an observed
//! patient inherit its treatment (Section IV-B1, step 2). The number of
//! clusters is set to the number of chronic diseases in the observed data.

use rand::Rng;

use dssddi_tensor::Matrix;

use crate::MlError;

/// A fitted k-means model.
#[derive(Debug, Clone)]
pub struct KMeans {
    centroids: Matrix,
    assignments: Vec<usize>,
    inertia: f32,
}

impl KMeans {
    /// Reassembles a fitted model from its parts (model persistence).
    ///
    /// Validates that at least one centroid exists and that every assignment
    /// refers to an existing centroid, so a model restored from a corrupt
    /// file cannot panic later in [`KMeans::predict_row`].
    pub fn from_parts(
        centroids: Matrix,
        assignments: Vec<usize>,
        inertia: f32,
    ) -> Result<Self, MlError> {
        if centroids.rows() == 0 {
            return Err(MlError::EmptyInput {
                what: "k-means needs at least one centroid",
            });
        }
        if let Some(&bad) = assignments.iter().find(|&&a| a >= centroids.rows()) {
            return Err(MlError::DimensionMismatch {
                expected: centroids.rows(),
                found: bad,
                what: "cluster assignment out of centroid range",
            });
        }
        Ok(Self {
            centroids,
            assignments,
            inertia,
        })
    }

    /// Cluster centroids (one row per cluster).
    pub fn centroids(&self) -> &Matrix {
        &self.centroids
    }

    /// Cluster index of every training row.
    pub fn assignments(&self) -> &[usize] {
        &self.assignments
    }

    /// Sum of squared distances of samples to their closest centroid.
    pub fn inertia(&self) -> f32 {
        self.inertia
    }

    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.centroids.rows()
    }

    /// Assigns a new sample (given as a feature row) to its closest centroid.
    pub fn predict_row(&self, row: &[f32]) -> usize {
        let mut best = 0usize;
        let mut best_dist = f32::INFINITY;
        for c in 0..self.centroids.rows() {
            let d: f32 = self
                .centroids
                .row(c)
                .iter()
                .zip(row.iter())
                .map(|(a, b)| (a - b) * (a - b))
                .sum();
            if d < best_dist {
                best_dist = d;
                best = c;
            }
        }
        best
    }

    /// Assigns every row of `x` to its closest centroid.
    pub fn predict(&self, x: &Matrix) -> Vec<usize> {
        (0..x.rows()).map(|r| self.predict_row(x.row(r))).collect()
    }
}

/// Fits k-means with k-means++ initialisation and Lloyd iterations.
pub fn fit_kmeans(
    x: &Matrix,
    k: usize,
    max_iterations: usize,
    rng: &mut impl Rng,
) -> Result<KMeans, MlError> {
    let n = x.rows();
    if k == 0 {
        return Err(MlError::InvalidArgument {
            what: "k must be positive",
        });
    }
    if n == 0 {
        return Err(MlError::EmptyInput {
            what: "k-means requires at least one sample",
        });
    }
    let k = k.min(n);
    let d = x.cols();

    // k-means++ seeding.
    let mut centroids = Matrix::zeros(k, d);
    let first = rng.gen_range(0..n);
    centroids.row_mut(0).copy_from_slice(x.row(first));
    let mut min_dist = vec![f32::INFINITY; n];
    for c in 1..k {
        for i in 0..n {
            let dist: f32 = x
                .row(i)
                .iter()
                .zip(centroids.row(c - 1).iter())
                .map(|(a, b)| (a - b) * (a - b))
                .sum();
            min_dist[i] = min_dist[i].min(dist);
        }
        let total: f32 = min_dist.iter().sum();
        let next = if total <= f32::EPSILON {
            rng.gen_range(0..n)
        } else {
            let mut pick = rng.gen_range(0.0..total);
            let mut chosen = n - 1;
            for (i, &dist) in min_dist.iter().enumerate() {
                if pick < dist {
                    chosen = i;
                    break;
                }
                pick -= dist;
            }
            chosen
        };
        centroids.row_mut(c).copy_from_slice(x.row(next));
    }

    // Lloyd iterations.
    let mut assignments = vec![0usize; n];
    let mut inertia = f32::INFINITY;
    for _ in 0..max_iterations.max(1) {
        // Assignment step.
        let mut new_inertia = 0.0f32;
        for i in 0..n {
            let mut best = 0usize;
            let mut best_dist = f32::INFINITY;
            for c in 0..k {
                let dist: f32 = x
                    .row(i)
                    .iter()
                    .zip(centroids.row(c).iter())
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum();
                if dist < best_dist {
                    best_dist = dist;
                    best = c;
                }
            }
            assignments[i] = best;
            new_inertia += best_dist;
        }
        // Update step.
        let mut sums = Matrix::zeros(k, d);
        let mut counts = vec![0usize; k];
        for i in 0..n {
            let c = assignments[i];
            counts[c] += 1;
            for j in 0..d {
                sums.add_at(c, j, x.get(i, j));
            }
        }
        for c in 0..k {
            if counts[c] == 0 {
                // Re-seed empty clusters at a random sample.
                let r = rng.gen_range(0..n);
                centroids.row_mut(c).copy_from_slice(x.row(r));
            } else {
                for j in 0..d {
                    centroids.set(c, j, sums.get(c, j) / counts[c] as f32);
                }
            }
        }
        let improvement = inertia - new_inertia;
        inertia = new_inertia;
        if improvement.abs() < 1e-6 {
            break;
        }
    }
    Ok(KMeans {
        centroids,
        assignments,
        inertia,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Three well-separated Gaussian-ish blobs.
    fn blobs(n_per: usize, seed: u64) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let centers = [(0.0f32, 0.0f32), (10.0, 10.0), (-10.0, 10.0)];
        Matrix::from_fn(n_per * 3, 2, |r, c| {
            let (cx, cy) = centers[r / n_per];
            let base = if c == 0 { cx } else { cy };
            base + rng.gen_range(-1.0..1.0f32)
        })
    }

    #[test]
    fn recovers_separated_clusters() {
        let x = blobs(30, 0);
        let mut rng = StdRng::seed_from_u64(1);
        let km = fit_kmeans(&x, 3, 50, &mut rng).unwrap();
        assert_eq!(km.k(), 3);
        // All points of a blob must share an assignment.
        for blob in 0..3 {
            let first = km.assignments()[blob * 30];
            for i in 0..30 {
                assert_eq!(km.assignments()[blob * 30 + i], first, "blob {blob} split");
            }
        }
        assert!(km.inertia() < 200.0);
    }

    #[test]
    fn predict_matches_training_assignments() {
        let x = blobs(20, 2);
        let mut rng = StdRng::seed_from_u64(3);
        let km = fit_kmeans(&x, 3, 50, &mut rng).unwrap();
        let pred = km.predict(&x);
        assert_eq!(pred, km.assignments());
    }

    #[test]
    fn k_larger_than_samples_is_clamped() {
        let x = Matrix::from_vec(2, 2, vec![0.0, 0.0, 5.0, 5.0]).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let km = fit_kmeans(&x, 10, 10, &mut rng).unwrap();
        assert_eq!(km.k(), 2);
    }

    #[test]
    fn invalid_inputs_error() {
        let mut rng = StdRng::seed_from_u64(5);
        assert!(fit_kmeans(&Matrix::zeros(0, 3), 2, 10, &mut rng).is_err());
        assert!(fit_kmeans(&Matrix::ones(3, 3), 0, 10, &mut rng).is_err());
    }

    #[test]
    fn identical_points_converge_without_panic() {
        let x = Matrix::ones(10, 3);
        let mut rng = StdRng::seed_from_u64(6);
        let km = fit_kmeans(&x, 3, 20, &mut rng).unwrap();
        assert!(km.inertia() < 1e-6);
    }

    #[test]
    fn from_parts_round_trips_and_validates() {
        let x = blobs(10, 9);
        let mut rng = StdRng::seed_from_u64(10);
        let km = fit_kmeans(&x, 3, 30, &mut rng).unwrap();
        let rebuilt = KMeans::from_parts(
            km.centroids().clone(),
            km.assignments().to_vec(),
            km.inertia(),
        )
        .unwrap();
        assert_eq!(rebuilt.predict(&x), km.predict(&x));
        assert_eq!(rebuilt.k(), km.k());

        assert!(KMeans::from_parts(Matrix::zeros(0, 2), vec![], 0.0).is_err());
        assert!(KMeans::from_parts(Matrix::zeros(2, 2), vec![0, 5], 0.0).is_err());
    }

    #[test]
    fn assignment_is_nearest_centroid() {
        // Property: every sample's assigned centroid is at least as close as
        // any other centroid.
        let x = blobs(15, 7);
        let mut rng = StdRng::seed_from_u64(8);
        let km = fit_kmeans(&x, 3, 50, &mut rng).unwrap();
        for i in 0..x.rows() {
            let assigned = km.assignments()[i];
            let d_assigned: f32 = x
                .row(i)
                .iter()
                .zip(km.centroids().row(assigned))
                .map(|(a, b)| (a - b) * (a - b))
                .sum();
            for c in 0..km.k() {
                let d: f32 = x
                    .row(i)
                    .iter()
                    .zip(km.centroids().row(c))
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum();
                assert!(d_assigned <= d + 1e-4);
            }
        }
    }
}
