//! Fixture-based integration tests: each analyzer pass gets a good tree
//! (no findings) and a bad tree (exact finding codes), built in memory via
//! [`SourceTree::from_parts`]. A final self-check loads the real workspace
//! with the checked-in baseline and asserts the ratchet is clean both ways
//! — no new findings, no stale entries.
#![allow(clippy::unwrap_used, clippy::expect_used)] // tests may panic freely

use dssddi_analyze::baseline::{apply_baseline, Baseline};
use dssddi_analyze::findings::FindingCode;
use dssddi_analyze::workspace::SourceTree;
use dssddi_analyze::{analyze, kernels, locks, panics, wire_check};

fn codes(findings: &[dssddi_analyze::findings::Finding]) -> Vec<FindingCode> {
    findings.iter().map(|f| f.code).collect()
}

// ---------------------------------------------------------------------------
// Pass 1: lock order
// ---------------------------------------------------------------------------

const LOCK_GOOD: &str = r#"
// LOCK ORDER:
//   1. S.a  outer
//   2. S.b  inner

use std::sync::Mutex;

pub struct S {
    a: Mutex<u32>,
    b: Mutex<u32>,
}

impl S {
    pub fn nested(&self) {
        let ga = self.a.lock();
        let _gb = self.b.lock();
        drop(ga);
    }
}
"#;

const LOCK_BAD_CYCLE: &str = r#"
// LOCK ORDER:
//   1. S.a  outer
//   2. S.b  inner

use std::sync::Mutex;

pub struct S {
    a: Mutex<u32>,
    b: Mutex<u32>,
}

impl S {
    pub fn forward(&self) {
        let ga = self.a.lock();
        let _gb = self.b.lock();
        drop(ga);
    }
    pub fn backward(&self) {
        let gb = self.b.lock();
        let _ga = self.a.lock();
        drop(gb);
    }
}
"#;

#[test]
fn lock_fixture_good_tree_is_clean() {
    let tree = SourceTree::from_parts(&[("crates/serving/src/fix.rs", LOCK_GOOD)]);
    let findings = locks::check_with_prefixes(&tree, &["crates/serving/src/"]);
    assert!(findings.is_empty(), "unexpected: {findings:?}");
}

#[test]
fn lock_fixture_cycle_is_flagged() {
    let tree = SourceTree::from_parts(&[("crates/serving/src/fix.rs", LOCK_BAD_CYCLE)]);
    let findings = locks::check_with_prefixes(&tree, &["crates/serving/src/"]);
    let got = codes(&findings);
    // The reversed acquisition is both a cycle and an order violation.
    assert!(got.contains(&FindingCode::Lock001), "no LOCK001 in {got:?}");
    assert!(got.contains(&FindingCode::Lock005), "no LOCK005 in {got:?}");
}

// ---------------------------------------------------------------------------
// Pass 2: wire registry
// ---------------------------------------------------------------------------

fn wire_source(predict_tag: &str) -> String {
    format!(
        r#"
pub const MAGIC: &[u8; 4] = b"DSWR";
pub const TAG_PREDICT: u8 = {predict_tag};
pub const TAG_RELOAD: u8 = 2;

pub fn encode_request_ref(out: &mut Vec<u8>, req: &Request) {{
    match req {{
        Request::Predict => out.put_u8(TAG_PREDICT),
        Request::Reload => out.put_u8(TAG_RELOAD),
    }}
}}

pub fn decode_request(tag: u8) -> Option<Request> {{
    match tag {{
        TAG_PREDICT => Some(Request::Predict),
        TAG_RELOAD => Some(Request::Reload),
        _ => None,
    }}
}}
"#
    )
}

#[test]
fn wire_fixture_good_tree_is_clean() {
    let tree = SourceTree::from_parts(&[("crates/serving/src/wire.rs", &wire_source("1"))]);
    let findings = wire_check::check(&tree, &Default::default());
    assert!(findings.is_empty(), "unexpected: {findings:?}");
}

#[test]
fn wire_fixture_duplicate_tag_is_flagged() {
    // TAG_PREDICT collides with TAG_RELOAD inside the request space.
    let tree = SourceTree::from_parts(&[("crates/serving/src/wire.rs", &wire_source("2"))]);
    let findings = wire_check::check(&tree, &Default::default());
    assert_eq!(codes(&findings), vec![FindingCode::Wire001], "{findings:?}");
}

// ---------------------------------------------------------------------------
// Pass 3: panic policy (through the baseline ratchet)
// ---------------------------------------------------------------------------

const PANIC_BAD: &str = r#"
pub fn parse(s: &str) -> u32 {
    s.parse().unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        let _: u32 = "7".parse().unwrap();
    }
}
"#;

#[test]
fn panic_fixture_unbaselined_unwrap_is_new() {
    let tree = SourceTree::from_parts(&[("crates/core/src/fix.rs", PANIC_BAD)]);
    let findings = panics::check(&tree);
    // Only the non-test unwrap fires; the #[cfg(test)] one is skipped.
    assert_eq!(
        codes(&findings),
        vec![FindingCode::Panic001],
        "{findings:?}"
    );

    // Through the ratchet with an empty baseline, it surfaces as NEW.
    let all = analyze(&tree, &Baseline::default());
    let ratchet = apply_baseline(&all, &Baseline::default());
    assert_eq!(ratchet.new.len(), 1);
    assert!(ratchet.baselined.is_empty());

    // With a matching baseline entry it is tolerated.
    let base = Baseline::from_findings(&all, Default::default());
    let rebaselined = apply_baseline(&all, &base);
    assert!(rebaselined.new.is_empty());
    assert_eq!(rebaselined.baselined.len(), 1);
    assert!(rebaselined.stale.is_empty());
}

// ---------------------------------------------------------------------------
// Pass 4: kernel convention
// ---------------------------------------------------------------------------

const KERNEL_BAD: &str = r#"
/// Adds `a` and `b` elementwise.
pub fn add_into(a: &Matrix, b: &Matrix, out: &mut Matrix) {
    let _ = (a, b, out);
}
"#;

#[test]
fn kernel_fixture_output_last_is_flagged() {
    let tree = SourceTree::from_parts(&[("crates/tensor/src/fix.rs", KERNEL_BAD)]);
    let findings = kernels::check(&tree);
    let got = codes(&findings);
    // Output buffer is last (KERNEL001) and the doc lacks the
    // `fully overwrites` marker (KERNEL002).
    assert_eq!(got, vec![FindingCode::Kernel001, FindingCode::Kernel002]);
}

// ---------------------------------------------------------------------------
// Self-check: the real workspace against the checked-in baseline
// ---------------------------------------------------------------------------

#[test]
fn real_workspace_is_clean_against_checked_in_baseline() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves");
    let base = Baseline::load(&root.join("analysis/baseline.toml")).expect("baseline parses");
    let analysis = dssddi_analyze::analyze_root(&root, &base).expect("workspace loads");
    assert!(
        analysis.ratchet.new.is_empty(),
        "un-baselined findings — fix them or run `dssddi-analyze --update-baseline`:\n{}",
        analysis
            .ratchet
            .new
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        analysis.ratchet.stale.is_empty(),
        "stale baseline entries — run `dssddi-analyze --update-baseline`:\n{}",
        analysis
            .ratchet
            .stale
            .iter()
            .map(|(f, c, want, got)| format!("{f} {c}: baseline allows {want}, saw {got}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}
