//! Pass 3: the panic-policy lint.
//!
//! Scans every library/binary source file for `.unwrap()` (PANIC001),
//! `.expect(...)` (PANIC002), the panic!-family macros (PANIC003) and
//! slice/array indexing (PANIC004). Test regions (`#[cfg(test)]` items,
//! `#[test]` functions) are skipped; `tests/`, `examples/` and `benches/`
//! directories never enter the [`SourceTree`](crate::workspace::SourceTree)
//! in the first place. Comments and string literals cannot trigger findings
//! because the lexer strips them before this pass runs.
//!
//! The pass is workspace-wide and ratcheted: existing occurrences in
//! research/experiment crates live in `analysis/baseline.toml`; serving-path
//! crates are additionally held at zero by the `[workspace.lints]` clippy
//! denies, so the two mechanisms cross-check each other.

use crate::findings::{Finding, FindingCode};
use crate::lexer::{in_regions, test_regions, TokKind};
use crate::workspace::SourceTree;

/// The macros PANIC003 reports.
const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

/// Runs the panic-policy pass over every file in the tree.
pub fn check(tree: &SourceTree) -> Vec<Finding> {
    let mut findings = Vec::new();
    for file in &tree.files {
        let tokens = &file.lexed.tokens;
        let skip = test_regions(tokens);
        for (i, tok) in tokens.iter().enumerate() {
            if in_regions(&skip, i) {
                continue;
            }
            let prev = i.checked_sub(1).and_then(|p| tokens.get(p));
            let next = tokens.get(i + 1);
            match tok.kind {
                TokKind::Ident
                    if tok.text == "unwrap"
                        && prev.is_some_and(|p| p.is_punct('.'))
                        && next.is_some_and(|n| n.is_punct('(')) =>
                {
                    findings.push(Finding::new(
                        FindingCode::Panic001,
                        &file.rel,
                        tok.line,
                        ".unwrap() call".to_string(),
                    ));
                }
                TokKind::Ident
                    if tok.text == "expect"
                        && prev.is_some_and(|p| p.is_punct('.'))
                        && next.is_some_and(|n| n.is_punct('(')) =>
                {
                    findings.push(Finding::new(
                        FindingCode::Panic002,
                        &file.rel,
                        tok.line,
                        ".expect() call".to_string(),
                    ));
                }
                // `name!` — but not `assert!`-style containing the word, and
                // not a path segment like `std::panic::catch_unwind` (there
                // `panic` is followed by `::`, not `!`).
                TokKind::Ident
                    if PANIC_MACROS.contains(&tok.text.as_str())
                        && next.is_some_and(|n| n.is_punct('!')) =>
                {
                    findings.push(Finding::new(
                        FindingCode::Panic003,
                        &file.rel,
                        tok.line,
                        format!("{}! macro", tok.text),
                    ));
                }
                TokKind::Punct if tok.is_punct('[') => {
                    // Indexing: `expr[...]` — the `[` directly follows an
                    // identifier, `)` or `]`. Attributes (`#[`, `#![`) have
                    // `#` or `!` before the bracket and never match; array
                    // literals / types follow `=`, `(`, `,`, `:` etc.
                    let indexing = prev.is_some_and(|p| {
                        (p.kind == TokKind::Ident && !is_keyword_before_bracket(&p.text))
                            || p.is_punct(')')
                            || p.is_punct(']')
                    });
                    if indexing {
                        findings.push(Finding::new(
                            FindingCode::Panic004,
                            &file.rel,
                            tok.line,
                            "slice/array indexing".to_string(),
                        ));
                    }
                }
                _ => {}
            }
        }
    }
    findings
}

/// Keywords that can directly precede `[` without forming an index
/// expression (`return [..]`, `break [..]`, `in [..]`, `else [..]`...).
fn is_keyword_before_bracket(ident: &str) -> bool {
    matches!(
        ident,
        "return" | "break" | "in" | "else" | "match" | "if" | "while" | "mut" | "dyn" | "as"
    )
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // tests may panic freely
mod tests {
    use super::*;

    #[test]
    fn finds_each_panic_kind_outside_tests() {
        let src = r#"
//! Doc with .unwrap() that must not count.
fn bad(v: Option<u32>, s: &[u32]) -> u32 {
    let a = v.unwrap();
    let b = v.expect("present");
    if a > 9 { panic!("boom"); }
    let c = s[0];
    a + b + c
}

#[cfg(test)]
mod tests {
    #[test]
    fn free_to_panic() {
        let x: Option<u32> = None;
        x.unwrap();
    }
}
"#;
        let tree = SourceTree::from_parts(&[("crates/x/src/lib.rs", src)]);
        let findings = check(&tree);
        let codes: Vec<_> = findings.iter().map(|f| f.code).collect();
        assert_eq!(
            codes,
            vec![
                FindingCode::Panic001,
                FindingCode::Panic002,
                FindingCode::Panic003,
                FindingCode::Panic004,
            ]
        );
    }

    #[test]
    fn clean_code_yields_nothing() {
        let src = r#"
fn good(v: Option<u32>, s: &[u32]) -> Option<u32> {
    let arr = [1u32, 2, 3];
    let first = s.first().copied()?;
    let ty: [u8; 4] = [0; 4];
    Some(v? + first + u32::from(ty[0].min(arr.len() as u8)))
}
"#;
        // Note: `ty[0]` and `arr.len()` — `ty[0]` IS indexing and must be
        // found; adjust expectation accordingly.
        let tree = SourceTree::from_parts(&[("crates/x/src/lib.rs", src)]);
        let findings = check(&tree);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].code, FindingCode::Panic004);
    }

    #[test]
    fn attributes_and_macro_paths_do_not_count() {
        let src = r#"
#![allow(dead_code)]
#[derive(Debug)]
struct S;
fn f() {
    let caught = std::panic::catch_unwind(|| 1);
    drop(caught);
    let v = vec![1, 2, 3];
    drop(v);
}
"#;
        let tree = SourceTree::from_parts(&[("crates/x/src/lib.rs", src)]);
        assert!(check(&tree).is_empty());
    }
}
