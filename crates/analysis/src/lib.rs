//! `dssddi-analyze` — the workspace's own static-analysis gate.
//!
//! The serving path has invariants no compiler checks: locks must nest in
//! one documented order, wire tags must never collide or come back from
//! the dead, production code must not panic, and `*_into` kernels must
//! honor the scratch-pool contract. This crate walks the workspace's Rust
//! sources with a small hand-rolled lexer ([`lexer`]) — no `syn`, no
//! dependencies — and enforces four passes:
//!
//! 1. **Lock order** ([`locks`]) — extracts every `.read()`/`.write()`/
//!    `.lock()` acquisition on named `RwLock`/`Mutex` fields in
//!    `crates/serving` and `crates/core`, models guard lifetimes, follows
//!    calls between workspace functions, and checks the resulting
//!    acquisition graph for cycles, read→write upgrades and violations of
//!    the canonical `LOCK ORDER:` block in `router.rs`.
//! 2. **Wire registries** ([`wire_check`]) — re-derives the `DSWR` tag
//!    spaces, `ErrorCode` mappings and the `DSWR`/`DSSD`/`DSKB` container
//!    magics from the token stream and checks uniqueness, retired-value
//!    reuse, encode/decode coverage and module-doc agreement.
//! 3. **Panic policy** ([`panics`]) — flags `.unwrap()`, `.expect()`,
//!    panic!-family macros and slice indexing in non-test library/binary
//!    code, ratcheted by `analysis/baseline.toml`.
//! 4. **Kernel conventions** ([`kernels`]) — every `*_into` kernel in
//!    `crates/tensor`/`crates/gnn` takes its output buffer first and
//!    carries the `fully overwrites` doc marker.
//!
//! ## Finding codes
//!
//! | Code | Meaning |
//! |------|---------|
//! | `LOCK001` | lock-acquisition cycle (potential deadlock) |
//! | `LOCK002` | read guard upgraded to write in the same scope |
//! | `LOCK003` | lock field missing from the `LOCK ORDER:` block |
//! | `LOCK004` | `LOCK ORDER:` entry names a nonexistent field |
//! | `LOCK005` | acquisition edge contradicts the documented order |
//! | `LOCK006` | lock field name shared by two structs (ambiguous) |
//! | `WIRE001` | two registry constants in one value space collide |
//! | `WIRE002` | retired registry value reused |
//! | `WIRE003` | encode/decode tag coverage mismatch |
//! | `WIRE004` | module-doc claim disagrees with its constant |
//! | `WIRE005` | `ErrorCode` `to_u8`/`from_u8`/`ALL` inconsistent |
//! | `PANIC001` | `.unwrap()` in non-test code |
//! | `PANIC002` | `.expect()` in non-test code |
//! | `PANIC003` | panic!-family macro in non-test code |
//! | `PANIC004` | slice/array indexing in non-test code |
//! | `KERNEL001` | `*_into` kernel output buffer not first |
//! | `KERNEL002` | `*_into` kernel missing `fully overwrites` marker |
//!
//! `dssddi-analyze --explain CODE` prints the long rationale for any code.
//!
//! ## The ratchet
//!
//! Existing findings live in `analysis/baseline.toml` as per-`(file, code)`
//! counts. A run fails when any count is *exceeded* (new finding) and — in
//! CI, which passes `--deny-stale` — when any count is no longer reached
//! (stale entry; tighten with `--update-baseline`). The baseline only goes
//! down over time.

pub mod baseline;
pub mod findings;
pub mod kernels;
pub mod lexer;
pub mod locks;
pub mod panics;
pub mod wire_check;
pub mod workspace;

use std::path::Path;

use baseline::{apply_baseline, Baseline, Ratchet};
use findings::{sort_findings, Finding};
use workspace::SourceTree;

/// Runs all four passes over a source tree, returning sorted findings.
pub fn analyze(tree: &SourceTree, base: &Baseline) -> Vec<Finding> {
    let mut findings = Vec::new();
    findings.extend(locks::check(tree));
    findings.extend(wire_check::check(tree, &base.retired));
    findings.extend(panics::check(tree));
    findings.extend(kernels::check(tree));
    sort_findings(&mut findings);
    findings
}

/// The result of a full workspace run.
pub struct Analysis {
    /// All findings, sorted.
    pub findings: Vec<Finding>,
    /// The ratchet split against the baseline.
    pub ratchet: Ratchet,
}

/// Loads the tree rooted at `root`, runs every pass and applies `base`.
pub fn analyze_root(root: &Path, base: &Baseline) -> std::io::Result<Analysis> {
    let tree = SourceTree::load(root)?;
    let findings = analyze(&tree, base);
    let ratchet = apply_baseline(&findings, base);
    Ok(Analysis { findings, ratchet })
}
