//! Pass 1: inter-procedural lock-order analysis.
//!
//! The serving path nests a handful of `RwLock`/`Mutex` fields (model
//! catalog entries, the explanation cache, token buckets, the global
//! admission queue). Deadlock needs only two call paths that nest the same
//! two locks in opposite orders — and nothing in the type system stops the
//! second path from being written. This pass re-derives the nesting
//! relation from the token stream and enforces the canonical order
//! documented in the `LOCK ORDER:` comment block in
//! `crates/serving/src/router.rs`.
//!
//! ## The model
//!
//! An *acquisition* is a `.field.read()`/`.field.write()`/`.field.lock()`
//! call where `field` is a declared `RwLock`/`Mutex` struct field in the
//! scanned crates and the method agrees with the field's kind. How long the
//! guard is *held* follows three syntactic rules (matching std's temporary
//! semantics closely enough for linting):
//!
//! - let-bound guard (`let g = wrap(x.lock());` — nothing after the final
//!   closing parens): held to the end of the enclosing block;
//! - acquisition in an `if let`/`while let`/`match` header: held to the end
//!   of the construct's first block;
//! - anything else (temporaries, chained calls): held to the end of the
//!   statement.
//!
//! While a guard on `A` is held, a direct acquisition of `B` adds the edge
//! `A -> B`, and a call to a workspace function `g` adds `A -> L` for every
//! lock `L` in `g`'s transitive acquisition closure (callees are resolved
//! by simple name; same-named functions are unioned, which over-approximates
//! but never misses). Guards held by a callee are considered released when
//! it returns — functions that *return* guards are outside the model and
//! must keep their nesting local.
//!
//! Findings: cycles (LOCK001), same-scope read→write upgrades (LOCK002),
//! undocumented locks (LOCK003), stale doc entries (LOCK004), edges against
//! the canonical order (LOCK005) and ambiguous field names (LOCK006).
//! `Condvar` fields are exempt — they are waited on, not held.

use std::collections::{BTreeMap, BTreeSet};

use crate::findings::{Finding, FindingCode};
use crate::lexer::{
    brace_depths, function_spans, in_regions, matching_brace, struct_fields, test_regions, TokKind,
    Token,
};
use crate::workspace::{SourceFile, SourceTree};

/// Default path prefixes the pass scans.
pub const DEFAULT_PREFIXES: [&str; 2] = ["crates/serving/src/", "crates/core/src/"];

/// How a lock is taken.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Read,
    Write,
    Lock,
}

/// One acquisition site inside a function body.
#[derive(Debug, Clone)]
struct Acquisition {
    /// The lock field name.
    field: String,
    /// Read/write/lock.
    mode: Mode,
    /// Token index of the field identifier.
    tok: usize,
    /// Token index of the `)` closing the acquisition call.
    call_close: usize,
    /// Token index the guard is held to (inclusive).
    hold_end: usize,
    /// Source line.
    line: u32,
}

/// One declared lock field.
#[derive(Debug, Clone)]
struct LockField {
    struct_name: String,
    field_name: String,
    /// `RwLock` or `Mutex`.
    kind: String,
    file: String,
    line: u32,
}

/// Runs the lock pass over files under `DEFAULT_PREFIXES`.
pub fn check(tree: &SourceTree) -> Vec<Finding> {
    check_with_prefixes(tree, &DEFAULT_PREFIXES)
}

/// Runs the pass over files under the given path prefixes.
pub fn check_with_prefixes(tree: &SourceTree, prefixes: &[&str]) -> Vec<Finding> {
    let mut findings = Vec::new();
    let files: Vec<&SourceFile> = tree.with_prefixes(prefixes).collect();

    // 1. Declared lock fields (outside test regions).
    let mut locks: Vec<LockField> = Vec::new();
    for file in &files {
        let tokens = &file.lexed.tokens;
        let skip_lines = test_region_lines(tokens);
        for f in struct_fields(tokens) {
            if matches!(f.outer_type.as_str(), "RwLock" | "Mutex")
                && !line_in_regions(&skip_lines, f.line)
            {
                locks.push(LockField {
                    struct_name: f.struct_name,
                    field_name: f.field_name,
                    kind: f.outer_type,
                    file: file.rel.clone(),
                    line: f.line,
                });
            }
        }
    }
    locks.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));

    // 2. LOCK006: field-name collisions break name-based attribution.
    let mut by_name: BTreeMap<&str, Vec<&LockField>> = BTreeMap::new();
    for l in &locks {
        by_name.entry(l.field_name.as_str()).or_default().push(l);
    }
    for (name, owners) in &by_name {
        if owners.len() > 1 {
            let structs: Vec<String> = owners
                .iter()
                .map(|l| format!("{}.{}", l.struct_name, name))
                .collect();
            findings.push(Finding::new(
                FindingCode::Lock006,
                &owners[1].file,
                owners[1].line,
                format!(
                    "lock field name `{name}` declared by {}",
                    structs.join(" and ")
                ),
            ));
        }
    }

    // 3. The documented canonical order.
    let mut order: Vec<(String, String, String, u32)> = Vec::new(); // (struct, field, file, line)
    for file in &files {
        parse_lock_order_blocks(file, &mut order);
    }
    let order_pos: BTreeMap<&str, usize> = order
        .iter()
        .enumerate()
        .map(|(i, (_, field, _, _))| (field.as_str(), i))
        .collect();

    // LOCK003: every lock field appears in the order block.
    for l in &locks {
        if !order
            .iter()
            .any(|(s, f, _, _)| s == &l.struct_name && f == &l.field_name)
        {
            findings.push(Finding::new(
                FindingCode::Lock003,
                &l.file,
                l.line,
                format!(
                    "{} field `{}.{}` is missing from the LOCK ORDER block",
                    l.kind, l.struct_name, l.field_name
                ),
            ));
        }
    }
    // LOCK004: every order entry names a real lock field.
    for (s, f, file, line) in &order {
        if !locks
            .iter()
            .any(|l| &l.struct_name == s && &l.field_name == f)
        {
            findings.push(Finding::new(
                FindingCode::Lock004,
                file,
                *line,
                format!("LOCK ORDER entry `{s}.{f}` names no existing lock field"),
            ));
        }
    }

    // 4. Per-function acquisitions, direct edges and upgrades.
    let lock_kinds: BTreeMap<&str, &str> = locks
        .iter()
        .map(|l| (l.field_name.as_str(), l.kind.as_str()))
        .collect();

    // fn name -> (direct acquisitions' fields, callee names)
    let mut fn_acquires: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    let mut fn_calls: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    // Edges with a witness: (from, to) -> (file, line).
    let mut edges: BTreeMap<(String, String), (String, u32)> = BTreeMap::new();
    // Deferred call-edge resolution: (holder, callee, file, line).
    let mut call_edges: Vec<(String, String, String, u32)> = Vec::new();

    for file in &files {
        let tokens = &file.lexed.tokens;
        let depths = brace_depths(tokens);
        let skip = test_regions(tokens);
        for span in function_spans(tokens) {
            let (Some(open), Some(close)) = (span.body_open, span.body_close) else {
                continue;
            };
            if in_regions(&skip, span.fn_tok) {
                continue;
            }
            let acqs = find_acquisitions(tokens, &depths, open, close, &lock_kinds);
            let calls = find_calls(tokens, open, close);

            let entry = fn_acquires.entry(span.name.clone()).or_default();
            for a in &acqs {
                entry.insert(a.field.clone());
            }
            let centry = fn_calls.entry(span.name.clone()).or_default();
            for (name, _, _) in &calls {
                centry.insert(name.clone());
            }

            // Edges while holding.
            for a in &acqs {
                for b in &acqs {
                    if b.tok > a.call_close && b.tok <= a.hold_end {
                        if a.field == b.field {
                            if a.mode == Mode::Read && b.mode == Mode::Write {
                                findings.push(Finding::new(
                                    FindingCode::Lock002,
                                    &file.rel,
                                    b.line,
                                    format!(
                                        "`{}` is read-locked on line {} and write-locked while the read guard is held",
                                        a.field, a.line
                                    ),
                                ));
                            } else {
                                // Re-acquiring the same lock in scope:
                                // a self-edge, reported via LOCK001.
                                edges
                                    .entry((a.field.clone(), b.field.clone()))
                                    .or_insert((file.rel.clone(), b.line));
                            }
                        } else {
                            edges
                                .entry((a.field.clone(), b.field.clone()))
                                .or_insert((file.rel.clone(), b.line));
                        }
                    }
                }
                for (callee, ctok, cline) in &calls {
                    if *ctok > a.call_close && *ctok <= a.hold_end {
                        call_edges.push((
                            a.field.clone(),
                            callee.clone(),
                            file.rel.clone(),
                            *cline,
                        ));
                    }
                }
            }
        }
    }

    // 5. Transitive acquisition closure per function name.
    let closures = acquisition_closures(&fn_acquires, &fn_calls);
    for (holder, callee, file, line) in &call_edges {
        if let Some(acquired) = closures.get(callee.as_str()) {
            for lock in acquired {
                edges
                    .entry((holder.clone(), lock.clone()))
                    .or_insert((file.clone(), *line));
            }
        }
    }

    // 6. LOCK005: edges against the canonical order.
    for ((from, to), (file, line)) in &edges {
        if from == to {
            continue; // self-edges are reported as cycles
        }
        if let (Some(&pf), Some(&pt)) = (order_pos.get(from.as_str()), order_pos.get(to.as_str())) {
            if pf > pt {
                findings.push(Finding::new(
                    FindingCode::Lock005,
                    file,
                    *line,
                    format!(
                        "`{to}` acquired while holding `{from}`, against the documented order ({to} < {from})"
                    ),
                ));
            }
        }
    }

    // 7. LOCK001: cycles in the edge graph.
    for cycle in find_cycles(&edges) {
        let witness = edges
            .get(&(cycle[0].clone(), cycle[1 % cycle.len()].clone()))
            .cloned()
            .unwrap_or_default();
        let mut path = cycle.clone();
        path.push(cycle[0].clone());
        findings.push(Finding::new(
            FindingCode::Lock001,
            &witness.0,
            witness.1,
            format!("lock-acquisition cycle: {}", path.join(" -> ")),
        ));
    }

    findings
}

/// Token ranges of test regions, as line ranges.
fn test_region_lines(tokens: &[Token]) -> Vec<(u32, u32)> {
    test_regions(tokens)
        .into_iter()
        .filter_map(|(s, e)| {
            let a = tokens.get(s)?.line;
            let b = tokens.get(e)?.line;
            Some((a, b))
        })
        .collect()
}

fn line_in_regions(regions: &[(u32, u32)], line: u32) -> bool {
    regions.iter().any(|&(a, b)| line >= a && line <= b)
}

/// Finds every acquisition in a function body and computes its hold range.
fn find_acquisitions(
    tokens: &[Token],
    depths: &[u32],
    open: usize,
    close: usize,
    lock_kinds: &BTreeMap<&str, &str>,
) -> Vec<Acquisition> {
    let mut out = Vec::new();
    for f in open + 1..close.saturating_sub(3) {
        // `. field . method ( )`
        let dot1 = f.checked_sub(1).map(|p| &tokens[p]);
        if !dot1.is_some_and(|t| t.is_punct('.')) {
            continue;
        }
        let field_tok = &tokens[f];
        if field_tok.kind != TokKind::Ident {
            continue;
        }
        let Some(&kind) = lock_kinds.get(field_tok.text.as_str()) else {
            continue;
        };
        if !tokens[f + 1].is_punct('.') || tokens[f + 2].kind != TokKind::Ident {
            continue;
        }
        let method = tokens[f + 2].text.as_str();
        let mode = match (kind, method) {
            ("RwLock", "read") => Mode::Read,
            ("RwLock", "write") => Mode::Write,
            ("Mutex", "lock") => Mode::Lock,
            _ => continue,
        };
        if !tokens.get(f + 3).is_some_and(|t| t.is_punct('('))
            || !tokens.get(f + 4).is_some_and(|t| t.is_punct(')'))
        {
            continue;
        }
        let call_close = f + 4;
        let hold_end = hold_range_end(tokens, depths, f, call_close, close);
        out.push(Acquisition {
            field: field_tok.text.clone(),
            mode,
            tok: f,
            call_close,
            hold_end,
            line: field_tok.line,
        });
    }
    out
}

/// Computes the token index (inclusive) a guard acquired at `field_tok`
/// (call closing at `call_close`) is held to. See the module docs for the
/// three rules.
fn hold_range_end(
    tokens: &[Token],
    depths: &[u32],
    field_tok: usize,
    call_close: usize,
    body_close: usize,
) -> usize {
    let d = depths[field_tok];

    // Statement start: walk back to the nearest `;`, `{` or `}`.
    let mut s = field_tok;
    while s > 0 {
        let t = &tokens[s - 1];
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            break;
        }
        s -= 1;
    }
    let head = &tokens[s..field_tok];

    // `if let` / `while let` / `match` header: held through the construct's
    // first block.
    let header = head.iter().any(|t| t.is_ident("match"))
        || head
            .windows(2)
            .any(|w| (w[0].is_ident("if") || w[0].is_ident("while")) && w[1].is_ident("let"));
    if header {
        for k in call_close + 1..=body_close {
            if tokens[k].is_punct('{') && depths[k] == d {
                return matching_brace(tokens, k).unwrap_or(body_close);
            }
        }
        return body_close;
    }

    // Statement end: the next `;` at the acquisition's depth.
    let mut stmt_end = None;
    for (k, tok) in tokens
        .iter()
        .enumerate()
        .take(body_close + 1)
        .skip(call_close + 1)
    {
        if depths[k] < d {
            break; // enclosing block closed first (expression tail)
        }
        if tok.is_punct(';') && depths[k] == d {
            stmt_end = Some(k);
            break;
        }
    }

    // let-bound guard: `let g = wrap(... .lock() ... );` with only `)`
    // between the call's close and the statement's `;` — held to the end of
    // the enclosing block. A `*`/`&` in the head means the binding takes a
    // projection of a *temporary* guard (`let v = *x.lock();`), which dies
    // at the semicolon.
    let is_let = head.first().is_some_and(|t| t.is_ident("let"))
        && !head.iter().any(|t| t.is_punct('*') || t.is_punct('&'));
    if let (true, Some(end)) = (is_let, stmt_end) {
        let only_closes = tokens[call_close + 1..end].iter().all(|t| t.is_punct(')'));
        if only_closes {
            // The bound guard name: `let [mut] g = ...`.
            let bound = head
                .iter()
                .skip(1)
                .find(|t| t.kind == TokKind::Ident && !t.is_ident("mut"))
                .map(|t| t.text.clone());
            for (k, tok) in tokens.iter().enumerate().take(body_close + 1).skip(end) {
                if depths[k] < d {
                    return k;
                }
                // An explicit `drop(g)` releases the guard early.
                if let Some(name) = &bound {
                    if tok.is_ident("drop")
                        && tokens.get(k + 1).is_some_and(|t| t.is_punct('('))
                        && tokens.get(k + 2).is_some_and(|t| t.is_ident(name))
                        && tokens.get(k + 3).is_some_and(|t| t.is_punct(')'))
                    {
                        return k;
                    }
                }
            }
            return body_close;
        }
    }

    match stmt_end {
        Some(end) => end,
        None => {
            // Expression tail: held to the enclosing block's `}`.
            for (k, _) in tokens
                .iter()
                .enumerate()
                .take(body_close + 1)
                .skip(call_close + 1)
            {
                if depths[k] < d {
                    return k;
                }
            }
            body_close
        }
    }
}

/// Finds call sites in a body: `.name(` method calls and bare `name(`
/// calls. `::`-qualified calls are skipped (overwhelmingly constructors
/// and std paths; workspace lock-taking functions are invoked as methods),
/// as are the acquisition methods themselves.
fn find_calls(tokens: &[Token], open: usize, close: usize) -> Vec<(String, usize, u32)> {
    let mut out = Vec::new();
    for i in open + 1..close {
        let t = &tokens[i];
        if t.kind != TokKind::Ident || !tokens.get(i + 1).is_some_and(|n| n.is_punct('(')) {
            continue;
        }
        if matches!(t.text.as_str(), "read" | "write" | "lock" | "drop") {
            // read/write/lock are the acquisition methods; `drop` is
            // std::mem::drop (a `Drop` impl's `fn drop` is never called
            // explicitly, so matching it by name would only create false
            // closure edges).
            continue;
        }
        let prev = i.checked_sub(1).map(|p| &tokens[p]);
        // Skip `fn name(`, `::name(` and macro-ish `name!(`.
        if prev.is_some_and(|p| p.is_ident("fn") || p.is_punct(':')) {
            continue;
        }
        out.push((t.text.clone(), i, t.line));
    }
    out
}

/// Fixpoint: for every function name, the set of lock fields it (or any
/// transitive callee) acquires.
fn acquisition_closures(
    fn_acquires: &BTreeMap<String, BTreeSet<String>>,
    fn_calls: &BTreeMap<String, BTreeSet<String>>,
) -> BTreeMap<String, BTreeSet<String>> {
    let mut closures = fn_acquires.clone();
    loop {
        let mut changed = false;
        for (name, callees) in fn_calls {
            let mut add: BTreeSet<String> = BTreeSet::new();
            for callee in callees {
                if callee == name {
                    continue;
                }
                if let Some(acq) = closures.get(callee) {
                    add.extend(acq.iter().cloned());
                }
            }
            let entry = closures.entry(name.clone()).or_default();
            let before = entry.len();
            entry.extend(add);
            if entry.len() != before {
                changed = true;
            }
        }
        if !changed {
            return closures;
        }
    }
}

/// Finds elementary cycles in the edge graph (including self-loops).
/// Returns each cycle once, rotated so its lexicographically smallest node
/// comes first, sorted for stable output.
fn find_cycles(edges: &BTreeMap<(String, String), (String, u32)>) -> Vec<Vec<String>> {
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    let mut nodes: BTreeSet<&str> = BTreeSet::new();
    for (from, to) in edges.keys() {
        adj.entry(from.as_str()).or_default().push(to.as_str());
        nodes.insert(from.as_str());
        nodes.insert(to.as_str());
    }
    let mut cycles: BTreeSet<Vec<String>> = BTreeSet::new();
    // DFS from every node with an explicit stack; path-based cycle capture.
    for &start in &nodes {
        let mut path: Vec<&str> = Vec::new();
        let mut stack: Vec<(&str, usize)> = vec![(start, 0)];
        while let Some((node, next_idx)) = stack.pop() {
            if next_idx == 0 {
                path.push(node);
            }
            let neighbors = adj.get(node).map(|v| v.as_slice()).unwrap_or(&[]);
            if next_idx < neighbors.len() {
                stack.push((node, next_idx + 1));
                let n = neighbors[next_idx];
                if let Some(pos) = path.iter().position(|&p| p == n) {
                    // Found a cycle: path[pos..] + n.
                    let cycle: Vec<String> = path[pos..].iter().map(|s| s.to_string()).collect();
                    cycles.insert(canonical_rotation(cycle));
                } else if path.len() < 32 {
                    stack.push((n, 0));
                }
            } else {
                path.pop();
            }
        }
    }
    cycles.into_iter().collect()
}

/// Rotates a cycle so its smallest node comes first.
fn canonical_rotation(cycle: Vec<String>) -> Vec<String> {
    let Some(min_idx) = cycle
        .iter()
        .enumerate()
        .min_by_key(|(_, s)| s.as_str())
        .map(|(i, _)| i)
    else {
        return cycle;
    };
    let mut rotated = Vec::with_capacity(cycle.len());
    rotated.extend_from_slice(&cycle[min_idx..]);
    rotated.extend_from_slice(&cycle[..min_idx]);
    rotated
}

/// Parses `LOCK ORDER:` blocks out of a file's comments into ordered
/// `(struct, field, file, line)` entries.
fn parse_lock_order_blocks(file: &SourceFile, order: &mut Vec<(String, String, String, u32)>) {
    let comments = &file.lexed.comments;
    let mut i = 0usize;
    while i < comments.len() {
        if comments[i].text.contains("LOCK ORDER") {
            let mut expect = comments[i].line + 1;
            let mut j = i + 1;
            while j < comments.len() && comments[j].line <= expect {
                expect = comments[j].line + 1;
                if let Some((s, f)) = parse_order_entry(&comments[j].text) {
                    order.push((s, f, file.rel.clone(), comments[j].line));
                }
                j += 1;
            }
            i = j;
            continue;
        }
        i += 1;
    }
}

/// Parses one order entry line: `1. Struct.field`, `- Struct.field` or
/// `Struct.field`, with optional trailing prose after whitespace.
fn parse_order_entry(text: &str) -> Option<(String, String)> {
    let t = text
        .trim()
        .trim_start_matches(|c: char| c.is_ascii_digit())
        .trim_start_matches(['.', ')', '-'])
        .trim_start();
    let entry = t.split_whitespace().next()?;
    let (s, f) = entry.split_once('.')?;
    let is_ident =
        |x: &str| !x.is_empty() && x.chars().all(|c| c == '_' || c.is_ascii_alphanumeric());
    if is_ident(s) && is_ident(f) && s.starts_with(|c: char| c.is_ascii_uppercase()) {
        Some((s.to_string(), f.to_string()))
    } else {
        None
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // tests may panic freely
mod tests {
    use super::*;

    fn run(files: &[(&str, &str)]) -> Vec<Finding> {
        let tree = SourceTree::from_parts(files);
        check_with_prefixes(&tree, &["crates/"])
    }

    const HEADER: &str = r#"
// LOCK ORDER: outermost first.
//   1. S.a
//   2. S.b
pub struct S {
    a: Mutex<u32>,
    b: Mutex<u32>,
}
"#;

    #[test]
    fn conforming_nesting_is_clean() {
        let body = r#"
impl S {
    fn ok(&self) {
        let g = self.a.lock();
        let h = self.b.lock();
        drop(h);
        drop(g);
    }
}
"#;
        let src = format!("{HEADER}{body}");
        let findings = run(&[("crates/x/src/lib.rs", &src)]);
        assert!(findings.is_empty(), "unexpected: {findings:?}");
    }

    #[test]
    fn reversed_nesting_violates_order() {
        let body = r#"
impl S {
    fn bad(&self) {
        let g = self.b.lock();
        let h = self.a.lock();
        drop(h);
        drop(g);
    }
}
"#;
        let src = format!("{HEADER}{body}");
        let findings = run(&[("crates/x/src/lib.rs", &src)]);
        assert!(findings.iter().any(|f| f.code == FindingCode::Lock005));
    }

    #[test]
    fn opposite_orders_in_two_fns_form_a_cycle() {
        let body = r#"
impl S {
    fn one(&self) {
        let g = self.a.lock();
        let h = self.b.lock();
        drop(h);
        drop(g);
    }
    fn two(&self) {
        let g = self.b.lock();
        let h = self.a.lock();
        drop(h);
        drop(g);
    }
}
"#;
        let src = format!("{HEADER}{body}");
        let findings = run(&[("crates/x/src/lib.rs", &src)]);
        let cycle = findings
            .iter()
            .find(|f| f.code == FindingCode::Lock001)
            .expect("cycle finding");
        assert!(cycle.message.contains("a -> b -> a"), "{}", cycle.message);
    }

    #[test]
    fn interprocedural_edge_through_call() {
        let body = r#"
impl S {
    fn leaf(&self) -> u32 {
        *self.b.lock()
    }
    fn holder(&self) {
        let g = self.a.lock();
        let v = self.leaf();
        drop(g);
        let _ = v;
    }
}
"#;
        let src = format!("{HEADER}{body}");
        let findings = run(&[("crates/x/src/lib.rs", &src)]);
        // a -> b agrees with the documented order: clean.
        assert!(findings.is_empty(), "unexpected: {findings:?}");

        let body_rev = r#"
impl S {
    fn leaf(&self) -> u32 {
        *self.a.lock()
    }
    fn holder(&self) {
        let g = self.b.lock();
        let v = self.leaf();
        drop(g);
        let _ = v;
    }
}
"#;
        let src = format!("{HEADER}{body_rev}");
        let findings = run(&[("crates/x/src/lib.rs", &src)]);
        assert!(
            findings.iter().any(|f| f.code == FindingCode::Lock005),
            "call-derived edge b -> a must violate the order: {findings:?}"
        );
    }

    #[test]
    fn read_to_write_upgrade_is_flagged() {
        let src = r#"
// LOCK ORDER:
//   1. S.c
pub struct S {
    c: RwLock<u32>,
}
impl S {
    fn upgrade(&self) {
        let g = self.c.read();
        let w = self.c.write();
        drop(w);
        drop(g);
    }
}
"#;
        let findings = run(&[("crates/x/src/lib.rs", src)]);
        assert!(findings.iter().any(|f| f.code == FindingCode::Lock002));
    }

    #[test]
    fn temporary_guard_does_not_hold_past_statement() {
        let body = r#"
impl S {
    fn temp(&self) {
        let v = *self.b.lock();
        let g = self.a.lock();
        drop(g);
        let _ = v;
    }
}
"#;
        // `*self.b.lock()` dereferences the temporary: the guard dies at the
        // `;`, so no b -> a edge exists and the order is respected.
        let src = format!("{HEADER}{body}");
        let findings = run(&[("crates/x/src/lib.rs", &src)]);
        assert!(findings.is_empty(), "unexpected: {findings:?}");
    }

    #[test]
    fn undocumented_and_stale_entries() {
        let src = r#"
// LOCK ORDER:
//   1. S.a
//   2. S.gone
pub struct S {
    a: Mutex<u32>,
    extra: Mutex<u32>,
}
"#;
        let findings = run(&[("crates/x/src/lib.rs", src)]);
        assert!(findings.iter().any(|f| f.code == FindingCode::Lock003));
        assert!(findings.iter().any(|f| f.code == FindingCode::Lock004));
    }

    const IF_LET_BODY: &str = r#"
pub struct S {
    a: Mutex<u32>,
    b: Mutex<Option<u32>>,
}
impl S {
    fn admit(&self) -> u32 {
        if let Some(v) = *self.b.lock() {
            let g = self.a.lock();
            drop(g);
            v
        } else {
            0
        }
    }
}
"#;

    #[test]
    fn if_let_header_guard_holds_through_block() {
        // Documented order says b < a, and the header guard holds b while a
        // is taken: clean.
        let src = format!("// LOCK ORDER:\n//   1. S.b\n//   2. S.a\n{IF_LET_BODY}");
        let findings = run(&[("crates/x/src/lib.rs", &src)]);
        assert!(findings.is_empty(), "unexpected: {findings:?}");

        // Flip the documented order and the same code must violate it.
        let src = format!("// LOCK ORDER:\n//   1. S.a\n//   2. S.b\n{IF_LET_BODY}");
        let findings = run(&[("crates/x/src/lib.rs", &src)]);
        assert!(
            findings.iter().any(|f| f.code == FindingCode::Lock005),
            "header-held guard must create the b -> a edge: {findings:?}"
        );
    }
}
