//! Workspace source discovery: which `.rs` files each pass sees.
//!
//! The analyzer operates on a [`SourceTree`] — a list of files with
//! workspace-relative paths and pre-lexed token streams. The real tree is
//! built by [`SourceTree::load`] walking `crates/*/src` and the root `src/`
//! (vendored crates, `tests/`, `examples/` and `benches/` are excluded:
//! the panic policy governs library and binary code, and vendor code is
//! not ours). Fixture trees in the analyzer's own tests are built with
//! [`SourceTree::from_parts`] from in-memory files.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::lexer::{self, Lexed};

/// One source file: its workspace-relative path (always `/`-separated) and
/// its lexed content.
pub struct SourceFile {
    /// Workspace-relative path, e.g. `crates/serving/src/router.rs`.
    pub rel: String,
    /// Raw text (passes that scan doc claims need it rarely; comments are
    /// already split out in `lexed`).
    pub text: String,
    /// The lexed token stream and comments.
    pub lexed: Lexed,
}

/// The set of files under analysis.
pub struct SourceTree {
    /// All files, sorted by relative path.
    pub files: Vec<SourceFile>,
}

impl SourceTree {
    /// Builds a tree from `(relative_path, source_text)` pairs — the entry
    /// point for fixture-based tests.
    pub fn from_parts(parts: &[(&str, &str)]) -> SourceTree {
        let mut files: Vec<SourceFile> = parts
            .iter()
            .map(|(rel, text)| SourceFile {
                rel: rel.replace('\\', "/"),
                text: (*text).to_string(),
                lexed: lexer::lex(text),
            })
            .collect();
        files.sort_by(|a, b| a.rel.cmp(&b.rel));
        SourceTree { files }
    }

    /// Walks the workspace rooted at `root`, loading every `.rs` file under
    /// `crates/*/src` and the root `src/`, excluding `vendor/` and any
    /// `tests`, `examples` or `benches` directories.
    pub fn load(root: &Path) -> io::Result<SourceTree> {
        let mut rs_files: Vec<PathBuf> = Vec::new();
        let crates_dir = root.join("crates");
        if crates_dir.is_dir() {
            let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)?
                .filter_map(|e| e.ok())
                .map(|e| e.path())
                .filter(|p| p.is_dir())
                .collect();
            crate_dirs.sort();
            for crate_dir in crate_dirs {
                let src = crate_dir.join("src");
                if src.is_dir() {
                    collect_rs(&src, &mut rs_files)?;
                }
            }
        }
        let root_src = root.join("src");
        if root_src.is_dir() {
            collect_rs(&root_src, &mut rs_files)?;
        }
        rs_files.sort();

        let mut files = Vec::with_capacity(rs_files.len());
        for path in rs_files {
            let text = fs::read_to_string(&path)?;
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            let lexed = lexer::lex(&text);
            files.push(SourceFile { rel, text, lexed });
        }
        files.sort_by(|a, b| a.rel.cmp(&b.rel));
        Ok(SourceTree { files })
    }

    /// The files whose relative path starts with any of `prefixes`.
    pub fn with_prefixes<'a>(
        &'a self,
        prefixes: &'a [&'a str],
    ) -> impl Iterator<Item = &'a SourceFile> {
        self.files
            .iter()
            .filter(move |f| prefixes.iter().any(|p| f.rel.starts_with(p)))
    }

    /// Looks up one file by relative path.
    pub fn get(&self, rel: &str) -> Option<&SourceFile> {
        self.files.iter().find(|f| f.rel == rel)
    }
}

/// Recursively collects `.rs` files under `dir`, skipping excluded
/// directory names.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            let name = path
                .file_name()
                .map(|n| n.to_string_lossy().to_string())
                .unwrap_or_default();
            if matches!(name.as_str(), "tests" | "examples" | "benches" | "fixtures") {
                continue;
            }
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Walks upward from `start` to find the workspace root (the first
/// directory whose `Cargo.toml` contains a `[workspace]` table).
pub fn discover_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(|p| p.to_path_buf());
    }
    None
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // tests may panic freely
mod tests {
    use super::*;

    #[test]
    fn from_parts_sorts_and_lexes() {
        let tree = SourceTree::from_parts(&[
            ("crates/b/src/lib.rs", "fn b() {}"),
            ("crates/a/src/lib.rs", "fn a() {}"),
        ]);
        assert_eq!(tree.files[0].rel, "crates/a/src/lib.rs");
        assert!(tree.get("crates/b/src/lib.rs").is_some());
        assert_eq!(
            tree.with_prefixes(&["crates/a/"]).count(),
            1,
            "prefix filter selects one file"
        );
        assert!(!tree.files[0].lexed.tokens.is_empty());
    }
}
