//! Pass 4: the scratch-pool kernel convention check.
//!
//! Every `*_into` kernel in `crates/tensor` and `crates/gnn` writes into a
//! caller-provided buffer (usually scratch from
//! `dssddi_tensor::ScratchPool`). Two conventions make that safe at scale:
//! the output buffer is the **first** non-`self` parameter (KERNEL001), and
//! the doc comment carries the literal `fully overwrites` marker promising
//! the caller need not zero the buffer (KERNEL002).
//!
//! A `*_into` function only counts as a kernel when it takes a `&mut`
//! parameter of a buffer type (`Matrix`, `Vec`, `[f32]`/`[f64]` slices).
//! Serialization helpers like `write_into(&mut ByteWriter)` are therefore
//! out of scope by construction.

use crate::findings::{Finding, FindingCode};
use crate::lexer::{in_regions, test_regions, Comment, Token};
use crate::workspace::SourceTree;

/// Buffer type names that mark a parameter as a kernel output candidate.
const BUFFER_TYPES: [&str; 4] = ["Matrix", "Vec", "f32", "f64"];

/// Default path prefixes the pass scans.
pub const DEFAULT_PREFIXES: [&str; 2] = ["crates/tensor/src/", "crates/gnn/src/"];

/// Runs the kernel-convention pass over files under `DEFAULT_PREFIXES`.
pub fn check(tree: &SourceTree) -> Vec<Finding> {
    check_with_prefixes(tree, &DEFAULT_PREFIXES)
}

/// Runs the pass over files under the given path prefixes (fixture tests
/// pass their own).
pub fn check_with_prefixes(tree: &SourceTree, prefixes: &[&str]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for file in tree.with_prefixes(prefixes) {
        let tokens = &file.lexed.tokens;
        let skip = test_regions(tokens);
        for span in crate::lexer::function_spans(tokens) {
            if !span.name.ends_with("_into") || in_regions(&skip, span.fn_tok) {
                continue;
            }
            let params = split_params(tokens, span.params_open, span.params_close);
            // Which params are `&mut <buffer type>`?
            let buffer_flags: Vec<bool> = params
                .iter()
                .map(|p| is_mut_buffer_param(tokens, p))
                .collect();
            if !buffer_flags.iter().any(|&b| b) {
                // Not a scratch-buffer kernel (e.g. write_into(&mut ByteWriter)).
                continue;
            }
            // First non-self parameter must be the (first) buffer param.
            let first_non_self = params
                .iter()
                .position(|p| !is_self_param(tokens, p))
                .unwrap_or(params.len());
            let first_buffer = buffer_flags.iter().position(|&b| b).unwrap_or(params.len());
            if first_buffer != first_non_self {
                findings.push(Finding::new(
                    FindingCode::Kernel001,
                    &file.rel,
                    span.line,
                    format!(
                        "`{}` takes its output buffer at position {} (expected first non-self parameter)",
                        span.name,
                        first_buffer + 1
                    ),
                ));
            }
            // Doc marker: the `///` block immediately above the fn must say
            // "fully overwrites".
            let doc = doc_block_above(&file.lexed.comments, span.line);
            if !doc.contains("fully overwrites") {
                findings.push(Finding::new(
                    FindingCode::Kernel002,
                    &file.rel,
                    span.line,
                    format!(
                        "`{}` doc comment lacks the `fully overwrites` marker",
                        span.name
                    ),
                ));
            }
        }
    }
    findings
}

/// Splits the parameter list into per-parameter token ranges (indices into
/// `tokens`, exclusive end), honoring nested `()`/`[]`/`<>`.
fn split_params(tokens: &[Token], open: usize, close: usize) -> Vec<(usize, usize)> {
    let mut params = Vec::new();
    let mut depth = 0i64;
    let mut start = open + 1;
    for i in open + 1..close {
        let t = &tokens[i];
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('<') {
            depth += 1;
        } else if t.is_punct(')')
            || t.is_punct(']')
            || (t.is_punct('>') && !tokens.get(i - 1).is_some_and(|p| p.is_punct('-')))
        {
            depth -= 1;
        } else if t.is_punct(',') && depth == 0 {
            if i > start {
                params.push((start, i));
            }
            start = i + 1;
        }
    }
    if close > start {
        params.push((start, close));
    }
    params
}

/// True when the parameter range is a `self` receiver (`self`, `&self`,
/// `&mut self`, `&'a self`).
fn is_self_param(tokens: &[Token], range: &(usize, usize)) -> bool {
    tokens[range.0..range.1].iter().any(|t| t.is_ident("self"))
}

/// True when the parameter is `&mut` of a buffer type.
fn is_mut_buffer_param(tokens: &[Token], range: &(usize, usize)) -> bool {
    let toks = &tokens[range.0..range.1];
    if is_self_param(tokens, range) {
        return false;
    }
    let has_amp_mut = toks
        .windows(2)
        .any(|w| w[0].is_punct('&') && w[1].is_ident("mut"));
    if !has_amp_mut {
        return false;
    }
    toks.iter()
        .any(|t| BUFFER_TYPES.iter().any(|b| t.is_ident(b)))
}

/// Joins the contiguous `///` doc-comment block whose last line sits
/// directly above `fn_line` (attributes between doc and fn are tolerated
/// by allowing a small gap).
fn doc_block_above(comments: &[Comment], fn_line: u32) -> String {
    let mut block: Vec<&str> = Vec::new();
    let mut expect_line = fn_line;
    for c in comments.iter().rev() {
        if !c.doc || c.inner {
            continue;
        }
        if (c.line < expect_line && expect_line - c.line <= 3)
            || (block.is_empty() && c.line < fn_line && fn_line - c.line <= 3)
        {
            block.push(&c.text);
            expect_line = c.line;
        }
    }
    block.reverse();
    block.join("\n")
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // tests may panic freely
mod tests {
    use super::*;

    #[test]
    fn output_last_kernel_is_flagged() {
        let src = r#"
/// Computes things and fully overwrites the output.
pub fn scale_into(x: &Matrix, out: &mut Matrix) {
    let _ = (x, out);
}
"#;
        let tree = SourceTree::from_parts(&[("crates/tensor/src/k.rs", src)]);
        let findings = check(&tree);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].code, FindingCode::Kernel001);
    }

    #[test]
    fn missing_marker_is_flagged() {
        let src = r#"
/// Writes the scaled matrix into `out`.
pub fn scale_into(out: &mut Matrix, x: &Matrix) {
    let _ = (x, out);
}
"#;
        let tree = SourceTree::from_parts(&[("crates/tensor/src/k.rs", src)]);
        let findings = check(&tree);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].code, FindingCode::Kernel002);
    }

    #[test]
    fn conforming_kernel_and_serialization_helper_pass() {
        let src = r#"
/// Scales `x` into `out`. Like every `*_into` kernel, it takes its output
/// buffer as the first argument and fully overwrites it.
pub fn scale_into(out: &mut Matrix, x: &Matrix) {
    let _ = (x, out);
}

/// Serializes self; not a scratch kernel despite the name.
pub fn write_into(&self, w: &mut ByteWriter) {
    let _ = w;
}

/// Method kernel: self receiver then output; fully overwrites `out`.
pub fn matmul_into(&self, out: &mut Matrix, rhs: &Matrix) {
    let _ = (out, rhs);
}
"#;
        let tree = SourceTree::from_parts(&[("crates/tensor/src/k.rs", src)]);
        let findings = check(&tree);
        assert!(findings.is_empty(), "unexpected findings: {findings:?}");
    }
}
