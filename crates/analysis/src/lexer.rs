//! A small hand-rolled Rust lexer: the substrate every analysis pass walks.
//!
//! The analyzer deliberately does not parse Rust — a full grammar is a
//! dependency (syn) or a project (a parser) — it *lexes* it: comments,
//! strings, char/lifetime disambiguation, raw strings and numbers are
//! stripped into a flat token stream with line numbers, so passes can match
//! token patterns (`.field.lock()`, `const NAME: u8 = N;`, `TAG_X =>`)
//! without ever being fooled by a string literal or a comment that happens
//! to contain the same characters.
//!
//! On top of the stream sit three structural helpers the passes share:
//! function spans ([`function_spans`]), `#[cfg(test)]`/`#[test]` regions
//! ([`test_regions`]) and struct-field declarations ([`struct_fields`]).
//! All are token-index based; brace depths are precomputed once.

/// What a token is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword.
    Ident,
    /// A single punctuation character (`.`, `:`, `{`, `=`, ...).
    Punct,
    /// An integer or float literal (text preserved).
    Number,
    /// A string literal (`"..."`, `r"..."`, `b"..."`, `r#"..."#`); the
    /// token text is the *decoded-enough* inner text for simple literals
    /// (escapes are kept verbatim).
    Str,
    /// A character literal (`'x'`, `'\n'`).
    Char,
    /// A lifetime (`'a`, `'_`, `'static`).
    Lifetime,
}

/// One lexed token.
#[derive(Debug, Clone)]
pub struct Token {
    /// Classification.
    pub kind: TokKind,
    /// The token text. For [`TokKind::Str`] this is the inner text without
    /// the surrounding quotes or raw-string hashes.
    pub text: String,
    /// 1-based source line the token starts on.
    pub line: u32,
}

impl Token {
    /// True when the token is this exact punctuation character.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.starts_with(c)
    }

    /// True when the token is this exact identifier.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }
}

/// One comment, kept out of the token stream but preserved for the passes
/// that read documentation (lock-order blocks, wire doc tables, kernel
/// markers).
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// The comment text without its delimiters (`//`, `//!`, `///`, `/* */`).
    pub text: String,
    /// True for `///` and `//!` doc comments.
    pub doc: bool,
    /// True for `//!` / `/*!` inner doc comments.
    pub inner: bool,
}

/// A lexed source file: the token stream plus the comment side-channel.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All non-comment tokens in source order.
    pub tokens: Vec<Token>,
    /// All comments in source order.
    pub comments: Vec<Comment>,
}

/// Lexes one Rust source file. The lexer never fails: unexpected bytes
/// become single-character punctuation tokens, which is good enough for
/// pattern matching over well-formed rustc-accepted sources.
pub fn lex(source: &str) -> Lexed {
    let bytes: Vec<char> = source.chars().collect();
    let n = bytes.len();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;

    let char_at = |idx: usize| -> char { bytes.get(idx).copied().unwrap_or('\0') };

    while i < n {
        let c = char_at(i);
        // Newlines and whitespace.
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Line comments (and doc comments).
        if c == '/' && char_at(i + 1) == '/' {
            let start = i + 2;
            let (doc, inner, skip) = match char_at(start) {
                '/' if char_at(start + 1) != '/' => (true, false, 1),
                '!' => (true, true, 1),
                _ => (false, false, 0),
            };
            let mut j = start + skip;
            while j < n && char_at(j) != '\n' {
                j += 1;
            }
            out.comments.push(Comment {
                line,
                text: bytes[start + skip..j].iter().collect(),
                doc,
                inner,
            });
            i = j;
            continue;
        }
        // Block comments (nested, per the Rust grammar).
        if c == '/' && char_at(i + 1) == '*' {
            let start_line = line;
            let content_start = i + 2;
            let (doc, inner) = match char_at(content_start) {
                '*' if char_at(content_start + 1) != '*' && char_at(content_start + 1) != '/' => {
                    (true, false)
                }
                '!' => (true, true),
                _ => (false, false),
            };
            let mut depth = 1usize;
            let mut j = content_start;
            while j < n && depth > 0 {
                if char_at(j) == '/' && char_at(j + 1) == '*' {
                    depth += 1;
                    j += 2;
                } else if char_at(j) == '*' && char_at(j + 1) == '/' {
                    depth -= 1;
                    j += 2;
                } else {
                    if char_at(j) == '\n' {
                        line += 1;
                    }
                    j += 1;
                }
            }
            let end = j.saturating_sub(2).max(content_start);
            out.comments.push(Comment {
                line: start_line,
                text: bytes[content_start..end].iter().collect(),
                doc,
                inner,
            });
            i = j;
            continue;
        }
        // String literals: plain, byte, raw and raw-byte.
        if c == '"'
            || (c == 'b' && char_at(i + 1) == '"')
            || (c == 'r' && (char_at(i + 1) == '"' || char_at(i + 1) == '#'))
            || (c == 'b'
                && char_at(i + 1) == 'r'
                && (char_at(i + 2) == '"' || char_at(i + 2) == '#'))
        {
            let mut j = i;
            let mut raw = false;
            if char_at(j) == 'b' {
                j += 1;
            }
            if char_at(j) == 'r' {
                raw = true;
                j += 1;
            }
            if char_at(j) != '"' && !(raw && char_at(j) == '#') {
                // Not actually a string (e.g. identifier starting with b/r).
                lex_ident_or_number(&bytes, &mut i, line, &mut out);
                continue;
            }
            let mut hashes = 0usize;
            while raw && char_at(j) == '#' {
                hashes += 1;
                j += 1;
            }
            // Opening quote.
            j += 1;
            let content_start = j;
            let start_line = line;
            loop {
                if j >= n {
                    break;
                }
                let cj = char_at(j);
                if cj == '\n' {
                    line += 1;
                    j += 1;
                    continue;
                }
                if !raw && cj == '\\' {
                    j += 2;
                    continue;
                }
                if cj == '"' {
                    if raw {
                        let mut k = 0usize;
                        while k < hashes && char_at(j + 1 + k) == '#' {
                            k += 1;
                        }
                        if k == hashes {
                            break;
                        }
                    } else {
                        break;
                    }
                }
                j += 1;
            }
            out.tokens.push(Token {
                kind: TokKind::Str,
                text: bytes[content_start..j.min(n)].iter().collect(),
                line: start_line,
            });
            i = (j + 1 + if raw { hashes } else { 0 }).min(n);
            continue;
        }
        // Char literal vs lifetime.
        if c == '\'' {
            let c1 = char_at(i + 1);
            let c2 = char_at(i + 2);
            let is_lifetime = (c1 == '_' || c1.is_alphabetic()) && c2 != '\'';
            if is_lifetime {
                let mut j = i + 1;
                while j < n && (char_at(j) == '_' || char_at(j).is_alphanumeric()) {
                    j += 1;
                }
                out.tokens.push(Token {
                    kind: TokKind::Lifetime,
                    text: bytes[i..j].iter().collect(),
                    line,
                });
                i = j;
                continue;
            }
            // Char literal: '\..' escapes or a single char.
            let mut j = i + 1;
            if char_at(j) == '\\' {
                j += 2;
                // \u{...}
                if char_at(j.saturating_sub(1)) == 'u' && char_at(j) == '{' {
                    while j < n && char_at(j) != '}' {
                        j += 1;
                    }
                    j += 1;
                }
            } else {
                j += 1;
            }
            while j < n && char_at(j) != '\'' {
                j += 1;
            }
            out.tokens.push(Token {
                kind: TokKind::Char,
                text: bytes[i + 1..j.min(n)].iter().collect(),
                line,
            });
            i = (j + 1).min(n);
            continue;
        }
        // Identifiers, keywords, numbers.
        if c == '_' || c.is_alphanumeric() {
            lex_ident_or_number(&bytes, &mut i, line, &mut out);
            continue;
        }
        // Everything else: single-character punctuation.
        out.tokens.push(Token {
            kind: TokKind::Punct,
            text: c.to_string(),
            line,
        });
        i += 1;
    }
    out
}

/// Lexes one identifier or number starting at `*i`, advancing `*i`.
fn lex_ident_or_number(bytes: &[char], i: &mut usize, line: u32, out: &mut Lexed) {
    let n = bytes.len();
    let start = *i;
    let char_at = |idx: usize| -> char { bytes.get(idx).copied().unwrap_or('\0') };
    let first = char_at(start);
    let mut j = start;
    if first.is_ascii_digit() {
        // Number: digits, `_`, hex/bin/oct letters, suffixes, one `.`
        // followed by a digit (so `x.1` method-ish accesses and ranges
        // `0..n` stay punctuated).
        while j < n {
            let cj = char_at(j);
            if cj == '_' || cj.is_alphanumeric() {
                j += 1;
            } else if cj == '.' && char_at(j + 1).is_ascii_digit() && char_at(j + 1) != '.' {
                // Guard against `0..9`: the char after '.' must not be '.'.
                if char_at(j + 1) == '.' {
                    break;
                }
                j += 1;
            } else {
                break;
            }
        }
        out.tokens.push(Token {
            kind: TokKind::Number,
            text: bytes[start..j].iter().collect(),
            line,
        });
    } else {
        while j < n && (char_at(j) == '_' || char_at(j).is_alphanumeric()) {
            j += 1;
        }
        out.tokens.push(Token {
            kind: TokKind::Ident,
            text: bytes[start..j].iter().collect(),
            line,
        });
    }
    *i = j;
}

/// One function item found in the token stream.
#[derive(Debug, Clone)]
pub struct FnSpan {
    /// The function's simple name.
    pub name: String,
    /// Token index of the `fn` keyword.
    pub fn_tok: usize,
    /// Token index of the body's opening `{` (`None` for bodyless trait
    /// method declarations).
    pub body_open: Option<usize>,
    /// Token index of the body's closing `}` (inclusive).
    pub body_close: Option<usize>,
    /// Token index of the parameter list's opening `(`.
    pub params_open: usize,
    /// Token index of the parameter list's closing `)`.
    pub params_close: usize,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
}

/// Brace depth per token (depth *before* the token is applied; `{` tokens
/// carry the depth outside the block they open).
pub fn brace_depths(tokens: &[Token]) -> Vec<u32> {
    let mut depths = Vec::with_capacity(tokens.len());
    let mut depth: u32 = 0;
    for t in tokens {
        if t.is_punct('}') {
            depth = depth.saturating_sub(1);
        }
        depths.push(depth);
        if t.is_punct('{') {
            depth += 1;
        }
    }
    depths
}

/// Finds the token index of the `}` matching the `{` at `open`.
pub fn matching_brace(tokens: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0i64;
    for (idx, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return Some(idx);
            }
        }
    }
    None
}

/// Finds the token index of the `)` matching the `(` at `open`.
pub fn matching_paren(tokens: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0i64;
    for (idx, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return Some(idx);
            }
        }
    }
    None
}

/// Every function item in the stream, in source order. Closures are not
/// functions; nested `fn` items are reported too (rare, harmless).
pub fn function_spans(tokens: &[Token]) -> Vec<FnSpan> {
    let mut spans = Vec::new();
    let mut idx = 0usize;
    while idx < tokens.len() {
        if tokens[idx].is_ident("fn") {
            if let Some(name_tok) = tokens.get(idx + 1) {
                if name_tok.kind == TokKind::Ident {
                    // Parameter list: the first `(` after the name (skipping
                    // a possible `<...>` generic list, which cannot contain
                    // parentheses at its top level in practice).
                    let mut p = idx + 2;
                    while p < tokens.len()
                        && !tokens[p].is_punct('(')
                        && !tokens[p].is_punct('{')
                        && !tokens[p].is_punct(';')
                    {
                        p += 1;
                    }
                    if p < tokens.len() && tokens[p].is_punct('(') {
                        if let Some(params_close) = matching_paren(tokens, p) {
                            // Body: first `{` (or a `;` for bodyless
                            // declarations) after the params at paren depth 0.
                            let mut b = params_close + 1;
                            let mut paren_depth = 0i64;
                            let mut body_open = None;
                            while b < tokens.len() {
                                let t = &tokens[b];
                                if t.is_punct('(') {
                                    paren_depth += 1;
                                } else if t.is_punct(')') {
                                    paren_depth -= 1;
                                } else if paren_depth == 0 && t.is_punct('{') {
                                    body_open = Some(b);
                                    break;
                                } else if paren_depth == 0 && t.is_punct(';') {
                                    break;
                                }
                                b += 1;
                            }
                            let body_close =
                                body_open.and_then(|open| matching_brace(tokens, open));
                            spans.push(FnSpan {
                                name: name_tok.text.clone(),
                                fn_tok: idx,
                                body_open,
                                body_close,
                                params_open: p,
                                params_close,
                                line: tokens[idx].line,
                            });
                            // Continue scanning *inside* the body too, so
                            // nested fns are found; just move past `fn name`.
                        }
                    }
                }
            }
        }
        idx += 1;
    }
    spans
}

/// Token ranges (inclusive) that are test-only: items annotated
/// `#[cfg(test)]` (typically `mod tests { ... }`) or `#[test]`.
pub fn test_regions(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut regions: Vec<(usize, usize)> = Vec::new();
    let mut idx = 0usize;
    while idx < tokens.len() {
        if is_attr_start(tokens, idx) {
            let (is_test, attr_end) = parse_attr(tokens, idx);
            if is_test {
                // Skip any further attributes, then capture the item.
                let mut item = attr_end + 1;
                while is_attr_start(tokens, item) {
                    let (_, e) = parse_attr(tokens, item);
                    item = e + 1;
                }
                // The item runs to its `{...}` block or terminating `;`.
                let mut j = item;
                let mut end = None;
                while j < tokens.len() {
                    if tokens[j].is_punct('{') {
                        end = matching_brace(tokens, j);
                        break;
                    }
                    if tokens[j].is_punct(';') {
                        end = Some(j);
                        break;
                    }
                    j += 1;
                }
                if let Some(e) = end {
                    regions.push((idx, e));
                    idx = e + 1;
                    continue;
                }
            }
            idx = attr_end + 1;
            continue;
        }
        idx += 1;
    }
    regions
}

/// True when token `idx` opens an attribute (`#[` or `#![`).
fn is_attr_start(tokens: &[Token], idx: usize) -> bool {
    match (tokens.get(idx), tokens.get(idx + 1)) {
        (Some(a), Some(b)) if a.is_punct('#') => {
            b.is_punct('[')
                || (b.is_punct('!') && tokens.get(idx + 2).is_some_and(|c| c.is_punct('[')))
        }
        _ => false,
    }
}

/// Parses the attribute starting at `idx`; returns whether it is
/// `#[cfg(test)]` or `#[test]`, and the index of its closing `]`.
fn parse_attr(tokens: &[Token], idx: usize) -> (bool, usize) {
    let mut j = idx + 1;
    if tokens.get(j).is_some_and(|t| t.is_punct('!')) {
        j += 1;
    }
    // `j` is at `[`; find the matching `]`.
    let mut depth = 0i64;
    let mut end = j;
    let mut body = Vec::new();
    for (k, t) in tokens.iter().enumerate().skip(j) {
        if t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                end = k;
                break;
            }
        }
        if depth >= 1 && !t.is_punct('[') {
            body.push(t);
        }
        end = k;
    }
    let is_test = match body.first() {
        Some(t) if t.is_ident("test") => body.len() == 1,
        Some(t) if t.is_ident("cfg") => body.iter().any(|t| t.is_ident("test")),
        _ => false,
    };
    (is_test, end)
}

/// One struct field declaration.
#[derive(Debug, Clone)]
pub struct StructField {
    /// The struct the field belongs to.
    pub struct_name: String,
    /// The field name.
    pub field_name: String,
    /// The outermost type path's final segment (`RwLock` for
    /// `std::sync::RwLock<Arc<T>>`).
    pub outer_type: String,
    /// 1-based line of the field name.
    pub line: u32,
}

/// Every named-struct field in the stream.
pub fn struct_fields(tokens: &[Token]) -> Vec<StructField> {
    let mut fields = Vec::new();
    let mut idx = 0usize;
    while idx < tokens.len() {
        if tokens[idx].is_ident("struct") {
            let name = match tokens.get(idx + 1) {
                Some(t) if t.kind == TokKind::Ident => t.text.clone(),
                _ => {
                    idx += 1;
                    continue;
                }
            };
            // Find the struct body `{` (skip tuple/unit structs).
            let mut j = idx + 2;
            while j < tokens.len()
                && !tokens[j].is_punct('{')
                && !tokens[j].is_punct(';')
                && !tokens[j].is_punct('(')
            {
                j += 1;
            }
            if j >= tokens.len() || !tokens[j].is_punct('{') {
                idx = j;
                continue;
            }
            let close = matching_brace(tokens, j).unwrap_or(tokens.len() - 1);
            // Fields at depth body+1: `name : Type ,` — scan for
            // `ident :` pairs at top level of the body.
            let mut k = j + 1;
            let mut depth = 0i64;
            while k < close {
                let t = &tokens[k];
                if t.is_punct('{') || t.is_punct('(') || t.is_punct('[') || t.is_punct('<') {
                    depth += 1;
                } else if t.is_punct('}')
                    || t.is_punct(')')
                    || t.is_punct(']')
                    || (t.is_punct('>') && !tokens.get(k - 1).is_some_and(|p| p.is_punct('-')))
                {
                    depth -= 1;
                } else if depth == 0
                    && t.kind == TokKind::Ident
                    && tokens.get(k + 1).is_some_and(|n| n.is_punct(':'))
                    && !tokens.get(k + 2).is_some_and(|n| n.is_punct(':'))
                    && !t.is_ident("pub")
                {
                    // Walk the type path: idents separated by `::`.
                    let mut ty = String::new();
                    let mut m = k + 2;
                    while m < close {
                        match tokens.get(m) {
                            Some(t2) if t2.kind == TokKind::Ident => {
                                ty = t2.text.clone();
                                m += 1;
                            }
                            Some(t2)
                                if t2.is_punct(':')
                                    && tokens.get(m + 1).is_some_and(|n| n.is_punct(':')) =>
                            {
                                m += 2;
                            }
                            _ => break,
                        }
                    }
                    if !ty.is_empty() {
                        fields.push(StructField {
                            struct_name: name.clone(),
                            field_name: t.text.clone(),
                            outer_type: ty,
                            line: t.line,
                        });
                    }
                }
                k += 1;
            }
            idx = close + 1;
            continue;
        }
        idx += 1;
    }
    fields
}

/// True when token index `idx` falls inside any of `regions` (inclusive).
pub fn in_regions(regions: &[(usize, usize)], idx: usize) -> bool {
    regions.iter().any(|&(s, e)| idx >= s && idx <= e)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // tests may panic freely
mod tests {
    use super::*;

    #[test]
    fn strings_comments_and_chars_do_not_leak_tokens() {
        let src = r##"
// comment with .unwrap() inside
/* block /* nested */ .expect( */
fn f() {
    let s = "quoted .unwrap() text";
    let r = r#"raw "nested" .lock()"#;
    let c = 'x';
    let lt: &'static str = s;
    s.len()
}
"##;
        let lexed = lex(src);
        let unwraps = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Ident && t.text == "unwrap")
            .count();
        assert_eq!(unwraps, 0, "unwrap only appears in comments/strings");
        assert!(lexed.comments.iter().any(|c| c.text.contains("nested")));
        assert!(lexed
            .tokens
            .iter()
            .any(|t| t.kind == TokKind::Lifetime && t.text == "'static"));
        assert!(lexed
            .tokens
            .iter()
            .any(|t| t.kind == TokKind::Str && t.text.contains("nested")));
    }

    #[test]
    fn function_spans_and_test_regions() {
        let src = r#"
fn outer(a: usize) -> usize { a + 1 }

#[cfg(test)]
mod tests {
    #[test]
    fn inner() { assert!(true); }
}

fn after() {}
"#;
        let lexed = lex(src);
        let fns = function_spans(&lexed.tokens);
        let names: Vec<_> = fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["outer", "inner", "after"]);
        let regions = test_regions(&lexed.tokens);
        assert_eq!(regions.len(), 1);
        let inner = fns.iter().find(|f| f.name == "inner").unwrap();
        assert!(in_regions(&regions, inner.fn_tok));
        let after = fns.iter().find(|f| f.name == "after").unwrap();
        assert!(!in_regions(&regions, after.fn_tok));
    }

    #[test]
    fn struct_fields_find_outer_types() {
        let src = r#"
pub struct Entry {
    service: RwLock<Arc<Service>>,
    pub latencies: std::sync::Mutex<Window>,
    quota: Option<u64>,
    freed: std::sync::Condvar,
}
"#;
        let lexed = lex(src);
        let fields = struct_fields(&lexed.tokens);
        let find = |name: &str| {
            fields
                .iter()
                .find(|f| f.field_name == name)
                .map(|f| f.outer_type.as_str())
        };
        assert_eq!(find("service"), Some("RwLock"));
        assert_eq!(find("latencies"), Some("Mutex"));
        assert_eq!(find("quota"), Some("Option"));
        assert_eq!(find("freed"), Some("Condvar"));
    }
}
