//! The checked-in baseline: a per-file, per-code finding ratchet plus the
//! registry of retired wire values.
//!
//! `analysis/baseline.toml` is parsed with a small hand-rolled reader for
//! the TOML subset the file actually uses (table headers, `key = value`
//! with integer, string and integer-array values). The baseline is a
//! *ratchet*: for each `(file, code)` pair it records how many findings are
//! tolerated. Fewer findings than baselined is a *stale* entry (tighten the
//! baseline); more is a *new* finding (fix it or consciously raise the
//! count in the same commit).

use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

use crate::findings::{sort_findings, Finding, FindingCode};

/// Registry values that were once assigned and must never be reused
/// (checked by the wire pass, WIRE002).
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct RetiredValues {
    /// Retired request-tag values.
    pub request_tags: Vec<u64>,
    /// Retired response-tag values.
    pub response_tags: Vec<u64>,
    /// Retired error-code values.
    pub error_codes: Vec<u64>,
}

/// The parsed baseline file.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Baseline {
    /// Tolerated finding counts keyed by `(file, code)`.
    pub allow: BTreeMap<(String, FindingCode), u32>,
    /// Retired wire-registry values.
    pub retired: RetiredValues,
}

/// A baseline parse error with its line number.
#[derive(Debug)]
pub struct BaselineError {
    /// 1-based line of the offending entry (0 for file-level problems).
    pub line: u32,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for BaselineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "baseline.toml:{}: {}", self.line, self.message)
    }
}

impl Baseline {
    /// Reads and parses the baseline file. A missing file is an empty
    /// baseline (the analyzer then reports every finding as new).
    pub fn load(path: &Path) -> Result<Baseline, BaselineError> {
        match fs::read_to_string(path) {
            Ok(text) => Baseline::parse(&text),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(Baseline::default()),
            Err(e) => Err(BaselineError {
                line: 0,
                message: format!("cannot read {}: {e}", path.display()),
            }),
        }
    }

    /// Parses the baseline TOML subset.
    pub fn parse(text: &str) -> Result<Baseline, BaselineError> {
        let mut baseline = Baseline::default();
        let mut section = Section::None;
        let mut entry: Option<AllowEntry> = None;

        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx as u32 + 1;
            let line = strip_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            if line == "[[allow]]" {
                flush_entry(&mut baseline, entry.take(), lineno)?;
                entry = Some(AllowEntry::default());
                section = Section::Allow;
                continue;
            }
            if line == "[retired.wire]" {
                flush_entry(&mut baseline, entry.take(), lineno)?;
                section = Section::Retired;
                continue;
            }
            if line.starts_with('[') {
                return Err(BaselineError {
                    line: lineno,
                    message: format!("unknown section {line}"),
                });
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(BaselineError {
                    line: lineno,
                    message: format!("expected `key = value`, got {line}"),
                });
            };
            let key = key.trim();
            let value = value.trim();
            match section {
                Section::Allow => {
                    let Some(e) = entry.as_mut() else {
                        return Err(BaselineError {
                            line: lineno,
                            message: "key outside [[allow]] entry".to_string(),
                        });
                    };
                    match key {
                        "file" => e.file = Some(parse_string(value, lineno)?),
                        "code" => {
                            let s = parse_string(value, lineno)?;
                            e.code = Some(FindingCode::parse(&s).ok_or(BaselineError {
                                line: lineno,
                                message: format!("unknown finding code {s:?}"),
                            })?);
                        }
                        "count" => e.count = Some(parse_int(value, lineno)? as u32),
                        _ => {
                            return Err(BaselineError {
                                line: lineno,
                                message: format!("unknown [[allow]] key {key:?}"),
                            })
                        }
                    }
                }
                Section::Retired => {
                    let list = parse_int_array(value, lineno)?;
                    match key {
                        "request_tags" => baseline.retired.request_tags = list,
                        "response_tags" => baseline.retired.response_tags = list,
                        "error_codes" => baseline.retired.error_codes = list,
                        _ => {
                            return Err(BaselineError {
                                line: lineno,
                                message: format!("unknown [retired.wire] key {key:?}"),
                            })
                        }
                    }
                }
                Section::None => {
                    return Err(BaselineError {
                        line: lineno,
                        message: format!("key {key:?} before any section"),
                    })
                }
            }
        }
        let end = text.lines().count() as u32;
        flush_entry(&mut baseline, entry.take(), end)?;
        Ok(baseline)
    }

    /// Serializes the baseline back to its canonical on-disk form.
    pub fn serialize(&self) -> String {
        let mut out = String::new();
        out.push_str(
            "# dssddi-analyze baseline — the finding ratchet.\n\
             #\n\
             # Each [[allow]] entry tolerates `count` findings of `code` in `file`.\n\
             # Counts may only go DOWN: fewer findings than baselined fails the run\n\
             # as a stale entry (run `dssddi-analyze --update-baseline`), more fails\n\
             # it as new findings. Raising a count is a reviewed decision — do it in\n\
             # the commit that adds the finding and justify it there.\n\
             #\n\
             # [retired.wire] lists registry values that were once assigned and must\n\
             # never be reused (WIRE002), even though no constant carries them now.\n\n",
        );
        out.push_str("[retired.wire]\n");
        out.push_str(&format!(
            "request_tags = {}\n",
            fmt_int_array(&self.retired.request_tags)
        ));
        out.push_str(&format!(
            "response_tags = {}\n",
            fmt_int_array(&self.retired.response_tags)
        ));
        out.push_str(&format!(
            "error_codes = {}\n",
            fmt_int_array(&self.retired.error_codes)
        ));
        for ((file, code), count) in &self.allow {
            if *count == 0 {
                continue;
            }
            out.push_str("\n[[allow]]\n");
            out.push_str(&format!("file = \"{file}\"\n"));
            out.push_str(&format!("code = \"{}\"\n", code.as_str()));
            out.push_str(&format!("count = {count}\n"));
        }
        out
    }

    /// Builds a baseline that exactly covers `findings`, preserving the
    /// current retired lists.
    pub fn from_findings(findings: &[Finding], retired: RetiredValues) -> Baseline {
        let mut allow: BTreeMap<(String, FindingCode), u32> = BTreeMap::new();
        for f in findings {
            *allow.entry((f.file.clone(), f.code)).or_insert(0) += 1;
        }
        Baseline { allow, retired }
    }
}

/// The outcome of comparing a run's findings against the baseline.
#[derive(Debug, Default)]
pub struct Ratchet {
    /// Findings in `(file, code)` groups that exceed their baseline count.
    /// Every finding of an exceeded group is listed (the analyzer cannot
    /// know which occurrence is "the new one").
    pub new: Vec<Finding>,
    /// Findings fully covered by the baseline.
    pub baselined: Vec<Finding>,
    /// Baseline entries whose count exceeds the actual findings:
    /// `(file, code, baselined_count, actual_count)`.
    pub stale: Vec<(String, FindingCode, u32, u32)>,
}

/// Applies the ratchet: splits findings into new vs baselined and detects
/// stale baseline entries.
pub fn apply_baseline(findings: &[Finding], baseline: &Baseline) -> Ratchet {
    let mut actual: BTreeMap<(String, FindingCode), u32> = BTreeMap::new();
    for f in findings {
        *actual.entry((f.file.clone(), f.code)).or_insert(0) += 1;
    }
    let mut ratchet = Ratchet::default();
    for f in findings {
        let key = (f.file.clone(), f.code);
        let allowed = baseline.allow.get(&key).copied().unwrap_or(0);
        let count = actual.get(&key).copied().unwrap_or(0);
        if count > allowed {
            ratchet.new.push(f.clone());
        } else {
            ratchet.baselined.push(f.clone());
        }
    }
    for ((file, code), &allowed) in &baseline.allow {
        let count = actual.get(&(file.clone(), *code)).copied().unwrap_or(0);
        if count < allowed {
            ratchet.stale.push((file.clone(), *code, allowed, count));
        }
    }
    sort_findings(&mut ratchet.new);
    sort_findings(&mut ratchet.baselined);
    ratchet.stale.sort();
    ratchet
}

#[derive(PartialEq)]
enum Section {
    None,
    Allow,
    Retired,
}

#[derive(Default)]
struct AllowEntry {
    file: Option<String>,
    code: Option<FindingCode>,
    count: Option<u32>,
}

fn flush_entry(
    baseline: &mut Baseline,
    entry: Option<AllowEntry>,
    lineno: u32,
) -> Result<(), BaselineError> {
    let Some(e) = entry else { return Ok(()) };
    match (e.file, e.code, e.count) {
        (Some(file), Some(code), Some(count)) => {
            let key = (file, code);
            if baseline.allow.contains_key(&key) {
                return Err(BaselineError {
                    line: lineno,
                    message: format!("duplicate [[allow]] entry for {} {}", key.0, key.1.as_str()),
                });
            }
            baseline.allow.insert(key, count);
            Ok(())
        }
        _ => Err(BaselineError {
            line: lineno,
            message: "[[allow]] entry needs file, code and count".to_string(),
        }),
    }
}

/// Removes a `#`-to-end-of-line comment, respecting double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_string(value: &str, line: u32) -> Result<String, BaselineError> {
    let v = value.trim();
    if v.len() >= 2 && v.starts_with('"') && v.ends_with('"') {
        Ok(v[1..v.len() - 1].to_string())
    } else {
        Err(BaselineError {
            line,
            message: format!("expected a quoted string, got {v}"),
        })
    }
}

fn parse_int(value: &str, line: u32) -> Result<u64, BaselineError> {
    value.trim().parse::<u64>().map_err(|_| BaselineError {
        line,
        message: format!("expected an integer, got {}", value.trim()),
    })
}

fn parse_int_array(value: &str, line: u32) -> Result<Vec<u64>, BaselineError> {
    let v = value.trim();
    if !v.starts_with('[') || !v.ends_with(']') {
        return Err(BaselineError {
            line,
            message: format!("expected [n, n, ...], got {v}"),
        });
    }
    let inner = v[1..v.len() - 1].trim();
    if inner.is_empty() {
        return Ok(Vec::new());
    }
    inner.split(',').map(|part| parse_int(part, line)).collect()
}

fn fmt_int_array(values: &[u64]) -> String {
    let parts: Vec<String> = values.iter().map(|v| v.to_string()).collect();
    format!("[{}]", parts.join(", "))
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // tests may panic freely
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
# comment
[retired.wire]
request_tags = [11, 12]
response_tags = []
error_codes = [9] # trailing comment

[[allow]]
file = "crates/experiments/src/lib.rs"
code = "PANIC001"
count = 3

[[allow]]
file = "crates/ml/src/ecc.rs"
code = "PANIC002"
count = 1
"#;

    #[test]
    fn parse_and_serialize_round_trip() {
        let b = Baseline::parse(SAMPLE).unwrap();
        assert_eq!(b.retired.request_tags, vec![11, 12]);
        assert_eq!(b.retired.error_codes, vec![9]);
        assert_eq!(
            b.allow.get(&(
                "crates/experiments/src/lib.rs".to_string(),
                FindingCode::Panic001
            )),
            Some(&3)
        );
        let text = b.serialize();
        let b2 = Baseline::parse(&text).unwrap();
        assert_eq!(b, b2);
    }

    #[test]
    fn ratchet_splits_new_baselined_and_stale() {
        let b = Baseline::parse(SAMPLE).unwrap();
        let findings = vec![
            // 4 PANIC001 in experiments (baseline 3) -> all 4 new.
            Finding::new(
                FindingCode::Panic001,
                "crates/experiments/src/lib.rs",
                1,
                "a".into(),
            ),
            Finding::new(
                FindingCode::Panic001,
                "crates/experiments/src/lib.rs",
                2,
                "b".into(),
            ),
            Finding::new(
                FindingCode::Panic001,
                "crates/experiments/src/lib.rs",
                3,
                "c".into(),
            ),
            Finding::new(
                FindingCode::Panic001,
                "crates/experiments/src/lib.rs",
                4,
                "d".into(),
            ),
            // 0 PANIC002 in ecc.rs (baseline 1) -> stale entry.
        ];
        let r = apply_baseline(&findings, &b);
        assert_eq!(r.new.len(), 4);
        assert_eq!(r.baselined.len(), 0);
        assert_eq!(
            r.stale,
            vec![(
                "crates/ml/src/ecc.rs".to_string(),
                FindingCode::Panic002,
                1,
                0
            )]
        );
    }

    #[test]
    fn covered_findings_are_baselined() {
        let b = Baseline::parse(SAMPLE).unwrap();
        let findings = vec![
            Finding::new(
                FindingCode::Panic001,
                "crates/experiments/src/lib.rs",
                1,
                "a".into(),
            ),
            Finding::new(FindingCode::Panic002, "crates/ml/src/ecc.rs", 9, "e".into()),
        ];
        let r = apply_baseline(&findings, &b);
        assert!(r.new.is_empty());
        assert_eq!(r.baselined.len(), 2);
        // 1 < 3 for PANIC001 -> that entry is stale too.
        assert_eq!(r.stale.len(), 1);
        assert_eq!(r.stale[0].1, FindingCode::Panic001);
    }

    #[test]
    fn parse_errors_carry_lines() {
        let err = Baseline::parse("[[allow]]\nfile = \"x\"\n").unwrap_err();
        assert!(err.message.contains("needs file, code and count"));
        let err = Baseline::parse("[unknown]\n").unwrap_err();
        assert_eq!(err.line, 1);
    }

    #[test]
    fn missing_file_is_empty_baseline() {
        let b = Baseline::load(Path::new("/nonexistent/baseline.toml")).unwrap();
        assert!(b.allow.is_empty());
    }
}
