//! `dssddi-analyze` — run the workspace static-analysis passes.
//!
//! ```text
//! dssddi-analyze [--root DIR] [--baseline FILE] [--deny-new] [--deny-stale]
//!                [--update-baseline] [--explain CODE] [--list] [--quiet]
//! ```
//!
//! Exit status: `0` when clean, `1` on new findings (and, with
//! `--deny-stale`, on stale baseline entries), `2` on usage or I/O errors.
//! Output is sorted and stable so CI logs diff cleanly between runs.

use std::path::PathBuf;
use std::process::ExitCode;

use dssddi_analyze::baseline::Baseline;
use dssddi_analyze::findings::{FindingCode, ALL_CODES};
use dssddi_analyze::workspace::discover_root;

const USAGE: &str = "\
dssddi-analyze: static-analysis gate for the dssddi workspace

USAGE:
    dssddi-analyze [OPTIONS]

OPTIONS:
    --root DIR          workspace root (default: discovered from cwd)
    --baseline FILE     baseline path (default: ROOT/analysis/baseline.toml)
    --deny-new          fail on non-baselined findings (default behavior,
                        spelled out for CI readability)
    --deny-stale        also fail on stale baseline entries
    --update-baseline   rewrite the baseline to match current findings
    --explain CODE      print the rationale for a finding code and exit
    --list              list all finding codes and exit
    --quiet             suppress baselined findings in the report
    --help              show this help
";

struct Options {
    root: Option<PathBuf>,
    baseline: Option<PathBuf>,
    deny_stale: bool,
    update_baseline: bool,
    explain: Option<String>,
    list: bool,
    quiet: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        root: None,
        baseline: None,
        deny_stale: false,
        update_baseline: false,
        explain: None,
        list: false,
        quiet: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                opts.root = Some(PathBuf::from(
                    args.next().ok_or("--root needs a directory")?,
                ))
            }
            "--baseline" => {
                opts.baseline = Some(PathBuf::from(args.next().ok_or("--baseline needs a path")?))
            }
            "--deny-new" => {} // the default; accepted so CI invocations self-document
            "--deny-stale" => opts.deny_stale = true,
            "--update-baseline" => opts.update_baseline = true,
            "--explain" => opts.explain = Some(args.next().ok_or("--explain needs a CODE")?),
            "--list" => opts.list = true,
            "--quiet" => opts.quiet = true,
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("dssddi-analyze: {e}");
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    };

    if opts.list {
        for code in ALL_CODES {
            println!("{:<10} {}", code.as_str(), code.summary());
        }
        return ExitCode::SUCCESS;
    }
    if let Some(code_str) = &opts.explain {
        match FindingCode::parse(code_str) {
            Some(code) => {
                println!("{}", code.explain());
                return ExitCode::SUCCESS;
            }
            None => {
                eprintln!("dssddi-analyze: unknown code {code_str:?} (try --list)");
                return ExitCode::from(2);
            }
        }
    }

    let root = match opts
        .root
        .clone()
        .or_else(|| std::env::current_dir().ok().and_then(|d| discover_root(&d)))
    {
        Some(r) => r,
        None => {
            eprintln!("dssddi-analyze: no workspace root found (use --root)");
            return ExitCode::from(2);
        }
    };
    let baseline_path = opts
        .baseline
        .clone()
        .unwrap_or_else(|| root.join("analysis").join("baseline.toml"));

    let base = match Baseline::load(&baseline_path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("dssddi-analyze: {e}");
            return ExitCode::from(2);
        }
    };

    let analysis = match dssddi_analyze::analyze_root(&root, &base) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("dssddi-analyze: cannot load sources: {e}");
            return ExitCode::from(2);
        }
    };

    if opts.update_baseline {
        let updated = Baseline::from_findings(&analysis.findings, base.retired.clone());
        if let Some(parent) = baseline_path.parent() {
            if let Err(e) = std::fs::create_dir_all(parent) {
                eprintln!("dssddi-analyze: cannot create {}: {e}", parent.display());
                return ExitCode::from(2);
            }
        }
        if let Err(e) = std::fs::write(&baseline_path, updated.serialize()) {
            eprintln!(
                "dssddi-analyze: cannot write {}: {e}",
                baseline_path.display()
            );
            return ExitCode::from(2);
        }
        println!(
            "dssddi-analyze: baseline updated with {} findings across {} entries",
            analysis.findings.len(),
            updated.allow.len()
        );
        return ExitCode::SUCCESS;
    }

    let r = &analysis.ratchet;
    for f in &r.new {
        println!("NEW  {f}");
    }
    if !opts.quiet {
        for f in &r.baselined {
            println!("ok   {f}");
        }
    }
    for (file, code, allowed, actual) in &r.stale {
        println!(
            "STALE {} {} baseline allows {allowed}, found {actual} (run --update-baseline)",
            code.as_str(),
            file
        );
    }
    println!(
        "dssddi-analyze: {} findings ({} new, {} baselined), {} stale baseline entries",
        analysis.findings.len(),
        r.new.len(),
        r.baselined.len(),
        r.stale.len()
    );

    if !r.new.is_empty() || (opts.deny_stale && !r.stale.is_empty()) {
        return ExitCode::from(1);
    }
    ExitCode::SUCCESS
}
