//! Pass 2: wire/container registry consistency.
//!
//! The workspace has three hand-rolled binary formats: the `DSWR` network
//! protocol (`crates/serving/src/wire.rs`), the `DSSD` model container
//! (`crates/tensor/src/serde.rs`) and the `DSKB` knowledge-base container
//! (`crates/kb/src/base.rs`). Their registries are plain `const`s and
//! `match` arms — nothing stops a new tag from colliding with an old one
//! except review. This pass re-derives the registries from the token
//! stream and checks:
//!
//! - **WIRE001** — no two constants in one value space share a value. The
//!   request and response tag spaces are *separate* (membership is decided
//!   by which encode/decode function references the constant, so
//!   `TAG_RELOAD_MODEL == TAG_MODEL_RELOADED == 8` is legal); container
//!   magics form one cross-file space.
//! - **WIRE002** — no constant carries a value listed as retired in
//!   `analysis/baseline.toml`.
//! - **WIRE003** — `encode_request_ref`/`decode_request` (and the response
//!   pair) cover the same tag sets.
//! - **WIRE004** — module-doc claims (`` `ReloadModel` (8) `` tag tables,
//!   `magic bytes "DSWR"`, `currently 1` version statements) agree with
//!   the constants.
//! - **WIRE005** — `ErrorCode::to_u8`, `from_u8` and `ALL` describe one
//!   bijection, with `ALL` in ascending tag order.

use std::collections::BTreeMap;

use crate::baseline::RetiredValues;
use crate::findings::{Finding, FindingCode};
use crate::lexer::{function_spans, FnSpan, TokKind, Token};
use crate::workspace::{SourceFile, SourceTree};

/// The files the pass inspects (fixture trees use the same paths).
pub const WIRE_FILE: &str = "crates/serving/src/wire.rs";
/// Container format files checked for magic/version/doc consistency.
pub const CONTAINER_FILES: [&str; 3] = [
    WIRE_FILE,
    "crates/tensor/src/serde.rs",
    "crates/kb/src/base.rs",
];

/// Runs the wire-registry pass.
pub fn check(tree: &SourceTree, retired: &RetiredValues) -> Vec<Finding> {
    let mut findings = Vec::new();

    // Container magics: one cross-file value space.
    let mut magics: Vec<(String, String, String, u32)> = Vec::new(); // (value, name, file, line)
    for rel in CONTAINER_FILES {
        let Some(file) = tree.get(rel) else { continue };
        let consts = scan_consts(&file.lexed.tokens);
        for c in &consts {
            if let ConstValue::Magic(m) = &c.value {
                magics.push((m.clone(), c.name.clone(), file.rel.clone(), c.line));
            }
        }
        check_doc_claims(file, &consts, &mut findings);
    }
    magics.sort();
    for pair in magics.windows(2) {
        if pair[0].0 == pair[1].0 {
            findings.push(Finding::new(
                FindingCode::Wire001,
                &pair[1].2,
                pair[1].3,
                format!(
                    "magic {:?} of `{}` collides with `{}` ({})",
                    pair[1].0, pair[1].1, pair[0].1, pair[0].2
                ),
            ));
        }
    }

    if let Some(file) = tree.get(WIRE_FILE) {
        check_tag_spaces(file, retired, &mut findings);
        check_error_code(file, retired, &mut findings);
    }
    findings
}

/// A scanned constant.
struct ConstDef {
    name: String,
    value: ConstValue,
    line: u32,
}

enum ConstValue {
    /// `const N: u8/u16/... = <integer>;`
    Int(u64),
    /// `const N: [u8; 4] = *b"XXXX";`
    Magic(String),
    /// Anything else (expressions, non-scalar types).
    Other,
}

/// Scans `const NAME: Type = value;` items from the token stream.
fn scan_consts(tokens: &[Token]) -> Vec<ConstDef> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].is_ident("const")
            && tokens.get(i + 1).is_some_and(|t| t.kind == TokKind::Ident)
            && tokens.get(i + 2).is_some_and(|t| t.is_punct(':'))
        {
            let name = tokens[i + 1].text.clone();
            let line = tokens[i + 1].line;
            // Find `=` then the value tokens up to `;`.
            let mut j = i + 3;
            while j < tokens.len() && !tokens[j].is_punct('=') && !tokens[j].is_punct(';') {
                j += 1;
            }
            if j < tokens.len() && tokens[j].is_punct('=') {
                let mut k = j + 1;
                let mut value_toks: Vec<&Token> = Vec::new();
                while k < tokens.len() && !tokens[k].is_punct(';') {
                    value_toks.push(&tokens[k]);
                    k += 1;
                }
                let value = match value_toks.as_slice() {
                    [t] if t.kind == TokKind::Number => {
                        parse_int(&t.text).map_or(ConstValue::Other, ConstValue::Int)
                    }
                    [star, s] if star.is_punct('*') && s.kind == TokKind::Str => {
                        ConstValue::Magic(s.text.clone())
                    }
                    [s] if s.kind == TokKind::Str => ConstValue::Magic(s.text.clone()),
                    _ => ConstValue::Other,
                };
                out.push(ConstDef { name, value, line });
                i = k;
                continue;
            }
        }
        i += 1;
    }
    out
}

/// Parses a Rust integer literal (decimal or `0x`/`0o`/`0b`, `_` allowed,
/// type suffixes tolerated).
fn parse_int(text: &str) -> Option<u64> {
    let t = text.replace('_', "");
    let t = [
        "usize", "isize", "u128", "i128", "u64", "i64", "u32", "i32", "u16", "i16", "u8", "i8",
    ]
    .iter()
    .find_map(|s| t.strip_suffix(s))
    .unwrap_or(t.as_str());
    if let Some(hex) = t.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).ok()
    } else if let Some(oct) = t.strip_prefix("0o") {
        u64::from_str_radix(oct, 8).ok()
    } else if let Some(bin) = t.strip_prefix("0b") {
        u64::from_str_radix(bin, 2).ok()
    } else {
        t.parse().ok()
    }
}

/// Extracts the tags referenced by one encode/decode function: for encode
/// fns, `put_u8(TAG_X)` calls; for decode fns, `TAG_X =>` match arms.
fn tags_in_fn<'a>(tokens: &'a [Token], span: &FnSpan, decode: bool) -> Vec<(&'a str, u32)> {
    let (Some(open), Some(close)) = (span.body_open, span.body_close) else {
        return Vec::new();
    };
    let mut tags = Vec::new();
    for i in open..=close.min(tokens.len() - 1) {
        let t = &tokens[i];
        if t.kind != TokKind::Ident || !t.text.starts_with("TAG_") {
            continue;
        }
        if decode {
            // `TAG_X =>`
            if tokens.get(i + 1).is_some_and(|n| n.is_punct('='))
                && tokens.get(i + 2).is_some_and(|n| n.is_punct('>'))
            {
                tags.push((t.text.as_str(), t.line));
            }
        } else {
            // `put_u8(TAG_X)`
            let prev2 = i.checked_sub(2).and_then(|p| tokens.get(p));
            if prev2.is_some_and(|p| p.is_ident("put_u8")) {
                tags.push((t.text.as_str(), t.line));
            }
        }
    }
    tags
}

/// Checks the request and response tag spaces of `wire.rs`.
fn check_tag_spaces(file: &SourceFile, retired: &RetiredValues, findings: &mut Vec<Finding>) {
    let tokens = &file.lexed.tokens;
    let consts = scan_consts(tokens);
    let const_vals: BTreeMap<&str, (u64, u32)> = consts
        .iter()
        .filter_map(|c| match c.value {
            ConstValue::Int(v) => Some((c.name.as_str(), (v, c.line))),
            _ => None,
        })
        .collect();
    let fns = function_spans(tokens);
    let find_fn = |name: &str| fns.iter().find(|f| f.name == name);

    for (space, enc_name, dec_name, retired_vals) in [
        (
            "request",
            "encode_request_ref",
            "decode_request",
            &retired.request_tags,
        ),
        (
            "response",
            "encode_response",
            "decode_response",
            &retired.response_tags,
        ),
    ] {
        let enc: Vec<(&str, u32)> = find_fn(enc_name)
            .map(|f| tags_in_fn(tokens, f, false))
            .unwrap_or_default();
        let dec: Vec<(&str, u32)> = find_fn(dec_name)
            .map(|f| tags_in_fn(tokens, f, true))
            .unwrap_or_default();

        // WIRE003: both sides must reference the same tag-name set.
        for (name, line) in &enc {
            if !dec.iter().any(|(n, _)| n == name) {
                findings.push(Finding::new(
                    FindingCode::Wire003,
                    &file.rel,
                    *line,
                    format!("`{enc_name}` emits `{name}` but `{dec_name}` has no arm for it"),
                ));
            }
        }
        for (name, line) in &dec {
            if !enc.iter().any(|(n, _)| n == name) {
                findings.push(Finding::new(
                    FindingCode::Wire003,
                    &file.rel,
                    *line,
                    format!("`{dec_name}` accepts `{name}` but `{enc_name}` never emits it"),
                ));
            }
        }

        // The space's registry: every distinct tag name either side uses.
        let mut names: Vec<&str> = enc.iter().chain(dec.iter()).map(|(n, _)| *n).collect();
        names.sort_unstable();
        names.dedup();

        // WIRE001: no two names in the space share a value.
        let mut by_value: BTreeMap<u64, Vec<&str>> = BTreeMap::new();
        for name in &names {
            if let Some((v, _)) = const_vals.get(name) {
                by_value.entry(*v).or_default().push(name);
            }
        }
        for (value, owners) in &by_value {
            if owners.len() > 1 {
                let (_, line) = const_vals.get(owners[1]).copied().unwrap_or((0, 0));
                findings.push(Finding::new(
                    FindingCode::Wire001,
                    &file.rel,
                    line,
                    format!(
                        "{space} tag value {value} assigned to {}",
                        owners.join(" and ")
                    ),
                ));
            }
            // WIRE002: retired values must stay dead.
            if retired_vals.contains(value) {
                let (_, line) = const_vals.get(owners[0]).copied().unwrap_or((0, 0));
                findings.push(Finding::new(
                    FindingCode::Wire002,
                    &file.rel,
                    line,
                    format!(
                        "{space} tag value {value} ({}) is retired and must not be reused",
                        owners.join(", ")
                    ),
                ));
            }
        }
    }
}

/// Checks the `ErrorCode` `to_u8`/`from_u8`/`ALL` triple.
fn check_error_code(file: &SourceFile, retired: &RetiredValues, findings: &mut Vec<Finding>) {
    let tokens = &file.lexed.tokens;
    let fns = function_spans(tokens);

    // to_u8: `ErrorCode :: Variant = > N` pairs inside fn to_u8.
    let mut to_u8: Vec<(String, u64, u32)> = Vec::new();
    let mut from_u8: Vec<(u64, String)> = Vec::new();
    for span in &fns {
        let (Some(open), Some(close)) = (span.body_open, span.body_close) else {
            continue;
        };
        if span.name == "to_u8" {
            let mut i = open;
            while i + 5 <= close {
                if tokens[i].is_ident("ErrorCode")
                    && tokens[i + 1].is_punct(':')
                    && tokens[i + 2].is_punct(':')
                    && tokens[i + 3].kind == TokKind::Ident
                    && tokens[i + 4].is_punct('=')
                    && tokens[i + 5].is_punct('>')
                    && tokens.get(i + 6).is_some_and(|t| t.kind == TokKind::Number)
                {
                    if let Some(v) = parse_int(&tokens[i + 6].text) {
                        to_u8.push((tokens[i + 3].text.clone(), v, tokens[i + 3].line));
                    }
                }
                i += 1;
            }
        } else if span.name == "from_u8" {
            let mut i = open;
            while i + 5 <= close {
                if tokens[i].kind == TokKind::Number
                    && tokens[i + 1].is_punct('=')
                    && tokens[i + 2].is_punct('>')
                    && tokens[i + 3].is_ident("ErrorCode")
                    && tokens[i + 4].is_punct(':')
                    && tokens[i + 5].is_punct(':')
                    && tokens.get(i + 6).is_some_and(|t| t.kind == TokKind::Ident)
                {
                    if let Some(v) = parse_int(&tokens[i].text) {
                        from_u8.push((v, tokens[i + 6].text.clone()));
                    }
                }
                i += 1;
            }
        }
    }
    if to_u8.is_empty() {
        return; // Fixture or wire file without an ErrorCode block.
    }

    // ALL: `ALL : [ ErrorCode ; N ] = [ ErrorCode :: A , ... ] ;`
    let mut all: Vec<String> = Vec::new();
    let mut all_line = 0u32;
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].is_ident("ALL")
            && i >= 1
            && tokens.get(i - 1).is_some_and(|t| t.is_ident("const"))
        {
            all_line = tokens[i].line;
            // Find `=` then collect `ErrorCode :: X` until `;`.
            let mut j = i;
            while j < tokens.len() && !tokens[j].is_punct('=') {
                j += 1;
            }
            while j < tokens.len() && !tokens[j].is_punct(';') {
                if tokens[j].is_ident("ErrorCode")
                    && tokens.get(j + 1).is_some_and(|t| t.is_punct(':'))
                    && tokens.get(j + 2).is_some_and(|t| t.is_punct(':'))
                    && tokens.get(j + 3).is_some_and(|t| t.kind == TokKind::Ident)
                {
                    all.push(tokens[j + 3].text.clone());
                    j += 4;
                    continue;
                }
                j += 1;
            }
            break;
        }
        i += 1;
    }

    // WIRE001 within the error-code space + WIRE005 consistency.
    let mut by_value: BTreeMap<u64, Vec<&str>> = BTreeMap::new();
    for (variant, value, line) in &to_u8 {
        by_value.entry(*value).or_default().push(variant);
        if retired.error_codes.contains(value) {
            findings.push(Finding::new(
                FindingCode::Wire002,
                &file.rel,
                *line,
                format!("error code {value} ({variant}) is retired and must not be reused"),
            ));
        }
    }
    for (value, owners) in &by_value {
        if owners.len() > 1 {
            findings.push(Finding::new(
                FindingCode::Wire001,
                &file.rel,
                0,
                format!(
                    "error code value {value} assigned to {}",
                    owners.join(" and ")
                ),
            ));
        }
    }
    for (variant, value, line) in &to_u8 {
        match from_u8.iter().find(|(v, _)| v == value) {
            Some((_, var2)) if var2 == variant => {}
            Some((_, var2)) => findings.push(Finding::new(
                FindingCode::Wire005,
                &file.rel,
                *line,
                format!("to_u8 maps {variant} to {value} but from_u8({value}) yields {var2}"),
            )),
            None => findings.push(Finding::new(
                FindingCode::Wire005,
                &file.rel,
                *line,
                format!("to_u8 maps {variant} to {value} but from_u8 has no arm for {value}"),
            )),
        }
    }
    for (value, variant) in &from_u8 {
        if !to_u8.iter().any(|(v, _, _)| v == variant) {
            findings.push(Finding::new(
                FindingCode::Wire005,
                &file.rel,
                0,
                format!("from_u8({value}) yields {variant}, which to_u8 never produces"),
            ));
        }
    }
    // ALL: exactly the to_u8 variants, ascending by tag.
    for (variant, _, line) in &to_u8 {
        let n = all.iter().filter(|v| *v == variant).count();
        if n != 1 {
            findings.push(Finding::new(
                FindingCode::Wire005,
                &file.rel,
                *line,
                format!("ALL lists {variant} {n} times (expected exactly once)"),
            ));
        }
    }
    for variant in &all {
        if !to_u8.iter().any(|(v, _, _)| v == variant) {
            findings.push(Finding::new(
                FindingCode::Wire005,
                &file.rel,
                all_line,
                format!("ALL lists {variant}, which to_u8 does not map"),
            ));
        }
    }
    let all_values: Vec<u64> = all
        .iter()
        .filter_map(|v| {
            to_u8
                .iter()
                .find(|(n, _, _)| n == v)
                .map(|(_, val, _)| *val)
        })
        .collect();
    if all_values.windows(2).any(|w| w[0] >= w[1]) {
        findings.push(Finding::new(
            FindingCode::Wire005,
            &file.rel,
            all_line,
            "ALL is not in strictly ascending tag order (index() relies on it)".to_string(),
        ));
    }
}

/// Checks module-doc claims against the scanned constants.
fn check_doc_claims(file: &SourceFile, consts: &[ConstDef], findings: &mut Vec<Finding>) {
    let const_vals: BTreeMap<&str, u64> = consts
        .iter()
        .filter_map(|c| match c.value {
            ConstValue::Int(v) => Some((c.name.as_str(), v)),
            _ => None,
        })
        .collect();
    let magics: Vec<&str> = consts
        .iter()
        .filter_map(|c| match &c.value {
            ConstValue::Magic(m) if c.name.contains("MAGIC") => Some(m.as_str()),
            _ => None,
        })
        .collect();
    let versions: Vec<u64> = consts
        .iter()
        .filter_map(|c| match c.value {
            ConstValue::Int(v) if c.name.contains("VERSION") => Some(v),
            _ => None,
        })
        .collect();
    // ErrorCode variants resolvable by doc name (scanned lazily from
    // to_u8-style match text is overkill here: tag constants cover the
    // doc tables; error codes resolve via TAG-style lookup miss below).
    let error_codes = scan_error_code_values(&file.lexed.tokens);

    for comment in &file.lexed.comments {
        if !comment.doc {
            continue;
        }
        // `Name` (N) claims.
        for (name, value) in backtick_claims(&comment.text) {
            let expected = error_codes
                .get(name.as_str())
                .copied()
                .or_else(|| {
                    let tag_name = format!("TAG_{}", camel_to_screaming(&name));
                    const_vals.get(tag_name.as_str()).copied()
                })
                .or_else(|| {
                    // Frame-extension type claims (`TraceId` (1) in the
                    // extension-layout table) resolve via EXT_* constants.
                    let ext_name = format!("EXT_{}", camel_to_screaming(&name));
                    const_vals.get(ext_name.as_str()).copied()
                });
            if let Some(exp) = expected {
                if exp != value {
                    findings.push(Finding::new(
                        FindingCode::Wire004,
                        &file.rel,
                        comment.line,
                        format!("doc says `{name}` ({value}) but the constant is {exp}"),
                    ));
                }
            }
        }
        // magic bytes "XXXX" claims.
        if let Some(claimed) = magic_claim(&comment.text) {
            if !magics.is_empty() && !magics.contains(&claimed.as_str()) {
                findings.push(Finding::new(
                    FindingCode::Wire004,
                    &file.rel,
                    comment.line,
                    format!("doc claims magic bytes {claimed:?} but the file defines {magics:?}"),
                ));
            }
        }
        // `currently N` version claims.
        if let Some(claimed) = currently_claim(&comment.text) {
            if !versions.is_empty() && !versions.contains(&claimed) {
                findings.push(Finding::new(
                    FindingCode::Wire004,
                    &file.rel,
                    comment.line,
                    format!(
                        "doc claims version `currently {claimed}` but the file defines {versions:?}"
                    ),
                ));
            }
        }
    }
}

/// Scans `ErrorCode::Variant => N` pairs anywhere in the file (the to_u8
/// body) into a name→value map for doc-claim resolution.
fn scan_error_code_values(tokens: &[Token]) -> BTreeMap<String, u64> {
    let mut map = BTreeMap::new();
    let mut i = 0usize;
    while i + 6 < tokens.len() {
        if tokens[i].is_ident("ErrorCode")
            && tokens[i + 1].is_punct(':')
            && tokens[i + 2].is_punct(':')
            && tokens[i + 3].kind == TokKind::Ident
            && tokens[i + 4].is_punct('=')
            && tokens[i + 5].is_punct('>')
            && tokens[i + 6].kind == TokKind::Number
        {
            if let Some(v) = parse_int(&tokens[i + 6].text) {
                map.entry(tokens[i + 3].text.clone()).or_insert(v);
            }
        }
        i += 1;
    }
    map
}

/// Extracts `` `Name` (N) `` claims from one comment line.
fn backtick_claims(text: &str) -> Vec<(String, u64)> {
    let mut out = Vec::new();
    let chars: Vec<char> = text.chars().collect();
    let mut i = 0usize;
    while i < chars.len() {
        if chars[i] == '`' {
            let start = i + 1;
            let mut j = start;
            while j < chars.len() && chars[j] != '`' {
                j += 1;
            }
            if j < chars.len() {
                let name: String = chars[start..j].iter().collect();
                // Skip whitespace, expect `(digits)`.
                let mut k = j + 1;
                while k < chars.len() && chars[k] == ' ' {
                    k += 1;
                }
                if k < chars.len() && chars[k] == '(' {
                    let num_start = k + 1;
                    let mut m = num_start;
                    while m < chars.len() && chars[m].is_ascii_digit() {
                        m += 1;
                    }
                    if m > num_start && m < chars.len() && chars[m] == ')' {
                        let digits: String = chars[num_start..m].iter().collect();
                        if let Ok(v) = digits.parse::<u64>() {
                            if name.chars().all(|c| c.is_ascii_alphanumeric())
                                && name.starts_with(|c: char| c.is_ascii_uppercase())
                            {
                                out.push((name, v));
                            }
                        }
                    }
                }
                i = j + 1;
                continue;
            }
        }
        i += 1;
    }
    out
}

/// Extracts a `magic bytes "XXXX"` claim from one comment line.
fn magic_claim(text: &str) -> Option<String> {
    let idx = text.find("magic bytes \"")?;
    let rest = &text[idx + "magic bytes \"".len()..];
    let end = rest.find('"')?;
    Some(rest[..end].to_string())
}

/// Extracts a `currently N` claim from one comment line.
fn currently_claim(text: &str) -> Option<u64> {
    let idx = text.find("currently ")?;
    let rest = &text[idx + "currently ".len()..];
    let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
    if digits.is_empty() {
        None
    } else {
        digits.parse().ok()
    }
}

/// Converts `CamelCase` to `SCREAMING_SNAKE` (`ReloadModel` →
/// `RELOAD_MODEL`, `KbInfo` → `KB_INFO`).
fn camel_to_screaming(name: &str) -> String {
    let mut out = String::new();
    for (i, c) in name.chars().enumerate() {
        if c.is_ascii_uppercase() && i > 0 {
            out.push('_');
        }
        out.push(c.to_ascii_uppercase());
    }
    out
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // tests may panic freely
mod tests {
    use super::*;

    #[test]
    fn camel_conversion() {
        assert_eq!(camel_to_screaming("ReloadModel"), "RELOAD_MODEL");
        assert_eq!(camel_to_screaming("KbInfo"), "KB_INFO");
        assert_eq!(camel_to_screaming("Stats"), "STATS");
    }

    #[test]
    fn claims_parse() {
        assert_eq!(
            backtick_claims("tags `ReloadModel` (8), `ReloadKb` (9) and `KbInfo` (10)"),
            vec![
                ("ReloadModel".to_string(), 8),
                ("ReloadKb".to_string(), 9),
                ("KbInfo".to_string(), 10)
            ]
        );
        assert_eq!(
            magic_claim("0       4     magic bytes \"DSWR\""),
            Some("DSWR".to_string())
        );
        assert_eq!(
            currently_claim("4       2     protocol version (little-endian u16, currently 1)"),
            Some(1)
        );
        assert_eq!(magic_claim("foreign magic bytes, future"), None);
    }

    #[test]
    fn ext_doc_claims_resolve_against_ext_constants() {
        use crate::baseline::RetiredValues;
        use crate::workspace::SourceTree;

        // A doc claim `TraceId` (N) must resolve through EXT_TRACE_ID:
        // correct value → clean, wrong value → WIRE004.
        let good = "//! extension `TraceId` (1) carries the trace.\n\
                    pub const EXT_TRACE_ID: u8 = 1;\n";
        let tree = SourceTree::from_parts(&[(WIRE_FILE, good)]);
        assert!(check(&tree, &RetiredValues::default()).is_empty());

        let bad = "//! extension `TraceId` (2) carries the trace.\n\
                   pub const EXT_TRACE_ID: u8 = 1;\n";
        let tree = SourceTree::from_parts(&[(WIRE_FILE, bad)]);
        let findings = check(&tree, &RetiredValues::default());
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].code, FindingCode::Wire004);
        assert!(findings[0].message.contains("TraceId"));
    }
}
