//! Finding codes, findings and the stable report format.
//!
//! Every analysis pass emits [`Finding`]s tagged with a [`FindingCode`].
//! Findings sort by `(file, code, line, message)` so the analyzer's output
//! is deterministic and diffable; CI compares runs textually.

use std::fmt;

/// Every finding code the analyzer can emit, grouped by pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FindingCode {
    /// Lock-acquisition graph contains a cycle (potential deadlock).
    Lock001,
    /// A read guard is upgraded to a write on the same lock in one scope.
    Lock002,
    /// A lock field is missing from the `LOCK ORDER:` documentation block.
    Lock003,
    /// A `LOCK ORDER:` entry names a field that does not exist.
    Lock004,
    /// A lock-acquisition edge contradicts the documented canonical order.
    Lock005,
    /// Two structs in the scanned crates share a lock field name, making
    /// name-based acquisition attribution ambiguous.
    Lock006,
    /// Two registry constants in the same value space share a value.
    Wire001,
    /// A registry constant reuses a retired value.
    Wire002,
    /// Encode and decode sides of a wire registry cover different tag sets.
    Wire003,
    /// A module-doc claim (tag number, magic, version) disagrees with the
    /// constant it documents.
    Wire004,
    /// `ErrorCode::to_u8`, `from_u8` and `ALL` are mutually inconsistent.
    Wire005,
    /// `.unwrap()` in non-test library/binary code.
    Panic001,
    /// `.expect(...)` in non-test library/binary code.
    Panic002,
    /// `panic!`/`unreachable!`/`todo!`/`unimplemented!` in non-test code.
    Panic003,
    /// Slice/array indexing (`x[i]`) in non-test library/binary code.
    Panic004,
    /// A `*_into` kernel does not take its output buffer as the first
    /// non-`self` parameter.
    Kernel001,
    /// A `*_into` kernel's doc comment lacks the `fully overwrites` marker.
    Kernel002,
}

/// All codes, in report order.
pub const ALL_CODES: [FindingCode; 17] = [
    FindingCode::Lock001,
    FindingCode::Lock002,
    FindingCode::Lock003,
    FindingCode::Lock004,
    FindingCode::Lock005,
    FindingCode::Lock006,
    FindingCode::Wire001,
    FindingCode::Wire002,
    FindingCode::Wire003,
    FindingCode::Wire004,
    FindingCode::Wire005,
    FindingCode::Panic001,
    FindingCode::Panic002,
    FindingCode::Panic003,
    FindingCode::Panic004,
    FindingCode::Kernel001,
    FindingCode::Kernel002,
];

impl FindingCode {
    /// The stable textual code (`LOCK001`, `WIRE003`, ...).
    pub fn as_str(self) -> &'static str {
        match self {
            FindingCode::Lock001 => "LOCK001",
            FindingCode::Lock002 => "LOCK002",
            FindingCode::Lock003 => "LOCK003",
            FindingCode::Lock004 => "LOCK004",
            FindingCode::Lock005 => "LOCK005",
            FindingCode::Lock006 => "LOCK006",
            FindingCode::Wire001 => "WIRE001",
            FindingCode::Wire002 => "WIRE002",
            FindingCode::Wire003 => "WIRE003",
            FindingCode::Wire004 => "WIRE004",
            FindingCode::Wire005 => "WIRE005",
            FindingCode::Panic001 => "PANIC001",
            FindingCode::Panic002 => "PANIC002",
            FindingCode::Panic003 => "PANIC003",
            FindingCode::Panic004 => "PANIC004",
            FindingCode::Kernel001 => "KERNEL001",
            FindingCode::Kernel002 => "KERNEL002",
        }
    }

    /// Parses a textual code back into a [`FindingCode`].
    pub fn parse(s: &str) -> Option<FindingCode> {
        ALL_CODES.iter().copied().find(|c| c.as_str() == s)
    }

    /// One-line summary, shown by `--list`.
    pub fn summary(self) -> &'static str {
        match self {
            FindingCode::Lock001 => "lock-acquisition graph contains a cycle (potential deadlock)",
            FindingCode::Lock002 => "read guard upgraded to write on the same lock in one scope",
            FindingCode::Lock003 => "lock field missing from the LOCK ORDER documentation block",
            FindingCode::Lock004 => "LOCK ORDER entry names a field that does not exist",
            FindingCode::Lock005 => "acquisition edge contradicts the documented canonical order",
            FindingCode::Lock006 => "lock field name shared by two structs; attribution ambiguous",
            FindingCode::Wire001 => "two registry constants in one value space share a value",
            FindingCode::Wire002 => "registry constant reuses a retired value",
            FindingCode::Wire003 => "encode/decode sides cover different tag sets",
            FindingCode::Wire004 => "module-doc claim disagrees with the constant it documents",
            FindingCode::Wire005 => "ErrorCode to_u8/from_u8/ALL are mutually inconsistent",
            FindingCode::Panic001 => ".unwrap() in non-test library/binary code",
            FindingCode::Panic002 => ".expect(...) in non-test library/binary code",
            FindingCode::Panic003 => "panic!-family macro in non-test library/binary code",
            FindingCode::Panic004 => "slice/array indexing in non-test library/binary code",
            FindingCode::Kernel001 => "*_into kernel output buffer is not the first parameter",
            FindingCode::Kernel002 => "*_into kernel doc lacks the `fully overwrites` marker",
        }
    }

    /// The long explanation printed by `--explain CODE`.
    pub fn explain(self) -> &'static str {
        match self {
            FindingCode::Lock001 => {
                "LOCK001: lock-acquisition cycle.\n\
                 \n\
                 The analyzer extracts every `.read()`/`.write()`/`.lock()` call on a\n\
                 named RwLock/Mutex field in crates/serving and crates/core, models how\n\
                 long each guard is held (to the end of the statement, or to the end of\n\
                 the enclosing block when let-bound or used in an `if let`/`while let`/\n\
                 `match` header), and adds an edge A -> B whenever lock B is acquired —\n\
                 directly or through a call to another workspace function — while A is\n\
                 held. A cycle in that graph means two threads can acquire the same\n\
                 locks in opposite orders and deadlock.\n\
                 \n\
                 Fix: restructure so one of the edges disappears (drop the first guard\n\
                 before taking the second), or take the locks in the canonical order\n\
                 documented in the `LOCK ORDER:` block in crates/serving/src/router.rs."
            }
            FindingCode::Lock002 => {
                "LOCK002: read-to-write upgrade.\n\
                 \n\
                 A scope that holds a read guard on an RwLock and then calls `.write()`\n\
                 on the same lock self-deadlocks on std's RwLock (writers wait for all\n\
                 readers, including the caller's own guard).\n\
                 \n\
                 Fix: drop the read guard first (end the statement, or an explicit\n\
                 `drop(guard)`), then reacquire for writing; re-validate any state read\n\
                 under the old guard after reacquiring."
            }
            FindingCode::Lock003 => {
                "LOCK003: undocumented lock.\n\
                 \n\
                 Every RwLock/Mutex field in crates/serving and crates/core must appear\n\
                 in the canonical `LOCK ORDER:` comment block (router.rs) so the order\n\
                 check (LOCK005) covers it. Condvars are exempt: they are waited on,\n\
                 not held.\n\
                 \n\
                 Fix: add the field to the LOCK ORDER block at the position consistent\n\
                 with how it nests with the existing locks."
            }
            FindingCode::Lock004 => {
                "LOCK004: stale LOCK ORDER entry.\n\
                 \n\
                 The `LOCK ORDER:` block names a `Struct.field` that no longer exists\n\
                 (renamed or removed). Stale documentation is worse than none — it\n\
                 makes readers reason about locks that are not there.\n\
                 \n\
                 Fix: update or remove the entry."
            }
            FindingCode::Lock005 => {
                "LOCK005: order violation.\n\
                 \n\
                 An acquisition edge A -> B (B acquired while A is held) runs against\n\
                 the canonical order in the `LOCK ORDER:` block, which lists locks in\n\
                 the order they may be nested. Even without a full cycle today, an\n\
                 order violation is a latent deadlock: the reverse edge only has to\n\
                 appear once.\n\
                 \n\
                 Fix: acquire in the documented order, or — if the new nesting is the\n\
                 right one — change the documented order everywhere it is relied on."
            }
            FindingCode::Lock006 => {
                "LOCK006: ambiguous lock field name.\n\
                 \n\
                 Two structs in the scanned crates declare lock fields with the same\n\
                 name. The analyzer attributes `.name.lock()` acquisitions by field\n\
                 name, so shared names make every report about either lock suspect.\n\
                 \n\
                 Fix: rename one of the fields."
            }
            FindingCode::Wire001 => {
                "WIRE001: duplicate registry value.\n\
                 \n\
                 Two constants in the same value space (request tags, response tags,\n\
                 error codes, or container magics across files) share a value. A\n\
                 decoder match would silently route one message kind into another's\n\
                 arm — or fail to compile — depending on arm order.\n\
                 \n\
                 Fix: allocate the next free value for the newer constant; never renumber\n\
                 an existing one (old peers still send it)."
            }
            FindingCode::Wire002 => {
                "WIRE002: retired value reused.\n\
                 \n\
                 The value was once assigned, then retired (listed under [retired] in\n\
                 analysis/baseline.toml). Old peers may still emit it; reusing it\n\
                 changes the meaning of bytes already in the wild.\n\
                 \n\
                 Fix: allocate a fresh value; retired values stay dead forever."
            }
            FindingCode::Wire003 => {
                "WIRE003: encode/decode coverage mismatch.\n\
                 \n\
                 The encode function writes a tag the decode function has no arm for,\n\
                 or the decoder accepts a tag the encoder never produces. Either way\n\
                 one side of the protocol disagrees with the other about the message\n\
                 set.\n\
                 \n\
                 Fix: add the missing arm (decoders) or the missing variant emit\n\
                 (encoders); keep the two functions textually adjacent so drift is\n\
                 visible in review."
            }
            FindingCode::Wire004 => {
                "WIRE004: documentation drift.\n\
                 \n\
                 A module-doc claim — `SomeTag` (N), magic bytes \"XXXX\", or a\n\
                 `currently N` version statement — disagrees with the constant it\n\
                 documents. The doc tables are the wire-format reference; they must\n\
                 not lie.\n\
                 \n\
                 Fix: update the doc (or the constant, if the doc was right and the\n\
                 code regressed)."
            }
            FindingCode::Wire005 => {
                "WIRE005: ErrorCode mapping inconsistency.\n\
                 \n\
                 `ErrorCode::to_u8`, `ErrorCode::from_u8` and `ErrorCode::ALL` must\n\
                 describe the same bijection: from_u8(to_u8(c)) == c for every\n\
                 variant, and ALL must list every variant exactly once in ascending\n\
                 tag order (index() relies on it).\n\
                 \n\
                 Fix: make the three definitions agree; they sit adjacent in wire.rs\n\
                 precisely so one review sees all three."
            }
            FindingCode::Panic001 | FindingCode::Panic002 | FindingCode::Panic003 => {
                "PANIC001/002/003: panic in library/binary code.\n\
                 \n\
                 The serving path's contract is that malformed input, poisoned locks\n\
                 and overload degrade into typed errors, never panics (a panicking\n\
                 worker thread takes the whole gateway down). `.unwrap()` (PANIC001),\n\
                 `.expect()` (PANIC002) and the panic!-family macros (PANIC003) in\n\
                 non-test, non-example code violate that.\n\
                 \n\
                 Existing occurrences in research/experiment crates are ratcheted in\n\
                 analysis/baseline.toml: the count may go down, never up. New code\n\
                 returns Result instead. For a genuinely impossible state, prefer a\n\
                 typed internal error over expect(); if panic truly is the design\n\
                 (test-support code), move the code under #[cfg(test)] or into tests/."
            }
            FindingCode::Panic004 => {
                "PANIC004: slice/array indexing.\n\
                 \n\
                 `x[i]` panics on out-of-bounds. In kernels this is idiomatic (bounds\n\
                 are checked once per call, then indexing is the fastest correct\n\
                 loop body) — which is why this lint is ratcheted per file in\n\
                 analysis/baseline.toml rather than denied outright. The ratchet\n\
                 keeps serving-path code at zero and stops indexing from creeping\n\
                 into new modules unreviewed.\n\
                 \n\
                 Fix for new findings: use .get()/.get_mut() and handle None, iterate\n\
                 instead of indexing, or — when the bounds proof is genuinely local —\n\
                 raise the file's baseline count in the same commit and say why."
            }
            FindingCode::Kernel001 => {
                "KERNEL001: output buffer not first.\n\
                 \n\
                 Every `*_into` kernel in crates/tensor and crates/gnn takes its\n\
                 output buffer as the first non-`self` parameter (matmul_into,\n\
                 fused_linear_into, concat3_into, ...). Mixed conventions at call\n\
                 sites that pass several `&mut Matrix` scratch buffers are how\n\
                 outputs and inputs get swapped silently.\n\
                 \n\
                 Fix: reorder the parameters (and all call sites) so the output\n\
                 comes first."
            }
            FindingCode::Kernel002 => {
                "KERNEL002: missing overwrite marker.\n\
                 \n\
                 A `*_into` kernel's doc comment must contain the literal phrase\n\
                 `fully overwrites`, documenting that the caller need not zero the\n\
                 buffer (the ScratchPool hands out dirty buffers on purpose). A\n\
                 kernel that actually accumulates into its output must not carry the\n\
                 marker — and must not be named `*_into`.\n\
                 \n\
                 Fix: add the sentence \"... takes its output buffer as the first\n\
                 argument and fully overwrites it\" to the kernel's doc comment —\n\
                 after checking it is true."
            }
        }
    }
}

impl fmt::Display for FindingCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One finding: a code anchored at a file/line with a human message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The finding code.
    pub code: FindingCode,
    /// Workspace-relative path with `/` separators.
    pub file: String,
    /// 1-based line number (0 when the finding is file-scoped).
    pub line: u32,
    /// Human-readable description.
    pub message: String,
}

impl Finding {
    /// Builds a finding, normalizing the path separators.
    pub fn new(code: FindingCode, file: &str, line: u32, message: String) -> Finding {
        Finding {
            code,
            file: file.replace('\\', "/"),
            line,
            message,
        }
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {}:{} {}",
            self.code.as_str(),
            self.file,
            self.line,
            self.message
        )
    }
}

/// Sorts findings into the stable report order.
pub fn sort_findings(findings: &mut [Finding]) {
    findings.sort_by(|a, b| {
        (a.file.as_str(), a.code, a.line, a.message.as_str()).cmp(&(
            b.file.as_str(),
            b.code,
            b.line,
            b.message.as_str(),
        ))
    });
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // tests may panic freely
mod tests {
    use super::*;

    #[test]
    fn codes_round_trip_and_have_docs() {
        for code in ALL_CODES {
            assert_eq!(FindingCode::parse(code.as_str()), Some(code));
            assert!(!code.summary().is_empty());
            assert!(code.explain().contains(code.as_str()) || code.explain().contains("PANIC"));
        }
        assert_eq!(FindingCode::parse("NOPE999"), None);
    }

    #[test]
    fn findings_sort_stably() {
        let mut findings = vec![
            Finding::new(FindingCode::Panic001, "b.rs", 3, "x".into()),
            Finding::new(FindingCode::Panic001, "a.rs", 9, "y".into()),
            Finding::new(FindingCode::Lock001, "b.rs", 1, "z".into()),
        ];
        sort_findings(&mut findings);
        assert_eq!(findings[0].file, "a.rs");
        assert_eq!(findings[1].code, FindingCode::Lock001);
        assert_eq!(findings[2].line, 3);
    }
}
