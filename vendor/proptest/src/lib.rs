//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment has no network access, so this vendored crate
//! implements the strategy subset the workspace's property tests use:
//! range strategies, `any::<bool>()` / `any::<prop::sample::Index>()`,
//! `collection::vec`, tuple strategies (up to 8 components),
//! `prop_map` / `prop_flat_map`, the `proptest!` macro
//! with `#![proptest_config(...)]`, and `prop_assert!` / `prop_assert_eq!`.
//!
//! Differences from upstream: cases are generated from a fixed per-test seed
//! (fully deterministic), and failing cases are **not shrunk** — the failing
//! input is simply printed via the assertion message.

use rand::rngs::StdRng;
use rand::Rng;

/// Runner configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property is checked against.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 32 }
    }
}

/// A generator of random values of an associated type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }

    /// Builds a second strategy from each generated value and draws from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut StdRng) -> S2::Value {
        let intermediate = self.inner.generate(rng);
        (self.f)(intermediate).generate(rng)
    }
}

/// Strategy choosing uniformly among alternatives (see [`prop_oneof!`]).
///
/// Upstream's `prop_oneof!` supports per-arm weights; this stand-in picks
/// each arm with equal probability, which is all the workspace uses.
pub struct Union<T> {
    first: Box<dyn Strategy<Value = T>>,
    rest: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// A union of `first` and `rest`, each drawn with equal probability.
    pub fn new(
        first: Box<dyn Strategy<Value = T>>,
        rest: Vec<Box<dyn Strategy<Value = T>>>,
    ) -> Self {
        Self { first, rest }
    }

    /// Boxes one alternative (the `prop_oneof!` macro's adapter).
    pub fn boxed<S>(strategy: S) -> Box<dyn Strategy<Value = T>>
    where
        S: Strategy<Value = T> + 'static,
    {
        Box::new(strategy)
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        let pick = rng.gen_range(0..=self.rest.len());
        match pick.checked_sub(1).and_then(|i| self.rest.get(i)) {
            Some(strategy) => strategy.generate(rng),
            None => self.first.generate(rng),
        }
    }
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        self.as_ref().generate(rng)
    }
}

/// Chooses uniformly among the listed strategies (all must generate the
/// same value type). Upstream's weighted `weight => strategy` arms are not
/// supported.
#[macro_export]
macro_rules! prop_oneof {
    ($first:expr $(, $rest:expr)* $(,)?) => {
        $crate::Union::new(
            $crate::Union::boxed($first),
            vec![$($crate::Union::boxed($rest)),*],
        )
    };
}

impl<T: rand::SampleUniform> Strategy for std::ops::Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.start..self.end)
    }
}

impl<T: rand::SampleUniform> Strategy for std::ops::RangeInclusive<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        rng.gen_range(*self.start()..=*self.end())
    }
}

// Tuples of strategies are themselves strategies (as in upstream proptest):
// each component generates independently, in order.
macro_rules! impl_strategy_for_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_strategy_for_tuple!(A: 0, B: 1);
impl_strategy_for_tuple!(A: 0, B: 1, C: 2);
impl_strategy_for_tuple!(A: 0, B: 1, C: 2, D: 3);
impl_strategy_for_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_strategy_for_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
impl_strategy_for_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6);
impl_strategy_for_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen()
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen()
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen()
    }
}

impl Arbitrary for sample::Index {
    fn arbitrary(rng: &mut StdRng) -> Self {
        sample::Index::new(rng.gen())
    }
}

/// Strategy returned by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T` (`any::<bool>()`, …).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Abstract slice indices (`prop::sample::Index`).
pub mod sample {
    /// An index into a slice of yet-unknown length.
    #[derive(Debug, Clone, Copy)]
    pub struct Index(u64);

    impl Index {
        pub(crate) fn new(raw: u64) -> Self {
            Index(raw)
        }

        /// Resolves the abstract index against a collection of `len` items.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "cannot index an empty collection");
            (self.0 % len as u64) as usize
        }
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Length specification: a fixed `usize` or a `Range<usize>`.
    pub trait SizeRange {
        /// Draws a concrete length.
        fn pick(&self, rng: &mut StdRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut StdRng) -> usize {
            *self
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn pick(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.start..self.end)
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(*self.start()..=*self.end())
        }
    }

    /// Strategy generating vectors of values drawn from `element`.
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = self.len.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `Vec` strategy with elements from `element` and length from `len`.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }
}

/// Deterministic per-test seed derived from the test's name (FNV-1a).
pub fn seed_for(test_name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Everything a property test needs in scope.
pub mod prelude {
    /// Alias matching upstream's `prelude::prop` module path.
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Arbitrary, ProptestConfig,
        Strategy, Union,
    };
}

/// Asserts a condition inside a property (no shrinking; panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property (no shrinking; panics on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { ($config); $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($config:expr); ) => {};
    (
        ($config:expr);
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            use $crate::Strategy as _;
            let config: $crate::ProptestConfig = $config;
            let mut rng = <::rand::rngs::StdRng as ::rand::SeedableRng>::seed_from_u64(
                $crate::seed_for(concat!(module_path!(), "::", stringify!($name))),
            );
            for _case in 0..config.cases {
                $(let $arg = ($strategy).generate(&mut rng);)+
                $body
            }
        }
        $crate::__proptest_impl! { ($config); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn shifted(max: usize) -> impl Strategy<Value = Vec<usize>> {
        (1usize..max).prop_flat_map(|n| {
            prop::collection::vec(0usize..10, n)
                .prop_map(|v| v.into_iter().map(|x| x + 1).collect())
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Range strategies stay in bounds.
        #[test]
        fn ranges_in_bounds(x in 3usize..9, f in -1.0f32..1.0) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        /// `prop_oneof!` draws from every arm and only from its arms.
        #[test]
        fn oneof_covers_its_arms(picks in prop::collection::vec(prop_oneof![0usize..2, 5usize..7], 64)) {
            prop_assert!(picks
                .iter()
                .all(|&x| (0..2).contains(&x) || (5..7).contains(&x)));
        }

        #[test]
        fn vec_and_maps_compose(
            v in shifted(6),
            flag in any::<bool>(),
            pick in any::<prop::sample::Index>(),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 6);
            prop_assert!(v.iter().all(|&x| (1..=10).contains(&x)));
            let coin = usize::from(flag);
            prop_assert!(coin <= 1);
            prop_assert!(pick.index(v.len()) < v.len());
        }
    }

    #[test]
    fn seeds_differ_by_name_and_are_stable() {
        assert_ne!(super::seed_for("a"), super::seed_for("b"));
        assert_eq!(super::seed_for("a"), super::seed_for("a"));
    }
}
