//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! crate.
//!
//! The build environment has no network access, so this vendored crate
//! provides the benchmark-definition API the workspace's benches use
//! (`criterion_group!` / `criterion_main!`, `benchmark_group`,
//! `bench_function`, `iter`, `iter_batched`) backed by a simple wall-clock
//! measurement: each benchmark is warmed up once and then timed over
//! `sample_size` iterations, reporting the mean per-iteration time. There is
//! no statistical analysis, outlier rejection, or HTML report.
//!
//! Like upstream criterion, passing `--test` on the command line
//! (`cargo bench -- --test`) switches to smoke mode: every benchmark runs
//! exactly once, untimed — CI uses this to keep benches compiling and
//! panic-free without paying for measurements.

use std::time::Instant;

/// How batched inputs are grouped (accepted for API compatibility; the
/// stand-in times every batch individually regardless).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration setup output.
    SmallInput,
    /// Large per-iteration setup output.
    LargeInput,
    /// One setup per measured batch.
    PerIteration,
}

/// Timing driver handed to every benchmark closure.
pub struct Bencher {
    iterations: u64,
    /// Total measured time in nanoseconds, excluding setup.
    measured_nanos: u128,
}

impl Bencher {
    /// Times `routine` over the configured number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            std::hint::black_box(routine());
        }
        self.measured_nanos += start.elapsed().as_nanos();
    }

    /// Times `routine` on fresh inputs from `setup`, excluding setup time.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.iterations {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.measured_nanos += start.elapsed().as_nanos();
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs and reports one benchmark.
    pub fn bench_function<S: Into<String>, F>(&mut self, id: S, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        if test_mode() {
            // Smoke mode: one untimed pass so the benchmark's code still
            // executes (and can panic), but CI never waits on measurements.
            let mut smoke = Bencher {
                iterations: 1,
                measured_nanos: 0,
            };
            f(&mut smoke);
            println!("{}/{:<40} ok (test mode)", self.name, id);
            return self;
        }
        // One untimed warm-up pass, then the measured passes.
        let mut warmup = Bencher {
            iterations: 1,
            measured_nanos: 0,
        };
        f(&mut warmup);
        let mut bencher = Bencher {
            iterations: self.sample_size as u64,
            measured_nanos: 0,
        };
        f(&mut bencher);
        let per_iter = bencher.measured_nanos / bencher.iterations.max(1) as u128;
        println!(
            "{}/{:<40} {:>12} ns/iter ({} iters)",
            self.name, id, per_iter, bencher.iterations
        );
        self
    }

    /// Finishes the group (reporting happens per-benchmark).
    pub fn finish(&mut self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _criterion: self,
        }
    }

    /// Runs and reports a single ungrouped benchmark.
    pub fn bench_function<S: Into<String>, F>(&mut self, id: S, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// True when the process was started with `--test` (criterion's smoke mode).
fn test_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

/// Prevents the optimizer from eliding a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_the_closure() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("test");
        group.sample_size(3);
        let mut runs = 0u32;
        group.bench_function("counter", |b| b.iter(|| runs += 1));
        group.finish();
        // One warm-up iteration plus three timed iterations — or a single
        // untimed pass when this process itself was started with `--test`
        // (e.g. `cargo bench -- --test` also runs these unit tests).
        let expected = if test_mode() { 1 } else { 4 };
        assert_eq!(runs, expected);
    }

    #[test]
    fn iter_batched_gets_fresh_inputs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("test");
        group.sample_size(2);
        let mut seen = Vec::new();
        let mut next = 0u32;
        group.bench_function("batched", |b| {
            b.iter_batched(
                || {
                    next += 1;
                    next
                },
                |input| seen.push(input),
                BatchSize::SmallInput,
            )
        });
        let expected = if test_mode() { 1 } else { 3 };
        assert_eq!(seen.len(), expected);
    }
}
