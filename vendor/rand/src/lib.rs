//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no network access, so this vendored crate
//! provides the (small) `rand 0.8` API surface the workspace actually uses:
//! [`Rng`] (`gen`, `gen_range`, `gen_bool`), [`SeedableRng::seed_from_u64`],
//! [`rngs::StdRng`] and [`seq::SliceRandom`] (`shuffle`, `choose`).
//!
//! The generator is xoshiro256** seeded through SplitMix64 — statistically
//! solid and fully deterministic for a fixed seed, which is all the
//! reproduction needs. The streams differ from upstream `rand`'s `StdRng`
//! (ChaCha12), so exact values are not interchangeable with upstream, but no
//! code in this workspace depends on specific streams.

/// A source of random 32/64-bit values.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types sampleable from the "standard" distribution (`Rng::gen`).
pub trait StandardSample {
    /// Draws one value from the standard distribution.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 explicit mantissa bits -> uniform in [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl StandardSample for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

/// Types with uniform sampling over a half-open or inclusive range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let lo_w = lo as i128;
                let hi_w = hi as i128;
                let span = (hi_w - lo_w + if inclusive { 1 } else { 0 }) as u128;
                assert!(span > 0, "cannot sample from an empty range");
                // Modulo bias is < 2^-64 for every span used here.
                let draw = (rng.next_u64() as u128) % span;
                (lo_w + draw as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                _inclusive: bool,
            ) -> Self {
                assert!(lo <= hi, "cannot sample from an inverted range");
                let frac = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                lo + (frac as $t) * (hi - lo)
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, *self.start(), *self.end(), true)
    }
}

/// User-facing random-value methods, mirroring `rand 0.8`'s `Rng`.
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution for `T`.
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        Self: Sized,
        T: SampleUniform,
        Rg: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of [0, 1]"
        );
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256** seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the full 256-bit state.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            // xoshiro256** by Blackman & Vigna (public domain reference).
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::Rng;

    /// Random operations on slices (`shuffle`, `choose`).
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Fisher-Yates shuffle in place.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` for an empty slice.
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let u = rng.gen_range(3usize..10);
            assert!((3..10).contains(&u));
            let i = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&i));
            let f = rng.gen_range(-1.5f32..2.5);
            assert!((-1.5..2.5).contains(&f));
            let p: f64 = rng.gen();
            assert!((0.0..1.0).contains(&p));
        }
    }

    #[test]
    fn gen_bool_probability_is_roughly_respected() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits} far from 2500");
    }

    #[test]
    fn uniform_mean_is_centered() {
        let mut rng = StdRng::seed_from_u64(13);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} drifted");
    }

    #[test]
    fn shuffle_permutes_and_choose_selects() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
        assert!(v.choose(&mut rng).is_some());
        let empty: [usize; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn shuffle_through_impl_rng_reference() {
        // Mirrors the workspace pattern: fn f(rng: &mut impl Rng) { v.shuffle(rng) }.
        fn scramble(v: &mut [usize], rng: &mut impl Rng) {
            v.shuffle(rng);
        }
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..10).collect();
        scramble(&mut v, &mut rng);
        assert_eq!(v.len(), 10);
    }
}
